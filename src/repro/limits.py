"""Shared certification limits and control-plane cost constants.

The certification constants bound what a certified FlexBPF program may
do *and* what the interpreter will actually execute. They live in one
module — imported by both :mod:`repro.lang.analyzer` (which proves the
bound) and :mod:`repro.simulator.pipeline_exec` (which enforces it) —
so the certified bound can never silently diverge from the runtime cap.

The control-channel constants cost the software (controller-mediated)
path; they are shared by :mod:`repro.control.p4runtime` and
:mod:`repro.runtime.drpc` so the two layers can never disagree about
what a control round trip costs.
"""

from __future__ import annotations

#: Hard ceiling on certified per-packet ops. Programs over this bound
#: would not pass a line-rate admission check on any modelled target.
MAX_PACKET_OPS = 100_000

#: Ceiling on total declared map entries per program (admission check
#: against pathological state footprints).
MAX_MAP_ENTRIES = 16_000_000

#: How many times one packet may recirculate. The analyzer multiplies
#: the per-pass bound by ``1 + RECIRCULATION_CAP`` for recirculating
#: programs; the interpreter stops recirculating at exactly this depth.
RECIRCULATION_CAP = 4

#: One control-channel round trip for a dRPC-equivalent operation done
#: in software (device -> controller -> device), and the controller's
#: per-operation software handling time.
CONTROL_RTT_S = 2e-3
CONTROL_PROCESSING_S = 5e-4

#: One P4Runtime (switch gRPC) round trip, write and read.
WRITE_RTT_S = 1e-3
READ_RTT_S = 1e-3

#: Raft timing for the distributed controller (§3.4): randomized
#: election timeouts and the leader heartbeat period. Shared by
#: :mod:`repro.control.consensus` (the protocol) and
#: :mod:`repro.control.ha` (failover detection and fencing-lease
#: renewal run off the same clock), so the two layers can never
#: disagree about what "one heartbeat" means.
ELECTION_TIMEOUT_RANGE_S = (0.15, 0.30)
HEARTBEAT_INTERVAL_S = 0.05

#: FlexCloud admission scheduling (§1.1 tenant-churn story): queued
#: tenant deltas are drained in rounds of this virtual period, with at
#: most ``ADMISSION_ROUND_BUDGET`` tickets folded per round. One round
#: produces at most one coalesced reconfiguration window per device, so
#: the period is the knob trading admission latency against coalescing
#: factor. Shared by :mod:`repro.cloud.admission` (the queue drain) and
#: :mod:`repro.control.scheduler` (per-class round budgeting) so the
#: two layers can never disagree about what "one scheduling round" is.
ADMISSION_ROUND_S = 0.25
ADMISSION_ROUND_BUDGET = 4096

#: Per-SLA-class admission control: (queue depth bound, drain weight).
#: A class's queue never holds more than its depth — submissions beyond
#: it are shed with a typed reason — and each round's budget is split
#: across non-empty classes proportionally to the weights (every
#: non-empty class is guaranteed at least one ticket, so bronze churn
#: cannot be starved by a gold flash crowd, and vice versa).
ADMISSION_CLASS_POLICIES: dict[str, tuple[int, int]] = {
    "gold": (200_000, 4),
    "silver": (100_000, 2),
    "bronze": (50_000, 1),
}

#: FlexScale process backend: wall-clock seconds the coordinator waits
#: for worker progress before declaring the fleet wedged (a
#: conservative-protocol bug, not a slow machine, is the only way to
#: hit this). Shared by the supervisor's result wait and each worker's
#: blocking inbox read so both sides give up on the same horizon.
SCALE_RESULT_TIMEOUT_S = 300.0

#: FlexScale process backend: how long the coordinator waits for a
#: worker to exit after shutdown/poison before terminating it.
SCALE_JOIN_TIMEOUT_S = 30.0

#: FlexMend supervision (sharded fault tolerance): how many times one
#: shard may be respawned from its last checkpoint before the
#: supervisor gives up and fails the run fast (poison pill broadcast).
MEND_MAX_RESTARTS = 3

#: FlexMend restart backoff: the supervisor sleeps
#: ``MEND_BACKOFF_BASE_S * MEND_BACKOFF_FACTOR**restarts`` before each
#: respawn, bounding crash-loop churn without stretching E23 wall time.
MEND_BACKOFF_BASE_S = 0.05
MEND_BACKOFF_FACTOR = 2.0

#: FlexMend stall detection: a worker that has not heartbeaten for this
#: many wall seconds while its process is still alive is presumed hung
#: (``WorkerStall`` or a real wedge) and is killed + respawned like a
#: crash. Generous so CI scheduling jitter can never misfire it.
MEND_HEARTBEAT_TIMEOUT_S = 60.0

#: FlexMend checkpoint cadence: when checkpointing is armed, every
#: worker snapshots its shard at window 0 (so restart is always
#: possible) and then every this-many protocol windows. Checkpoints
#: deepcopy live shard state, so the default run (no chaos) keeps them
#: off entirely and pays nothing.
MEND_CHECKPOINT_EVERY_WINDOWS = 8

#: FlexMend supervisor poll period: how often the coordinator wakes to
#: check process sentinels and heartbeat staleness while waiting for
#: events (wall-clock pacing only; never touches simulation state).
MEND_POLL_INTERVAL_S = 0.05

#: FlexMend transport impatience: a worker blocked waiting for a
#: round's inbound batches re-NACKs every missing sequence after this
#: many wall seconds. Gap NACKs (triggered by a later frame from the
#: same sender) catch mid-stream drops immediately; the impatience
#: timer is the backstop for a dropped *final* frame, where no later
#: frame exists to reveal the gap, and for first NACKs lost to a dying
#: worker's drained inbox. Recovery-path pacing only — the delivered
#: stream is release-ordered, so retransmit timing never affects a
#: deterministic export.
MEND_NACK_IMPATIENCE_S = 0.25

#: FlexScale placement: two devices joined by a link faster than this
#: are fused onto one shard. The conservative lookahead protocol
#: advances shards in windows of the *minimum cross-shard* link
#: latency, so splitting a microsecond-class intra-rack link across
#: shards would collapse window size (and with it all parallelism);
#: links at or above this latency are presumed rack/pod boundaries
#: worth sharding across. Shared by :mod:`repro.scale.plan` (placement)
#: and :mod:`repro.scale.shard` (window sizing) so the planner can
#: never produce a partition the protocol would crawl through.
COLOCATE_LINK_LATENCY_S = 1e-4
