"""Shared certification limits for the analyzer and the runtime.

These constants bound what a certified FlexBPF program may do *and*
what the interpreter will actually execute. They live in one module —
imported by both :mod:`repro.lang.analyzer` (which proves the bound)
and :mod:`repro.simulator.pipeline_exec` (which enforces it) — so the
certified bound can never silently diverge from the runtime cap.
"""

from __future__ import annotations

#: Hard ceiling on certified per-packet ops. Programs over this bound
#: would not pass a line-rate admission check on any modelled target.
MAX_PACKET_OPS = 100_000

#: Ceiling on total declared map entries per program (admission check
#: against pathological state footprints).
MAX_MAP_ENTRIES = 16_000_000

#: How many times one packet may recirculate. The analyzer multiplies
#: the per-pass bound by ``1 + RECIRCULATION_CAP`` for recirculating
#: programs; the interpreter stops recirculating at exactly this depth.
RECIRCULATION_CAP = 4
