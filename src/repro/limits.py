"""Shared certification limits and control-plane cost constants.

The certification constants bound what a certified FlexBPF program may
do *and* what the interpreter will actually execute. They live in one
module — imported by both :mod:`repro.lang.analyzer` (which proves the
bound) and :mod:`repro.simulator.pipeline_exec` (which enforces it) —
so the certified bound can never silently diverge from the runtime cap.

The control-channel constants cost the software (controller-mediated)
path; they are shared by :mod:`repro.control.p4runtime` and
:mod:`repro.runtime.drpc` so the two layers can never disagree about
what a control round trip costs.
"""

from __future__ import annotations

#: Hard ceiling on certified per-packet ops. Programs over this bound
#: would not pass a line-rate admission check on any modelled target.
MAX_PACKET_OPS = 100_000

#: Ceiling on total declared map entries per program (admission check
#: against pathological state footprints).
MAX_MAP_ENTRIES = 16_000_000

#: How many times one packet may recirculate. The analyzer multiplies
#: the per-pass bound by ``1 + RECIRCULATION_CAP`` for recirculating
#: programs; the interpreter stops recirculating at exactly this depth.
RECIRCULATION_CAP = 4

#: One control-channel round trip for a dRPC-equivalent operation done
#: in software (device -> controller -> device), and the controller's
#: per-operation software handling time.
CONTROL_RTT_S = 2e-3
CONTROL_PROCESSING_S = 5e-4

#: One P4Runtime (switch gRPC) round trip, write and read.
WRITE_RTT_S = 1e-3
READ_RTT_S = 1e-3

#: Raft timing for the distributed controller (§3.4): randomized
#: election timeouts and the leader heartbeat period. Shared by
#: :mod:`repro.control.consensus` (the protocol) and
#: :mod:`repro.control.ha` (failover detection and fencing-lease
#: renewal run off the same clock), so the two layers can never
#: disagree about what "one heartbeat" means.
ELECTION_TIMEOUT_RANGE_S = (0.15, 0.30)
HEARTBEAT_INTERVAL_S = 0.05

#: FlexCloud admission scheduling (§1.1 tenant-churn story): queued
#: tenant deltas are drained in rounds of this virtual period, with at
#: most ``ADMISSION_ROUND_BUDGET`` tickets folded per round. One round
#: produces at most one coalesced reconfiguration window per device, so
#: the period is the knob trading admission latency against coalescing
#: factor. Shared by :mod:`repro.cloud.admission` (the queue drain) and
#: :mod:`repro.control.scheduler` (per-class round budgeting) so the
#: two layers can never disagree about what "one scheduling round" is.
ADMISSION_ROUND_S = 0.25
ADMISSION_ROUND_BUDGET = 4096

#: Per-SLA-class admission control: (queue depth bound, drain weight).
#: A class's queue never holds more than its depth — submissions beyond
#: it are shed with a typed reason — and each round's budget is split
#: across non-empty classes proportionally to the weights (every
#: non-empty class is guaranteed at least one ticket, so bronze churn
#: cannot be starved by a gold flash crowd, and vice versa).
ADMISSION_CLASS_POLICIES: dict[str, tuple[int, int]] = {
    "gold": (200_000, 4),
    "silver": (100_000, 2),
    "bronze": (50_000, 1),
}

#: FlexScale placement: two devices joined by a link faster than this
#: are fused onto one shard. The conservative lookahead protocol
#: advances shards in windows of the *minimum cross-shard* link
#: latency, so splitting a microsecond-class intra-rack link across
#: shards would collapse window size (and with it all parallelism);
#: links at or above this latency are presumed rack/pod boundaries
#: worth sharding across. Shared by :mod:`repro.scale.plan` (placement)
#: and :mod:`repro.scale.shard` (window sizing) so the planner can
#: never produce a partition the protocol would crawl through.
COLOCATE_LINK_LATENCY_S = 1e-4
