"""Flow-cacheability analysis for the FlexPath fast path.

A program's per-packet outcome can be served from a flow micro-cache
only if re-executing it on an identical input packet is guaranteed to
produce the identical outcome *and* leave no per-packet state behind.
The dataflow pass (:mod:`repro.analysis.dataflow`) gives us the sound
over-approximation to decide that statically:

* **stateless / read-only** — the program must not write any map. Map
  *reads* are allowed: control-plane writes to a read map are caught at
  runtime by the map's mutation counter, which participates in the
  cache-validity token (see :class:`repro.simulator.fastpath.FlowCache`).
* **replayable side effects** — header/metadata writes, the drop flag,
  digests, clones, and recirculation are all deterministic functions of
  the packet contents, so they can be captured once and replayed; they
  do not disqualify a program.

The *cache key* must cover every input the program can observe: all
header fields it reads **or writes** (a replayed post-state is only
valid for packets that agree on the initial value of written locations
too), every metadata key it touches, the parser's select fields, and
per-header presence bits (visibility semantics make an absent header
observable). Meters are intentionally absent here — they are runtime
attachments, and the fast path bypasses the cache whenever any applied
table carries one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import analyze, executed_slice
from repro.lang import ir


@dataclass(frozen=True)
class CacheabilityDecision:
    """Static verdict for one program version."""

    cacheable: bool
    #: human-readable disqualification reasons (empty when cacheable).
    reasons: tuple[str, ...]
    #: (header, field) pairs the cache key must include.
    key_fields: tuple[tuple[str, str], ...]
    #: metadata keys the cache key must include.
    key_meta: tuple[str, ...]
    #: declared header names (presence bits participate in the key).
    headers: tuple[str, ...]
    #: maps the program reads — their mutation counters join the
    #: validity token so control-plane writes invalidate the cache.
    read_maps: tuple[str, ...]
    #: tables reachable from apply — their rule/meter epochs join the
    #: validity token.
    applied_tables: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "cacheable": self.cacheable,
            "reasons": list(self.reasons),
            "key_fields": [f"{h}.{f}" for h, f in self.key_fields],
            "key_meta": list(self.key_meta),
            "read_maps": list(self.read_maps),
            "applied_tables": list(self.applied_tables),
        }


def decide(
    program: ir.Program, hosted_elements: set[str] | None = None
) -> CacheabilityDecision:
    """Statically decide whether ``program`` is flow-cacheable and, if
    so, what the cache key and validity token must cover.

    ``hosted_elements`` restricts the analysis to the elements one
    device actually executes (the placement model: a device hosts a
    subset of tables/functions; apply-if conditions always run). A
    device hosting only the stateless slice of an otherwise stateful
    program — e.g. the ACL tables while a downstream host runs the flow
    counter — is still cacheable for its slice.
    """
    info = analyze(program)
    executed, access = executed_slice(program, info, hosted_elements)

    reasons: list[str] = []
    for map_name in sorted(access.map_writes):
        reasons.append(f"writes map {map_name!r} (stateful per packet)")

    field_keys = {
        (ref.header, ref.field)
        for ref in access.field_reads | access.field_writes
    }
    parser = program.parser
    if parser is not None:
        for transition in parser.transitions:
            if transition.select_field is not None:
                ref = transition.select_field
                field_keys.add((ref.header, ref.field))
    meta_keys = set(access.meta_reads | access.meta_writes)

    applied_tables = tuple(
        sorted(t.name for t in program.tables if t.name in executed)
    )
    return CacheabilityDecision(
        cacheable=not reasons,
        reasons=tuple(reasons),
        key_fields=tuple(sorted(field_keys)),
        key_meta=tuple(sorted(meta_keys)),
        headers=tuple(h.name for h in program.headers),
        read_maps=tuple(sorted(access.map_reads)),
        applied_tables=applied_tables,
    )
