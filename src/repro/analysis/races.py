"""Reconfiguration-race detection (§3.4/§3.5 of the paper).

During a hitless update the device runs *both* program versions for a
window (old-XOR-new per packet). A delta is race-prone when the state
or fields it mutates are still being read by surviving elements that
in-flight old-version packets will execute:

* ``RACE-MAP-RESIZE``   — a delta resizes/re-declares a map while
  surviving elements read or write it. Shrinking silently drops
  entries old-version packets may still depend on; re-keying splits the
  state into two incoherent instances.
* ``RACE-MAP-REMOVED``  — a DURABLE map is removed while surviving
  elements (or in-flight packets) still write it; those updates are
  lost, violating the no-lost-updates migration contract.
* ``RACE-WRITE-READ``   — a new/modified element writes a field, meta
  key, or map that a *surviving* old element reads, so a packet's
  observed value depends on which version of the pipeline it draws
  mid-transition.

Severity depends on the schedule: under the default per-device window
these are ERRORs (the plan must be rejected or escalated); when the
caller commits to the two-phase consistent path (PER_PACKET_PATH epoch
stamping + swing-state migration) the same findings downgrade to INFO,
recording that the hazard exists but is mitigated. This is exactly the
"reject or force through the two-phase consistent path" wiring the
controller performs.
"""

from __future__ import annotations

from repro.analysis.dataflow import AccessSet, DataflowInfo, analyze
from repro.analysis.report import Finding, Severity
from repro.lang import ir
from repro.lang.delta import ChangeSet


def _severity(two_phase: bool) -> Severity:
    return Severity.INFO if two_phase else Severity.ERROR


def _mitigated(two_phase: bool) -> str:
    return " (mitigated: two-phase consistent path in effect)" if two_phase else ""


def check_reconfig(
    old_program: ir.Program,
    new_program: ir.Program,
    changes: ChangeSet,
    *,
    two_phase: bool = False,
    old_dataflow: DataflowInfo | None = None,
    new_dataflow: DataflowInfo | None = None,
) -> list[Finding]:
    """Flag deltas that race with in-flight packets of ``old_program``.

    ``two_phase=True`` means the transition is already scheduled through
    the consistent path (epoch-stamped windows + swing-state migration),
    so hazards are reported as INFO instead of ERROR.
    """
    findings: list[Finding] = []
    old_df = old_dataflow or analyze(old_program)
    new_df = new_dataflow or analyze(new_program)

    #: Elements present in both versions and untouched by the delta —
    #: the "in-flight" population that old-version packets keep executing
    #: during the transition window.
    old_names = set(old_df.elements)
    surviving = frozenset(
        (old_names & set(new_df.elements)) - changes.added - changes.removed - changes.modified
    )

    def survivors(names: frozenset[str]) -> list[str]:
        return sorted(names & surviving)

    # -- map resize / re-declaration racing with surviving accessors -------
    old_maps = {m.name: m for m in old_program.maps}
    new_maps = {m.name: m for m in new_program.maps}
    for name in sorted(changes.modified):
        old_map, new_map = old_maps.get(name), new_maps.get(name)
        if old_map is None or new_map is None or old_map == new_map:
            continue
        accessors = survivors(old_df.readers_of_map(name) | old_df.writers_of_map(name))
        if not accessors:
            continue
        shrunk = new_map.max_entries < old_map.max_entries
        what = (
            f"shrunk from {old_map.max_entries} to {new_map.max_entries} entries"
            if shrunk
            else "re-declared with different shape/size"
        )
        findings.append(
            Finding(
                code="RACE-MAP-RESIZE",
                severity=_severity(two_phase),
                message=(
                    f"map {name!r} is {what} while surviving element(s) "
                    f"{accessors} still access it; in-flight old-version packets "
                    f"race with the resize{_mitigated(two_phase)}"
                ),
                pass_name="race",
                element=name,
                fixit=(
                    "schedule the update with ConsistencyLevel.PER_PACKET_PATH "
                    "(two-phase epoch stamping) or drain readers first by removing "
                    "them in a preceding delta"
                ),
            )
        )

    # -- DURABLE map removed while still written ---------------------------
    for name in sorted(changes.removed):
        old_map = old_maps.get(name)
        if old_map is None or old_map.persistence is not ir.Persistence.DURABLE:
            continue
        writers = survivors(old_df.writers_of_map(name))
        # Writers removed in the same delta stop producing updates once the
        # window closes; only *surviving* writers keep racing forever.
        if not writers:
            continue
        findings.append(
            Finding(
                code="RACE-MAP-REMOVED",
                severity=Severity.WARNING,
                message=(
                    f"durable map {name!r} is removed while surviving element(s) "
                    f"{writers} still write it; updates made during the transition "
                    "window are lost"
                ),
                pass_name="race",
                element=name,
                fixit=(
                    f"remove the writer(s) {writers} in the same delta, or mark "
                    f"{name!r} Persistence.EPHEMERAL if its state is disposable"
                ),
            )
        )

    # -- new/modified writers racing surviving readers ---------------------
    for name in sorted(changes.added | changes.modified):
        access = new_df.element_access(name)
        if name not in new_df.applied or not access.writes_anything:
            continue
        # A modified element only races through writes it did not already
        # perform in the old version (a resize does not change behaviour).
        baseline = old_df.element_access(name) if name in old_df.elements else None
        if baseline is not None:
            access = AccessSet(
                field_reads=access.field_reads,
                field_writes=access.field_writes - baseline.field_writes,
                meta_reads=access.meta_reads,
                meta_writes=access.meta_writes - baseline.meta_writes,
                map_reads=access.map_reads,
                map_writes=access.map_writes - baseline.map_writes,
            )
            if not access.writes_anything:
                continue
        conflicts: list[str] = []
        for ref in sorted(access.field_writes, key=str):
            readers = survivors(old_df.readers_of_field(ref))
            if readers:
                conflicts.append(f"field {ref} read by {readers}")
        for key in sorted(access.meta_writes):
            if key.startswith("_"):
                continue  # synthetic primitive-effect keys are not shared state
            readers = survivors(
                frozenset(
                    n
                    for n, a in old_df.elements.items()
                    if n in old_df.applied and key in a.meta_reads
                )
            )
            if readers:
                conflicts.append(f"meta.{key} read by {readers}")
        for map_name in sorted(access.map_writes):
            readers = survivors(old_df.readers_of_map(map_name))
            if readers:
                conflicts.append(f"map {map_name!r} read by {readers}")
        if conflicts:
            findings.append(
                Finding(
                    code="RACE-WRITE-READ",
                    severity=_severity(two_phase),
                    message=(
                        f"element {name!r} introduced/modified by the delta writes "
                        f"state that surviving elements read ({'; '.join(conflicts)}); "
                        "packets drawing different pipeline versions observe "
                        f"inconsistent values{_mitigated(two_phase)}"
                    ),
                    pass_name="race",
                    element=name,
                    fixit=(
                        "schedule with ConsistencyLevel.PER_PACKET_PATH so every "
                        "packet sees exactly one version end-to-end"
                    ),
                )
            )

    return findings
