"""The bundled-program corpus FlexCheck ships with.

``repro check --builtin`` (and CI) run FlexCheck across every program
the repository bundles: the base infrastructure plus the base with each
:mod:`repro.apps` delta applied — the same programs the examples and
benchmarks exercise. Keeping the enumeration here (rather than in the
CLI) lets tests assert the "zero errors on all bundled programs"
acceptance criterion directly.
"""

from __future__ import annotations

from repro import apps
from repro.lang.delta import Delta, apply_delta
from repro.lang.ir import Program


def bundled_programs() -> list[tuple[str, Program]]:
    """Every (label, validated program) the repo bundles."""
    base = apps.base_infrastructure()
    deltas: list[tuple[str, Delta]] = [
        ("ddos:syn_monitor", apps.syn_monitor_delta()),
        ("ddos:syn_defense", apps.syn_defense_delta()),
        ("cc:dctcp", apps.dctcp_delta()),
        ("cc:hpcc", apps.hpcc_delta()),
        ("firewall", apps.firewall_delta()),
        ("loadbalancer", apps.load_balancer_delta()),
        ("nat", apps.nat_delta()),
        ("ratelimit", apps.rate_limit_delta()),
        ("sketch:count_min", apps.count_min_delta()),
        ("telemetry:int_probe", apps.int_probe_delta()),
        (
            "monitoring:query",
            apps.query_delta(apps.QuerySpec(name="heavy_hitters", key_field="ipv4.src")),
        ),
    ]
    programs: list[tuple[str, Program]] = [("base", base)]
    for label, delta in deltas:
        patched, _ = apply_delta(base, delta)
        programs.append((label, patched))
    return programs
