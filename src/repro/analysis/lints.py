"""Dead-code / unused-state lints with fix-it hints.

All lints are WARNING severity: they never block admission (an unused
map is wasteful, not unsafe) but each carries a concrete fix-it so
``repro check`` output is directly actionable. Codes:

* ``LINT-UNUSED-MAP``      — a map no applied element reads or writes.
* ``LINT-WRITE-ONLY-MAP``  — a map that is written but never read.
* ``LINT-DEAD-ELEMENT``    — a table/function unreachable from apply.
* ``LINT-UNUSED-ACTION``   — an action no table lists.
* ``LINT-UNPARSED-KEY``    — a table/map keyed on a header the parser
  never extracts; on parsed-packet targets those entries can never
  match (the paper's "unreachable table entries").
* ``LINT-OVERSIZED-TABLE`` — an exact-match table sized beyond its key
  space (size > 2**key_bits); the excess entries are unreachable.
"""

from __future__ import annotations

from repro.analysis.dataflow import DataflowInfo
from repro.analysis.report import Finding, Severity
from repro.lang import ir


def _warn(code: str, element: str, message: str, fixit: str) -> Finding:
    return Finding(
        code=code,
        severity=Severity.WARNING,
        message=message,
        pass_name="lint",
        element=element,
        fixit=fixit,
    )


def _parsed_headers(program: ir.Program) -> frozenset[str] | None:
    """Headers the parser extracts, or None when there is no parser
    (headerless/metadata-only programs are not linted for parse reach)."""
    if program.parser is None:
        return None
    return frozenset(program.parser.headers_extracted)


def check_lints(program: ir.Program, dataflow: DataflowInfo) -> list[Finding]:
    findings: list[Finding] = []
    program_access = dataflow.program_access
    parsed = _parsed_headers(program)

    # -- map usage ---------------------------------------------------------
    for map_def in program.maps:
        read = map_def.name in program_access.map_reads
        written = map_def.name in program_access.map_writes
        if not read and not written:
            findings.append(
                _warn(
                    "LINT-UNUSED-MAP",
                    map_def.name,
                    f"map {map_def.name!r} ({map_def.max_entries} entries) is never "
                    "read or written by any applied element",
                    f"remove it: delta.RemoveElements(('{map_def.name}',))",
                )
            )
        elif written and not read:
            findings.append(
                _warn(
                    "LINT-WRITE-ONLY-MAP",
                    map_def.name,
                    f"map {map_def.name!r} is written but never read — state that "
                    "no lookup can observe",
                    "read it via map_get(...) somewhere, export it through "
                    "emit_digest, or remove the writes",
                )
            )

    # -- dead elements -----------------------------------------------------
    for table in program.tables:
        if table.name not in dataflow.applied:
            findings.append(
                _warn(
                    "LINT-DEAD-ELEMENT",
                    table.name,
                    f"table {table.name!r} is not reachable from the apply block",
                    f"add ApplyTable({table.name!r}) to apply, or remove the table",
                )
            )
    for function in program.functions:
        if function.name not in dataflow.applied:
            findings.append(
                _warn(
                    "LINT-DEAD-ELEMENT",
                    function.name,
                    f"function {function.name!r} is not reachable from the apply block",
                    f"add ApplyFunction({function.name!r}) to apply, or remove it",
                )
            )

    # -- unused actions ----------------------------------------------------
    listed: set[str] = set()
    for table in program.tables:
        listed.update(table.actions)
        if table.default_action is not None:
            listed.add(table.default_action.action)
    for action in program.actions:
        if action.name not in listed:
            findings.append(
                _warn(
                    "LINT-UNUSED-ACTION",
                    action.name,
                    f"action {action.name!r} is not listed by any table",
                    f"list it in a table's actions or remove it: "
                    f"delta.RemoveElements(('{action.name}',))",
                )
            )

    # -- unreachable entries: keys over unparsed headers -------------------
    if parsed is not None:
        for table in program.tables:
            bad = sorted({k.field.header for k in table.keys} - parsed)
            if bad and table.name in dataflow.applied:
                findings.append(
                    _warn(
                        "LINT-UNPARSED-KEY",
                        table.name,
                        f"table {table.name!r} matches on header(s) {bad} that the "
                        "parser never extracts; its entries can never match",
                        f"add a ParserTransition extracting {bad[0]!r}, or key the "
                        "table on a parsed header",
                    )
                )
        for map_def in program.maps:
            bad = sorted({ref.header for ref in map_def.key_fields} - parsed)
            if bad and (
                dataflow.readers_of_map(map_def.name) or dataflow.writers_of_map(map_def.name)
            ):
                findings.append(
                    _warn(
                        "LINT-UNPARSED-KEY",
                        map_def.name,
                        f"map {map_def.name!r} is keyed on header(s) {bad} that the "
                        "parser never extracts; every lookup sees zero-valued keys",
                        f"add a ParserTransition extracting {bad[0]!r}, or re-key "
                        "the map",
                    )
                )

    # -- oversized exact tables --------------------------------------------
    for table in program.tables:
        if table.is_ternary or table.is_lpm or not table.keys:
            continue
        key_bits = program.table_key_bits(table)
        if key_bits < 63 and table.size > (1 << key_bits):
            findings.append(
                _warn(
                    "LINT-OVERSIZED-TABLE",
                    table.name,
                    f"exact table {table.name!r} declares {table.size} entries but its "
                    f"{key_bits}-bit key space only has {1 << key_bits} distinct keys; "
                    "the surplus entries are unreachable",
                    f"delta.SetTableSize({table.name!r}, {1 << key_bits})",
                )
            )

    return findings
