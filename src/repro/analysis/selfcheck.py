"""FlexVet front 2: codebase determinism auditor.

Same-seed reproducibility is a correctness contract for this repo: the
differential harness, consensus seeding, and the FlexHA resync digests
all assume that running the same scenario twice yields bit-identical
results. PR 5 had to repair that contract by hand after a
process-salted builtin ``hash()`` leaked into consensus seeding —
exactly the class of bug no unit test catches, because each individual
process is self-consistent.

This module walks the source tree's AST and flags the nondeterminism
patterns the repo has actually been bitten by:

* ``VET-HASH`` — builtin ``hash()`` calls. Python salts string hashing
  per process (PYTHONHASHSEED), so any ``hash()`` that can reach a
  seed, digest, or persisted value diverges across runs. Use
  :func:`repro.util.stable_hash` / :func:`repro.util.stable_digest`.
* ``VET-RNG`` — unseeded randomness: ``random.Random()`` with no seed
  argument, or module-level ``random.random()`` / ``randrange`` /
  ``choice`` / etc. (the module-level generator is seeded from OS
  entropy).
* ``VET-CLOCK`` — wall-clock reads (``time.time``, ``perf_counter``,
  ``monotonic``, ``datetime.now`` ...). The simulator runs on virtual
  time; a real-clock read inside a sim path makes results
  machine-dependent. Benchmarks legitimately measure wall time, which
  is what the baseline file is for.
* ``VET-SETITER`` — iteration over a ``set`` literal, set
  comprehension, or ``set(...)`` call. Set iteration order depends on
  insertion *and* hash salting; feeding it into a report or seed
  reorders output across runs. Wrap in ``sorted(...)``.

Findings are matched against a checked-in baseline
(``analysis/vet_baseline.json``) keyed on *(code, file, enclosing
symbol, expression)* — deliberately not on line numbers, so unrelated
edits don't churn the baseline. CI fails only on findings absent from
the baseline; ``flexnet vet --self --update-baseline`` re-pins it.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path

#: Wall-clock attributes of the ``time`` module.
_CLOCK_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
#: Wall-clock constructors on ``datetime`` / ``datetime.datetime``.
_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: Module-level ``random.<fn>`` calls that use the global unseeded RNG.
_MODULE_RNG_ATTRS = {
    "random",
    "randrange",
    "randint",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "getrandbits",
    "randbytes",
}


@dataclass(frozen=True)
class AuditFinding:
    """One flagged nondeterminism site."""

    code: str  # VET-HASH | VET-RNG | VET-CLOCK | VET-SETITER
    path: str  # repo-relative posix path
    symbol: str  # enclosing class/function, "<module>" at top level
    detail: str  # the offending expression, unparsed
    line: int
    message: str

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Baseline identity — stable across unrelated line churn."""
        return (self.code, self.path, self.symbol, self.detail)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "symbol": self.symbol,
            "detail": self.detail,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.code} {self.path}:{self.line} in {self.symbol}: "
            f"{self.message} — `{self.detail}`"
        )


@dataclass(frozen=True)
class AuditReport:
    """Self-audit outcome (FlexScope ``Reportable``)."""

    root: str
    files_scanned: int
    findings: tuple[AuditFinding, ...]
    #: findings not covered by the baseline — these fail CI.
    new_findings: tuple[AuditFinding, ...]
    #: baseline entries no longer matched by any finding.
    stale_baseline: tuple[tuple[str, str, str, str], ...]

    @property
    def clean(self) -> bool:
        return not self.new_findings

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "new_findings": [f.to_dict() for f in self.new_findings],
            "stale_baseline": [list(key) for key in self.stale_baseline],
            "clean": self.clean,
        }

    def summary(self) -> str:
        by_code: dict[str, int] = {}
        for finding in self.findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        breakdown = ", ".join(f"{c}={n}" for c, n in sorted(by_code.items()))
        lines = [
            f"flexvet self-audit: {self.files_scanned} file(s), "
            f"{len(self.findings)} finding(s)"
            + (f" ({breakdown})" if breakdown else "")
            + f", {len(self.new_findings)} new"
        ]
        for finding in self.new_findings:
            lines.append(f"  NEW {finding.render()}")
        baselined = [f for f in self.findings if f not in self.new_findings]
        for finding in baselined:
            lines.append(f"  baselined {finding.render()}")
        for key in self.stale_baseline:
            lines.append(f"  stale baseline entry: {' / '.join(key)}")
        return "\n".join(lines)


def _truncate(text: str, limit: int = 120) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


class _Auditor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[AuditFinding] = []
        self._symbols: list[str] = []

    # -- bookkeeping -------------------------------------------------------

    @property
    def symbol(self) -> str:
        return ".".join(self._symbols) if self._symbols else "<module>"

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            AuditFinding(
                code=code,
                path=self.path,
                symbol=self.symbol,
                detail=_truncate(ast.unparse(node)),
                line=getattr(node, "lineno", 0),
                message=message,
            )
        )

    def _scoped(self, node, name: str) -> None:
        self._symbols.append(name)
        self.generic_visit(node)
        self._symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scoped(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scoped(node, node.name)

    # -- detectors ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "hash":
                self._flag(
                    "VET-HASH",
                    node,
                    "builtin hash() is salted per process; use "
                    "repro.util.stable_hash/stable_digest",
                )
            elif func.id == "Random" and not node.args and not node.keywords:
                self._flag(
                    "VET-RNG", node, "Random() without a seed is OS-entropy seeded"
                )
        elif isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id == "random":
                    if func.attr == "Random" and not node.args and not node.keywords:
                        self._flag(
                            "VET-RNG",
                            node,
                            "random.Random() without a seed is OS-entropy seeded",
                        )
                    elif func.attr in _MODULE_RNG_ATTRS:
                        self._flag(
                            "VET-RNG",
                            node,
                            "module-level random.* uses the global unseeded RNG",
                        )
                elif owner.id == "time" and func.attr in _CLOCK_ATTRS:
                    self._flag(
                        "VET-CLOCK",
                        node,
                        "wall-clock read; sim paths must use virtual time",
                    )
                elif owner.id in {"datetime", "date"} and func.attr in _DATETIME_ATTRS:
                    self._flag("VET-CLOCK", node, "wall-clock datetime read")
            elif (
                isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "datetime"
                and func.attr in _DATETIME_ATTRS
            ):
                self._flag("VET-CLOCK", node, "wall-clock datetime read")
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.expr) -> None:
        unordered = isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"set", "frozenset"}
        )
        if unordered:
            self._flag(
                "VET-SETITER",
                iterable,
                "iteration over a set is salt-order dependent; wrap in sorted()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_holder(self, node) -> None:
        for comp in node.generators:
            self._check_iterable(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_holder
    visit_SetComp = _visit_comprehension_holder
    visit_DictComp = _visit_comprehension_holder
    visit_GeneratorExp = _visit_comprehension_holder


# ---------------------------------------------------------------------------
# Tree walk + baseline
# ---------------------------------------------------------------------------


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(root: Path | None = None) -> Path:
    root = root if root is not None else default_root()
    return root / "analysis" / "vet_baseline.json"


def audit_tree(root: Path | None = None) -> tuple[int, list[AuditFinding]]:
    """Scan every ``.py`` file under ``root``; return (count, findings)."""
    root = root if root is not None else default_root()
    findings: list[AuditFinding] = []
    files = sorted(root.rglob("*.py"))
    for path in files:
        relpath = path.relative_to(root).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        auditor = _Auditor(relpath)
        auditor.visit(tree)
        findings.extend(auditor.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return len(files), findings


def load_baseline(path: Path) -> set[tuple[str, str, str, str]]:
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {tuple(entry) for entry in payload.get("findings", [])}


def write_baseline(path: Path, findings: list[AuditFinding]) -> None:
    payload = {
        "comment": (
            "FlexVet determinism-audit baseline. Entries are "
            "(code, path, symbol, expression) for accepted findings; "
            "regenerate with `flexnet vet --self --update-baseline`."
        ),
        "findings": sorted(list(f.key) for f in findings),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def run_selfcheck(
    root: Path | None = None, baseline_path: Path | None = None
) -> AuditReport:
    """Audit the tree and diff against the committed baseline."""
    root = root if root is not None else default_root()
    baseline_path = (
        baseline_path if baseline_path is not None else default_baseline_path(root)
    )
    files_scanned, findings = audit_tree(root)
    baseline = load_baseline(baseline_path)
    new = tuple(f for f in findings if f.key not in baseline)
    matched = {f.key for f in findings}
    stale = tuple(sorted(key for key in baseline if key not in matched))
    return AuditReport(
        root=str(root),
        files_scanned=files_scanned,
        findings=tuple(findings),
        new_findings=new,
        stale_baseline=stale,
    )
