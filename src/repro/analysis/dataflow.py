"""Def-use / data-flow analysis over FlexBPF IR.

Computes, for every program element (table, function, action, and the
apply block itself), the set of header fields, metadata keys, and maps
it *reads* and *writes*. These access sets are the substrate every
other FlexCheck pass builds on: the race detector intersects them
across program versions, the tenant-interference pass intersects them
across tenants, and the lints look for elements whose sets prove them
dead or useless.

The analysis is a sound over-approximation: both branches of every
``If``/``ApplyIf`` are assumed reachable, every action a table lists is
assumed invocable, and primitive side effects are modelled as metadata
writes (``mark_drop`` → ``meta.drop_flag``, ``set_port`` →
``meta.egress_port``, ...). Consequently any access observed while
executing packets through :mod:`repro.simulator.pipeline_exec` is
contained in the static sets — the property tests in
``tests/property/`` assert exactly this inclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ir

#: Metadata keys written by each datapath primitive, matching the keys
#: the interpreter actually writes. ``emit_digest`` appends to the
#: packet's digest list rather than metadata, so it is modelled as a
#: write to the synthetic ``_digest`` key (``_``-prefixed keys are
#: treated as non-shared state by the race pass).
PRIMITIVE_META_WRITES: dict[str, tuple[str, ...]] = {
    "mark_drop": ("drop_flag",),
    "set_port": ("egress_port",),
    "set_queue": ("queue_id",),
    "emit_digest": ("_digest",),
    "clone": ("clones",),
    "recirculate": ("_recirculate",),
    "no_op": (),
}


@dataclass(frozen=True)
class AccessSet:
    """Read/write footprint of one element (or a union of elements)."""

    field_reads: frozenset[ir.FieldRef] = frozenset()
    field_writes: frozenset[ir.FieldRef] = frozenset()
    meta_reads: frozenset[str] = frozenset()
    meta_writes: frozenset[str] = frozenset()
    map_reads: frozenset[str] = frozenset()
    map_writes: frozenset[str] = frozenset()

    def __or__(self, other: "AccessSet") -> "AccessSet":
        return AccessSet(
            field_reads=self.field_reads | other.field_reads,
            field_writes=self.field_writes | other.field_writes,
            meta_reads=self.meta_reads | other.meta_reads,
            meta_writes=self.meta_writes | other.meta_writes,
            map_reads=self.map_reads | other.map_reads,
            map_writes=self.map_writes | other.map_writes,
        )

    @property
    def reads_anything(self) -> bool:
        return bool(self.field_reads or self.meta_reads or self.map_reads)

    @property
    def writes_anything(self) -> bool:
        return bool(self.field_writes or self.meta_writes or self.map_writes)

    def touches_map(self, map_name: str) -> bool:
        return map_name in self.map_reads or map_name in self.map_writes

    def to_dict(self) -> dict:
        return {
            "field_reads": sorted(str(f) for f in self.field_reads),
            "field_writes": sorted(str(f) for f in self.field_writes),
            "meta_reads": sorted(self.meta_reads),
            "meta_writes": sorted(self.meta_writes),
            "map_reads": sorted(self.map_reads),
            "map_writes": sorted(self.map_writes),
        }


class _Collector:
    """Mutable accumulator the tree walkers write into."""

    def __init__(self) -> None:
        self.field_reads: set[ir.FieldRef] = set()
        self.field_writes: set[ir.FieldRef] = set()
        self.meta_reads: set[str] = set()
        self.meta_writes: set[str] = set()
        self.map_reads: set[str] = set()
        self.map_writes: set[str] = set()

    def freeze(self) -> AccessSet:
        return AccessSet(
            field_reads=frozenset(self.field_reads),
            field_writes=frozenset(self.field_writes),
            meta_reads=frozenset(self.meta_reads),
            meta_writes=frozenset(self.meta_writes),
            map_reads=frozenset(self.map_reads),
            map_writes=frozenset(self.map_writes),
        )

    # -- expressions (always reads) ---------------------------------------

    def expr(self, expr: ir.Expr) -> None:
        if isinstance(expr, ir.FieldRef):
            self.field_reads.add(expr)
        elif isinstance(expr, ir.MetaRef):
            self.meta_reads.add(expr.key)
        elif isinstance(expr, ir.BinOp):
            self.expr(expr.left)
            self.expr(expr.right)
        elif isinstance(expr, ir.UnOp):
            self.expr(expr.operand)
        elif isinstance(expr, ir.MapGet):
            self.map_reads.add(expr.map_name)
            for part in expr.key:
                self.expr(part)
        elif isinstance(expr, ir.HashExpr):
            for arg in expr.args:
                self.expr(arg)
        # Const / VarRef: no element-level data flow.

    # -- statements --------------------------------------------------------

    def stmt(self, stmt: ir.Stmt) -> None:
        if isinstance(stmt, ir.Let):
            self.expr(stmt.value)
        elif isinstance(stmt, ir.Assign):
            self.expr(stmt.value)
            if isinstance(stmt.target, ir.FieldRef):
                self.field_writes.add(stmt.target)
            elif isinstance(stmt.target, ir.MetaRef):
                self.meta_writes.add(stmt.target.key)
        elif isinstance(stmt, ir.MapPut):
            self.map_writes.add(stmt.map_name)
            for part in stmt.key:
                self.expr(part)
            self.expr(stmt.value)
        elif isinstance(stmt, ir.MapDelete):
            self.map_writes.add(stmt.map_name)
            for part in stmt.key:
                self.expr(part)
        elif isinstance(stmt, ir.If):
            self.expr(stmt.condition)
            self.body(stmt.then_body)
            self.body(stmt.else_body)
        elif isinstance(stmt, ir.Repeat):
            self.body(stmt.body)
        elif isinstance(stmt, ir.PrimitiveCall):
            for arg in stmt.args:
                self.expr(arg)
            for key in PRIMITIVE_META_WRITES.get(stmt.name, ()):
                self.meta_writes.add(key)

    def body(self, body: tuple[ir.Stmt, ...]) -> None:
        for stmt in body:
            self.stmt(stmt)


def access_of_body(body: tuple[ir.Stmt, ...]) -> AccessSet:
    collector = _Collector()
    collector.body(body)
    return collector.freeze()


def access_of_action(action: ir.ActionDef) -> AccessSet:
    return access_of_body(action.body)


def access_of_table(program: ir.Program, table: ir.TableDef) -> AccessSet:
    """Keys are reads; the union of all listed actions may run."""
    collector = _Collector()
    for key in table.keys:
        collector.field_reads.add(key.field)
    access = collector.freeze()
    action_names = set(table.actions)
    if table.default_action is not None:
        action_names.add(table.default_action.action)
    for name in sorted(action_names):
        access = access | access_of_action(program.action(name))
    return access


@dataclass(frozen=True)
class DataflowInfo:
    """Full data-flow summary of one program."""

    program: ir.Program
    #: Access set per element name (tables, functions, actions).
    elements: dict[str, AccessSet]
    #: Elements reachable from the apply block (tables/functions named in
    #: apply steps, plus actions reachable via an applied table).
    applied: frozenset[str]
    #: Reads performed directly by apply-if conditions.
    apply_reads: AccessSet

    # -- indexed views -----------------------------------------------------

    def _applied_items(self):
        return ((name, acc) for name, acc in self.elements.items() if name in self.applied)

    def readers_of_map(self, map_name: str) -> frozenset[str]:
        return frozenset(n for n, a in self._applied_items() if map_name in a.map_reads)

    def writers_of_map(self, map_name: str) -> frozenset[str]:
        return frozenset(n for n, a in self._applied_items() if map_name in a.map_writes)

    def readers_of_field(self, ref: ir.FieldRef) -> frozenset[str]:
        return frozenset(n for n, a in self._applied_items() if ref in a.field_reads)

    def writers_of_field(self, ref: ir.FieldRef) -> frozenset[str]:
        return frozenset(n for n, a in self._applied_items() if ref in a.field_writes)

    @property
    def program_access(self) -> AccessSet:
        """Union access set over everything reachable from apply."""
        total = self.apply_reads
        for _, access in self._applied_items():
            total = total | access
        return total

    def element_access(self, name: str) -> AccessSet:
        return self.elements.get(name, AccessSet())


def _applied_elements(program: ir.Program) -> tuple[frozenset[str], AccessSet]:
    """Names reachable from the apply block + direct apply-if reads."""
    reached: set[str] = set()
    collector = _Collector()

    def walk(steps: tuple[ir.ApplyStep, ...]) -> None:
        for step in steps:
            if isinstance(step, ir.ApplyTable):
                reached.add(step.table)
                table = program.table(step.table)
                for action_name in table.actions:
                    reached.add(action_name)
                if table.default_action is not None:
                    reached.add(table.default_action.action)
            elif isinstance(step, ir.ApplyFunction):
                reached.add(step.function)
            else:
                collector.expr(step.condition)
                walk(step.then_steps)
                walk(step.else_steps)

    walk(program.apply)
    return frozenset(reached), collector.freeze()


def executed_slice(
    program: ir.Program, info: DataflowInfo, hosted_elements: set[str] | None
) -> tuple[set[str], AccessSet]:
    """The elements one device actually executes, plus their union access.

    ``hosted_elements`` is the placement model's hosting set: a device
    hosts a subset of tables/functions (apply-if conditions always run).
    Hosting a table implies executing its actions. ``None`` hosts the
    whole program. Shared by the cacheability and FlexVet passes so both
    agree on what "this device runs" means.
    """
    if hosted_elements is None:
        return set(info.applied), info.program_access
    hosted = frozenset(hosted_elements)
    executed: set[str] = set()
    for table in program.tables:
        if table.name in info.applied and table.name in hosted:
            executed.add(table.name)
            executed.update(table.actions)
            if table.default_action is not None:
                executed.add(table.default_action.action)
    for function in program.functions:
        if function.name in info.applied and function.name in hosted:
            executed.add(function.name)
    access = info.apply_reads
    for name in sorted(executed):
        access = access | info.element_access(name)
    return executed, access


def analyze(program: ir.Program) -> DataflowInfo:
    """Compute access sets for every element of ``program``."""
    elements: dict[str, AccessSet] = {}
    for action in program.actions:
        elements[action.name] = access_of_action(action)
    for table in program.tables:
        elements[table.name] = access_of_table(program, table)
    for function in program.functions:
        elements[function.name] = access_of_body(function.body)
    applied, apply_reads = _applied_elements(program)
    return DataflowInfo(
        program=program, elements=elements, applied=applied, apply_reads=apply_reads
    )
