"""FlexVet front 1: static parallelism-safety classification.

FlexScale (sharded multi-process simulation) and the batched/vectorized
packet engine both need to know, *before any process is forked*, which
program state can be partitioned, which must be co-located, and which
forbids reordering packets at all. This pass answers that with an
abstract interpretation over the FlexBPF IR that assigns every map (and
every stage that touches one) a state class:

* ``stateless`` — the map is never mutated from the data path (reads of
  control-plane-populated state are fine: such maps replicate to every
  shard, with mutation counters invalidating caches exactly as the
  FlexPath flow cache already does). Elements are stateless when they
  touch no data-plane-mutated map at all.
* ``per_flow`` — every data-path access keys the map by the *same*
  tuple of packet header fields, and none of those fields is rewritten
  by the data path. Packets can then be partitioned by those fields:
  two packets touching the same entry necessarily agree on the
  partition fields, so a shard that owns a slice of the field space
  observes every access to its entries.
* ``cross_flow`` — anything else: hash-bucketed keys (sketches, load
  balancers deliberately alias many flows into one entry), constant or
  metadata keys, keys derived from other map values or action
  arguments, access sites that disagree on which field feeds a key
  position (the firewall writes ``(dst, src)`` but reads ``(src,
  dst)``), or partition fields the program itself rewrites (NAT
  rewrites ``ipv4.src``, so nothing downstream can shard by it).

From the per-map classes the pass derives:

* **batch-safety** — a program is ``batch_safe`` when reordering
  packets of *different* flows cannot change any outcome: every
  data-plane-mutated map is ``per_flow`` and all of them share at least
  one common partition field (the ``flow_key``). A vectorized
  struct-of-arrays backend may then sub-batch by the flow key and
  process groups in any order, preserving order only within a group.
  This generalizes :mod:`repro.analysis.cacheability` (cacheable ⇒
  stateless ⇒ batch-safe with an empty flow key).
* **shard-affinity** — data-plane-mutated maps co-accessed by one
  element must live on one shard; affinity groups are the connected
  components of that relation. A group is shardable when its members
  are all per-flow with a nonempty common partition field set,
  otherwise it is pinned to a single shard.

Like every FlexCheck pass this is a sound over-approximation: the
property tests in ``tests/property/test_prop_vet.py`` execute the
bundled corpus through the interpreter and assert the dynamic behaviour
is contained in the static classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.dataflow import analyze, executed_slice
from repro.lang import ir


class StateClass(enum.Enum):
    """How one map (or one stage's state footprint) relates to flows."""

    STATELESS = "stateless"
    PER_FLOW = "per_flow"
    CROSS_FLOW = "cross_flow"

    @property
    def rank(self) -> int:
        return {"stateless": 0, "per_flow": 1, "cross_flow": 2}[self.value]


#: Element name the report uses for reads performed directly by
#: apply-if conditions (they run on every device hosting any slice).
APPLY_ELEMENT = "<apply>"

# Abstract value kinds for key parts.
_FIELD = "field"
_CONST = "const"
_OPAQUE = "opaque"


# ---------------------------------------------------------------------------
# Abstract interpretation: key-signature collection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Access:
    """One syntactic map access with its abstract key signature."""

    map_name: str
    element: str
    kind: str  # "read" | "write"
    #: per key position: (_FIELD, "hdr.fld") | (_CONST, None) | (_OPAQUE, why)
    signature: tuple[tuple[str, str | None], ...]


def _abstract(expr: ir.Expr, env: dict[str, tuple[str, str | None]]):
    """Abstract value of ``expr``: which packet input (if any) it copies."""
    if isinstance(expr, ir.FieldRef):
        return (_FIELD, str(expr))
    if isinstance(expr, ir.Const):
        return (_CONST, None)
    if isinstance(expr, ir.VarRef):
        return env.get(expr.name, (_OPAQUE, f"local {expr.name!r}"))
    if isinstance(expr, ir.MetaRef):
        return (_OPAQUE, f"metadata {expr.key!r}")
    if isinstance(expr, ir.MapGet):
        return (_OPAQUE, f"value read from map {expr.map_name!r}")
    if isinstance(expr, ir.HashExpr):
        return (_OPAQUE, "hash bucket")
    return (_OPAQUE, "computed expression")


class _Scanner:
    """Walks bodies tracking local bindings, collecting map accesses."""

    def __init__(self) -> None:
        self.accesses: list[_Access] = []

    # -- expressions (reads) ----------------------------------------------

    def expr(self, expr: ir.Expr, env, element: str) -> None:
        if isinstance(expr, ir.MapGet):
            self.accesses.append(
                _Access(
                    map_name=expr.map_name,
                    element=element,
                    kind="read",
                    signature=tuple(_abstract(part, env) for part in expr.key),
                )
            )
            for part in expr.key:
                self.expr(part, env, element)
        elif isinstance(expr, ir.BinOp):
            self.expr(expr.left, env, element)
            self.expr(expr.right, env, element)
        elif isinstance(expr, ir.UnOp):
            self.expr(expr.operand, env, element)
        elif isinstance(expr, ir.HashExpr):
            for arg in expr.args:
                self.expr(arg, env, element)

    # -- statements --------------------------------------------------------

    def body(self, body: tuple[ir.Stmt, ...], env, element: str) -> None:
        for stmt in body:
            self.stmt(stmt, env, element)

    def stmt(self, stmt: ir.Stmt, env, element: str) -> None:
        if isinstance(stmt, ir.Let):
            self.expr(stmt.value, env, element)
            env[stmt.name] = _abstract(stmt.value, env)
        elif isinstance(stmt, ir.Assign):
            self.expr(stmt.value, env, element)
            if isinstance(stmt.target, ir.VarRef):
                env[stmt.target.name] = _abstract(stmt.value, env)
        elif isinstance(stmt, ir.MapPut):
            self.accesses.append(
                _Access(
                    map_name=stmt.map_name,
                    element=element,
                    kind="write",
                    signature=tuple(_abstract(part, env) for part in stmt.key),
                )
            )
            for part in stmt.key:
                self.expr(part, env, element)
            self.expr(stmt.value, env, element)
        elif isinstance(stmt, ir.MapDelete):
            self.accesses.append(
                _Access(
                    map_name=stmt.map_name,
                    element=element,
                    kind="write",
                    signature=tuple(_abstract(part, env) for part in stmt.key),
                )
            )
            for part in stmt.key:
                self.expr(part, env, element)
        elif isinstance(stmt, ir.If):
            self.expr(stmt.condition, env, element)
            then_env = dict(env)
            else_env = dict(env)
            self.body(stmt.then_body, then_env, element)
            self.body(stmt.else_body, else_env, element)
            # Join: a variable whose binding differs across branches is
            # control-flow dependent and no longer a plain field copy.
            for name in set(then_env) | set(else_env):
                left = then_env.get(name)
                right = else_env.get(name)
                if left == right:
                    if left is not None:
                        env[name] = left
                elif name in env and then_env.get(name) == env[name] == else_env.get(name):
                    pass
                else:
                    env[name] = (_OPAQUE, f"control-flow dependent local {name!r}")
        elif isinstance(stmt, ir.Repeat):
            # Later iterations may observe bindings produced by earlier
            # ones; pre-demote everything the body assigns before the scan
            # so first-iteration signatures are not treated as invariant.
            for name in _assigned_names(stmt.body):
                env[name] = (_OPAQUE, f"loop-carried local {name!r}")
            self.body(stmt.body, env, element)
        elif isinstance(stmt, ir.PrimitiveCall):
            for arg in stmt.args:
                self.expr(arg, env, element)


def _assigned_names(body: tuple[ir.Stmt, ...]) -> set[str]:
    names: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ir.Let):
            names.add(stmt.name)
        elif isinstance(stmt, ir.Assign) and isinstance(stmt.target, ir.VarRef):
            names.add(stmt.target.name)
        elif isinstance(stmt, ir.If):
            names |= _assigned_names(stmt.then_body) | _assigned_names(stmt.else_body)
        elif isinstance(stmt, ir.Repeat):
            names |= _assigned_names(stmt.body)
    return names


def _collect_accesses(
    program: ir.Program, executed: set[str]
) -> list[_Access]:
    """Every syntactic map access in the executed slice, attributed to
    the applied table/function that performs it (actions fold into each
    table listing them; apply-if condition reads get ``<apply>``)."""
    scanner = _Scanner()

    for table in program.tables:
        if table.name not in executed:
            continue
        action_names = set(table.actions)
        if table.default_action is not None:
            action_names.add(table.default_action.action)
        for action_name in sorted(action_names):
            action = program.action(action_name)
            env = {
                param: (_OPAQUE, f"action argument {param!r}")
                for param, _ in action.params
            }
            scanner.body(action.body, env, table.name)

    for function in program.functions:
        if function.name not in executed:
            continue
        scanner.body(function.body, {}, function.name)

    def walk(steps: tuple[ir.ApplyStep, ...]) -> None:
        for step in steps:
            if isinstance(step, ir.ApplyIf):
                scanner.expr(step.condition, {}, APPLY_ELEMENT)
                walk(step.then_steps)
                walk(step.else_steps)

    walk(program.apply)
    return scanner.accesses


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MapVet:
    """Static verdict for one map."""

    name: str
    state_class: StateClass
    #: "hdr.fld" partition fields (per_flow only) in key-position order.
    partition_fields: tuple[str, ...]
    readers: tuple[str, ...]
    writers: tuple[str, ...]
    #: why the map is cross-flow (empty otherwise).
    reasons: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "class": self.state_class.value,
            "partition_fields": list(self.partition_fields),
            "readers": list(self.readers),
            "writers": list(self.writers),
            "reasons": list(self.reasons),
        }


@dataclass(frozen=True)
class ElementVet:
    """Static verdict for one applied stage (table or function)."""

    name: str
    kind: str  # "table" | "function"
    state_class: StateClass
    #: data-plane-mutated maps this element reads or writes.
    stateful_maps: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "class": self.state_class.value,
            "stateful_maps": list(self.stateful_maps),
        }


@dataclass(frozen=True)
class AffinityGroup:
    """Maps that must be co-located (plus the stages that bind them)."""

    maps: tuple[str, ...]
    elements: tuple[str, ...]
    shardable: bool
    #: common partition fields when shardable.
    partition_fields: tuple[str, ...]
    #: why the group is pinned to one shard (None when shardable).
    pinned_reason: str | None

    def to_dict(self) -> dict:
        return {
            "maps": list(self.maps),
            "elements": list(self.elements),
            "shardable": self.shardable,
            "partition_fields": list(self.partition_fields),
            "pinned_reason": self.pinned_reason,
        }


@dataclass(frozen=True)
class VetReport:
    """The FlexVet classification of one program (or hosted slice).

    Implements the FlexScope :class:`~repro.observe.report.Reportable`
    protocol (``summary()``/``to_dict()``) so the CLI renders it through
    the shared ``emit()`` path.
    """

    program_name: str
    program_version: int
    #: sorted hosted element names, or None for the whole program.
    hosted: tuple[str, ...] | None
    maps: tuple[MapVet, ...]
    elements: tuple[ElementVet, ...]
    groups: tuple[AffinityGroup, ...]
    #: True when no data-plane map mutation exists in the slice (the
    #: cacheability precondition; trivially batch-safe).
    stateless: bool
    batch_safe: bool
    batch_reasons: tuple[str, ...]
    #: sorted common partition fields a batched backend may group by
    #: (empty for stateless programs — any grouping works).
    flow_key: tuple[str, ...]

    # -- lookups ----------------------------------------------------------

    def map_vet(self, name: str) -> MapVet:
        for verdict in self.maps:
            if verdict.name == name:
                return verdict
        raise KeyError(f"no map {name!r} in vet report")

    def element_vet(self, name: str) -> ElementVet:
        for verdict in self.elements:
            if verdict.name == name:
                return verdict
        raise KeyError(f"no element {name!r} in vet report")

    def maps_of_class(self, state_class: StateClass) -> tuple[str, ...]:
        return tuple(v.name for v in self.maps if v.state_class is state_class)

    @property
    def stateful_maps(self) -> tuple[str, ...]:
        """Maps mutated from the data path (per_flow ∪ cross_flow)."""
        return tuple(
            v.name for v in self.maps if v.state_class is not StateClass.STATELESS
        )

    # -- Reportable --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "program": self.program_name,
            "version": self.program_version,
            "hosted": list(self.hosted) if self.hosted is not None else None,
            "batch_safe": self.batch_safe,
            "batch_reasons": list(self.batch_reasons),
            "stateless": self.stateless,
            "flow_key": list(self.flow_key),
            "maps": [v.to_dict() for v in self.maps],
            "elements": [v.to_dict() for v in self.elements],
            "affinity_groups": [g.to_dict() for g in self.groups],
        }

    def summary(self) -> str:
        counts = {cls: 0 for cls in StateClass}
        for verdict in self.maps:
            counts[verdict.state_class] += 1
        scope = "" if self.hosted is None else f" [hosted: {', '.join(self.hosted)}]"
        lines = [
            f"flexvet {self.program_name!r} (version {self.program_version}){scope}: "
            f"batch_safe={'yes' if self.batch_safe else 'no'}"
            + (f" flow_key=({', '.join(self.flow_key)})" if self.flow_key else "")
            + f" — {counts[StateClass.PER_FLOW]} per-flow, "
            f"{counts[StateClass.CROSS_FLOW]} cross-flow, "
            f"{counts[StateClass.STATELESS]} stateless map(s)"
        ]
        if self.maps:
            lines.append("  maps:")
            for verdict in self.maps:
                extra = ""
                if verdict.state_class is StateClass.PER_FLOW:
                    extra = f"  partition=({', '.join(verdict.partition_fields)})"
                elif verdict.reasons:
                    extra = f"  {verdict.reasons[0]}"
                lines.append(
                    f"    {verdict.name:24s} {verdict.state_class.value:10s}{extra}"
                )
        if self.elements:
            lines.append("  elements:")
            for verdict in self.elements:
                touched = (
                    f"  [{', '.join(verdict.stateful_maps)}]"
                    if verdict.stateful_maps
                    else ""
                )
                lines.append(
                    f"    {verdict.name:24s} {verdict.kind:8s} "
                    f"{verdict.state_class.value:10s}{touched}"
                )
        if self.groups:
            lines.append("  shard affinity:")
            for index, group in enumerate(self.groups):
                if group.shardable:
                    detail = f"shard by ({', '.join(group.partition_fields)})"
                else:
                    detail = f"pinned — {group.pinned_reason}"
                lines.append(
                    f"    group {index}: {{{', '.join(group.maps)}}} {detail}"
                )
        for reason in self.batch_reasons:
            lines.append(f"  batch: {reason}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def _classify_map(
    name: str,
    accesses: list[_Access],
    written: bool,
    slice_field_writes: set[str],
) -> tuple[StateClass, tuple[str, ...], tuple[str, ...]]:
    """(class, partition fields, reasons) for one accessed map."""
    if not written:
        return StateClass.STATELESS, (), ()

    reasons: list[str] = []
    arity = len(accesses[0].signature)
    partition: list[str] = []
    for position in range(arity):
        parts = {access.signature[position] for access in accesses}
        kinds = {kind for kind, _ in parts}
        if _OPAQUE in kinds:
            details = sorted(
                detail for kind, detail in parts if kind == _OPAQUE and detail
            )
            reasons.append(
                f"key position {position} is not a packet field ({details[0]})"
            )
        elif kinds == {_FIELD}:
            fields = sorted(detail for _, detail in parts)
            if len(fields) == 1:
                partition.append(fields[0])
            else:
                reasons.append(
                    f"key position {position} disagrees across access sites "
                    f"({' vs '.join(fields)})"
                )
        elif _FIELD in kinds:
            reasons.append(
                f"key position {position} is sometimes a field, sometimes not"
            )
        # all-const positions select sub-entries; they neither help nor
        # hurt partitioning.
    if not reasons and not partition:
        reasons.append("keyed only by constants (one global entry set)")
    for field in partition:
        if field in slice_field_writes:
            reasons.append(
                f"partition field {field} is rewritten by the data path "
                f"(no longer identifies the ingress flow)"
            )
    if reasons:
        return StateClass.CROSS_FLOW, (), tuple(reasons)
    return StateClass.PER_FLOW, tuple(partition), ()


def vet(program: ir.Program, hosted_elements: set[str] | None = None) -> VetReport:
    """Classify every map and stage of ``program`` (or the slice one
    device hosts) and derive batch-safety and shard-affinity."""
    info = analyze(program)
    executed, access = executed_slice(program, info, hosted_elements)
    accesses = _collect_accesses(program, executed)

    slice_field_writes = {str(ref) for ref in access.field_writes}
    by_map: dict[str, list[_Access]] = {}
    for item in accesses:
        by_map.setdefault(item.map_name, []).append(item)
    written_maps = {a.map_name for a in accesses if a.kind == "write"}

    stage_names = {t.name for t in program.tables} | {
        f.name for f in program.functions
    }

    map_verdicts: list[MapVet] = []
    partition_by_map: dict[str, tuple[str, ...]] = {}
    class_by_map: dict[str, StateClass] = {}
    for map_def in sorted(program.maps, key=lambda m: m.name):
        name = map_def.name
        sites = by_map.get(name, [])
        if not sites:
            state_class, partition, reasons = StateClass.STATELESS, (), ()
        else:
            state_class, partition, reasons = _classify_map(
                name, sites, name in written_maps, slice_field_writes
            )
        readers = sorted(
            {a.element for a in sites if a.kind == "read" and a.element in stage_names | {APPLY_ELEMENT}}
        )
        writers = sorted({a.element for a in sites if a.kind == "write"})
        class_by_map[name] = state_class
        partition_by_map[name] = partition
        map_verdicts.append(
            MapVet(
                name=name,
                state_class=state_class,
                partition_fields=partition,
                readers=tuple(readers),
                writers=tuple(writers),
                reasons=reasons,
            )
        )

    stateful = {
        name for name, cls in class_by_map.items() if cls is not StateClass.STATELESS
    }

    # -- per-stage verdicts ------------------------------------------------
    element_verdicts: list[ElementVet] = []
    touched_by_element: dict[str, set[str]] = {}
    for kind, names in (
        ("table", [t.name for t in program.tables]),
        ("function", [f.name for f in program.functions]),
    ):
        for name in sorted(names):
            if name not in executed:
                continue
            element_access = info.element_access(name)
            touched = (
                (element_access.map_reads | element_access.map_writes) & stateful
            )
            touched_by_element[name] = touched
            if not touched:
                state_class = StateClass.STATELESS
            elif all(class_by_map[m] is StateClass.PER_FLOW for m in touched):
                state_class = StateClass.PER_FLOW
            else:
                state_class = StateClass.CROSS_FLOW
            element_verdicts.append(
                ElementVet(
                    name=name,
                    kind=kind,
                    state_class=state_class,
                    stateful_maps=tuple(sorted(touched)),
                )
            )

    # -- shard affinity: union-find over co-accessed stateful maps --------
    parent: dict[str, str] = {name: name for name in stateful}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(left: str, right: str) -> None:
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[max(root_left, root_right)] = min(root_left, root_right)

    for touched in touched_by_element.values():
        ordered = sorted(touched)
        for other in ordered[1:]:
            union(ordered[0], other)

    members: dict[str, set[str]] = {}
    for name in stateful:
        members.setdefault(find(name), set()).add(name)

    groups: list[AffinityGroup] = []
    for root in sorted(members):
        group_maps = tuple(sorted(members[root]))
        group_elements = tuple(
            sorted(
                element
                for element, touched in touched_by_element.items()
                if touched & members[root]
            )
        )
        cross = [m for m in group_maps if class_by_map[m] is StateClass.CROSS_FLOW]
        if cross:
            groups.append(
                AffinityGroup(
                    maps=group_maps,
                    elements=group_elements,
                    shardable=False,
                    partition_fields=(),
                    pinned_reason=f"cross-flow map(s): {', '.join(cross)}",
                )
            )
            continue
        common = set(partition_by_map[group_maps[0]])
        for name in group_maps[1:]:
            common &= set(partition_by_map[name])
        if common:
            groups.append(
                AffinityGroup(
                    maps=group_maps,
                    elements=group_elements,
                    shardable=True,
                    partition_fields=tuple(sorted(common)),
                    pinned_reason=None,
                )
            )
        else:
            groups.append(
                AffinityGroup(
                    maps=group_maps,
                    elements=group_elements,
                    shardable=False,
                    partition_fields=(),
                    pinned_reason="per-flow maps share no common partition field",
                )
            )

    # -- batch safety ------------------------------------------------------
    batch_reasons: list[str] = []
    flow_key: tuple[str, ...] = ()
    if stateful:
        for verdict in map_verdicts:
            if verdict.state_class is StateClass.CROSS_FLOW:
                why = verdict.reasons[0] if verdict.reasons else "cross-flow"
                batch_reasons.append(
                    f"map {verdict.name!r} is cross-flow: {why}"
                )
        if not batch_reasons:
            common = set(partition_by_map[sorted(stateful)[0]])
            for name in sorted(stateful):
                common &= set(partition_by_map[name])
            if common:
                flow_key = tuple(sorted(common))
            else:
                batch_reasons.append(
                    "per-flow maps share no common partition field to batch by"
                )

    return VetReport(
        program_name=program.name,
        program_version=program.version,
        hosted=tuple(sorted(hosted_elements)) if hosted_elements is not None else None,
        maps=tuple(map_verdicts),
        elements=tuple(element_verdicts),
        groups=tuple(groups),
        stateless=not stateful,
        batch_safe=not batch_reasons,
        batch_reasons=tuple(batch_reasons),
        flow_key=flow_key,
    )
