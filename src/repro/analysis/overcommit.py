"""Per-target overcommit analysis (§3.3).

Checks a Certificate's demand vectors against target budgets *before*
placement, so infeasible programs are rejected with a readable
diagnostic at admission time instead of failing deep inside
:mod:`repro.compiler.binpack` after compilation work has been done.

Two checks per target set:

* ``RES-ELEMENT-UNPLACEABLE`` (ERROR) — some element fits on *no*
  supplied target even with the device empty (e.g. a ternary table
  bigger than every TCAM, or a function exceeding every switch's
  ``max_function_ops``). Placement can never succeed.
* ``RES-AGGREGATE-OVERCOMMIT`` (ERROR) — summing each element's
  *cheapest feasible* demand still exceeds the summed capacity of the
  targets that could host it, per resource kind. This is a lower bound
  on any placement's usage, so exceeding it proves infeasibility
  without running the bin-packer.
* ``RES-NEAR-CAPACITY`` (WARNING) — aggregate demand lands above 90 %
  of a kind's total capacity: placeable, but leaves no headroom for
  runtime growth deltas.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.report import Finding, Severity
from repro.lang.analyzer import Certificate
from repro.targets.base import Target
from repro.targets.resources import ResourceVector

#: Aggregate utilization above which RES-NEAR-CAPACITY fires.
NEAR_CAPACITY_FRACTION = 0.9


def check_overcommit(
    certificate: Certificate, targets: Sequence[Target]
) -> list[Finding]:
    """Prove (or refute) that ``targets`` can jointly host the program."""
    findings: list[Finding] = []
    if not targets:
        return findings

    total_capacity = ResourceVector()
    for target in targets:
        total_capacity = total_capacity + target.capacity

    min_demand = ResourceVector()
    for name, profile in sorted(certificate.profiles.items()):
        if profile.kind == "action":
            continue  # actions ride along with their tables
        feasible: list[tuple[Target, ResourceVector]] = []
        for target in targets:
            if target.admits(profile):
                feasible.append((target, target.demand(profile)))
        if not feasible:
            per_target = "; ".join(
                f"{t.name}({t.arch}): "
                + (
                    ", ".join(
                        f"{kind} short {short:g}"
                        for kind, short in sorted(
                            t.demand(profile).deficit_against(t.capacity).items()
                        )
                    )
                    or "element kind unsupported"
                )
                for t in targets
            )
            findings.append(
                Finding(
                    code="RES-ELEMENT-UNPLACEABLE",
                    severity=Severity.ERROR,
                    message=(
                        f"{profile.kind} {name!r} fits on none of the "
                        f"{len(targets)} supplied target(s) even when empty "
                        f"[{per_target}]"
                    ),
                    pass_name="overcommit",
                    element=name,
                    fixit=_shrink_hint(profile.kind, name),
                )
            )
            continue
        # Cheapest feasible demand is a lower bound on what any placement
        # must spend on this element.
        cheapest = min(
            (demand for _, demand in feasible),
            key=lambda d: d.utilization_of(total_capacity),
        )
        min_demand = min_demand + cheapest

    deficit = min_demand.deficit_against(total_capacity)
    if deficit:
        detail = ", ".join(
            f"{kind}: need >= {min_demand[kind]:g}, have {total_capacity[kind]:g}"
            for kind in sorted(deficit)
        )
        findings.append(
            Finding(
                code="RES-AGGREGATE-OVERCOMMIT",
                severity=Severity.ERROR,
                message=(
                    f"program {certificate.program_name!r} overcommits the supplied "
                    f"target set even under the cheapest per-element assignment "
                    f"({detail}); no placement can succeed"
                ),
                pass_name="overcommit",
                fixit=(
                    "shrink the dominating tables/maps (delta.SetTableSize / "
                    "delta.SetMapEntries) or add devices to the slice"
                ),
            )
        )
    else:
        for kind in sorted(min_demand):
            cap = total_capacity[kind]
            if cap > 0 and min_demand[kind] / cap > NEAR_CAPACITY_FRACTION:
                findings.append(
                    Finding(
                        code="RES-NEAR-CAPACITY",
                        severity=Severity.WARNING,
                        message=(
                            f"aggregate {kind} demand ({min_demand[kind]:g}) uses "
                            f"{100 * min_demand[kind] / cap:.0f}% of total capacity "
                            f"({cap:g}); runtime growth deltas will likely fail "
                            "placement"
                        ),
                        pass_name="overcommit",
                        fixit="leave headroom: shrink declared sizes or add capacity",
                    )
                )

    return findings


def _shrink_hint(kind: str, name: str) -> str:
    if kind == "table":
        return f"shrink it (delta.SetTableSize({name!r}, <smaller>)) or target a bigger device"
    if kind == "map":
        return f"shrink it (delta.SetMapEntries({name!r}, <smaller>)) or target a bigger device"
    return "split the function or place it on a host/SmartNIC tier target"
