"""FlexCheck: static data-flow & reconfiguration-safety analysis.

The paper (§3.1) requires FlexBPF programs to be "analyzable to certify
bounded execution [and] well-behavedness" before runtime insertion.
:mod:`repro.lang.analyzer` certifies the *bounds* (ops, state); this
package certifies the *behaviour*: data flow, reconfiguration safety,
tenant isolation, and resource feasibility. One entry point:

    >>> from repro import analysis
    >>> report = analysis.check(program)                  # lints + dataflow
    >>> report = analysis.check(program, delta=my_delta)  # + race detection
    >>> report = analysis.check(program, target=targets)  # + overcommit
    >>> report.ok, report.to_json()

``check`` never raises on findings — it returns a :class:`Report`; the
admission pipeline (:meth:`repro.core.flexnet.FlexNet.admit`) turns
``report.errors`` into :class:`~repro.errors.AnalysisError`, and the
controller uses the race pass to escalate unsafe transitions onto the
two-phase consistent path instead of rejecting them outright.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.cacheability import CacheabilityDecision, decide as decide_cacheability
from repro.analysis.dataflow import AccessSet, DataflowInfo, analyze
from repro.analysis.interference import check_tenants
from repro.analysis.lints import check_lints
from repro.analysis.overcommit import check_overcommit
from repro.analysis.races import check_reconfig
from repro.analysis.report import Finding, Report, Severity
from repro.analysis.selfcheck import AuditFinding, AuditReport, run_selfcheck
from repro.analysis.vet import StateClass, VetReport, vet
from repro.lang import ir
from repro.lang.analyzer import Certificate, certify
from repro.lang.composition import TenantSpec
from repro.lang.delta import ChangeSet, Delta, apply_delta
from repro.targets.base import Target

__all__ = [
    "AccessSet",
    "AuditFinding",
    "AuditReport",
    "CacheabilityDecision",
    "DataflowInfo",
    "decide_cacheability",
    "Finding",
    "Report",
    "Severity",
    "StateClass",
    "VetReport",
    "analyze",
    "check",
    "check_lints",
    "check_overcommit",
    "check_reconfig",
    "check_tenants",
    "run_selfcheck",
    "vet",
]


def _as_targets(target) -> list[Target]:
    """Accept a Target, a sequence of Targets, or a NetworkSlice."""
    if target is None:
        return []
    if isinstance(target, Target):
        return [target]
    devices = getattr(target, "devices", None)
    if devices is not None:  # NetworkSlice duck type
        return [spec.target for spec in devices]
    return list(target)


def check(
    program: ir.Program,
    delta: Delta | None = None,
    target: Target | Sequence[Target] | object | None = None,
    *,
    tenants: Sequence[tuple[TenantSpec, ir.Program]] = (),
    two_phase: bool = False,
    certificate: Certificate | None = None,
) -> Report:
    """Run every applicable FlexCheck pass and return a :class:`Report`.

    Parameters
    ----------
    program:
        The (validated) live program to analyze.
    delta:
        Optional :class:`~repro.lang.delta.Delta` proposed against
        ``program``; enables the reconfiguration-race pass. The delta is
        applied to a scratch copy — ``program`` is never mutated.
    target:
        Optional :class:`~repro.targets.base.Target`, sequence of
        targets, or :class:`~repro.compiler.placement.NetworkSlice`;
        enables the overcommit pass.
    tenants:
        Optional ``(TenantSpec, extension_program)`` pairs; enables the
        tenant-interference pass against ``program`` as the base.
    two_phase:
        The proposed transition is already scheduled through the
        two-phase consistent path, downgrading race ERRORs to INFO.
    certificate:
        Reuse an existing Certificate instead of re-certifying (the
        admission pipeline already holds one).
    """
    program = program.validate()
    findings: list[Finding] = []
    passes = ["dataflow", "lint"]

    dataflow = analyze(program)
    findings.extend(check_lints(program, dataflow))

    if delta is not None:
        passes.append("race")
        new_program, changes = apply_delta(program, delta)
        findings.extend(
            check_reconfig(
                program,
                new_program,
                changes,
                two_phase=two_phase,
                old_dataflow=dataflow,
            )
        )

    if tenants:
        passes.append("tenant")
        findings.extend(check_tenants(program, tenants))

    targets = _as_targets(target)
    if targets:
        passes.append("overcommit")
        cert = certificate or certify(program)
        findings.extend(check_overcommit(cert, targets))

    return Report(
        program_name=program.name,
        program_version=program.version,
        findings=tuple(findings),
        passes_run=tuple(passes),
    )


def check_changeset(
    old_program: ir.Program,
    new_program: ir.Program,
    changes: ChangeSet,
    *,
    two_phase: bool = False,
) -> Report:
    """Race-only analysis for callers that already applied their delta
    (the controller's transition path)."""
    findings = tuple(
        check_reconfig(old_program, new_program, changes, two_phase=two_phase)
    )
    return Report(
        program_name=new_program.name,
        program_version=new_program.version,
        findings=findings,
        passes_run=("race",),
    )
