"""FlexCheck findings and reports.

Every FlexCheck pass emits :class:`Finding` objects with a stable code
(``RACE-...``, ``TENANT-...``, ``RES-...``, ``LINT-...``), a severity,
and — where the analysis can suggest one — a concrete fix-it hint. A
:class:`Report` aggregates findings for one analysis run; the admission
pipeline rejects on :attr:`Report.errors`, the CLI prints all of them,
and :meth:`Report.to_json` emits the machine-readable form benchmarks
and CI assert against.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is, in descending order of urgency.

    * ``ERROR`` — the program/delta is unsafe as analyzed; admission
      must reject it (or, for reconfiguration races, force it through
      the two-phase consistent path).
    * ``WARNING`` — legal but suspicious; surfaced to the operator.
    * ``INFO`` — an observation, e.g. a race that a stronger consistency
      schedule already mitigates.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a FlexCheck pass."""

    code: str
    severity: Severity
    message: str
    #: The pass that produced the finding ("dataflow", "lint", "race",
    #: "tenant", "overcommit").
    pass_name: str
    #: Program element the finding anchors to, when there is one.
    element: str | None = None
    #: Concrete suggested remediation, when the analysis can name one.
    fixit: str | None = None

    def to_dict(self) -> dict:
        data = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "pass": self.pass_name,
        }
        if self.element is not None:
            data["element"] = self.element
        if self.fixit is not None:
            data["fixit"] = self.fixit
        return data

    def __str__(self) -> str:
        where = f" [{self.element}]" if self.element else ""
        hint = f"\n      fix: {self.fixit}" if self.fixit else ""
        return f"{self.severity.value:7s} {self.code}{where}: {self.message}{hint}"


@dataclass(frozen=True)
class Report:
    """The aggregated result of one ``repro.analysis.check`` run."""

    program_name: str
    program_version: int
    findings: tuple[Finding, ...] = ()
    #: Which passes actually ran (races/overcommit only run when a delta
    #: or target is supplied).
    passes_run: tuple[str, ...] = field(default=())

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no finding blocks admission."""
        return not self.errors

    def by_pass(self, pass_name: str) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.pass_name == pass_name)

    def sorted_findings(self) -> tuple[Finding, ...]:
        return tuple(
            sorted(self.findings, key=lambda f: (f.severity.rank, f.code, f.element or ""))
        )

    def to_dict(self) -> dict:
        return {
            "program": self.program_name,
            "version": self.program_version,
            "passes": list(self.passes_run),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """FlexScope :class:`~repro.observe.report.Reportable` alias of
        :meth:`render`."""
        return self.render()

    def render(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        status = "OK" if self.ok else "REJECTED"
        lines = [
            f"flexcheck {self.program_name!r} (version {self.program_version}): {status} "
            f"— {len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"[passes: {', '.join(self.passes_run)}]"
        ]
        lines.extend(f"  {finding}" for finding in self.sorted_findings())
        return "\n".join(lines)
