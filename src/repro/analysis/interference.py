"""Tenant-interference analysis (multi-tenancy, §3.2/§3.5).

Proves that the merged datapath of base + tenant extensions shares no
*writable* field or map without a declared :class:`Permission`. This
strengthens :func:`repro.lang.composition.validate_extension` in two
ways: it is expressed as findings (so ``repro check`` can report every
violation at once instead of raising on the first), and it adds the
``writable_fields`` permission check — a tenant writing a base-program
header field that infrastructure elements read is cross-tenant
interference even when no *second* tenant writes the same field, which
is all the seed composer detected.

Codes:

* ``TENANT-MAP-WRITE``    — extension writes a map it did not declare.
* ``TENANT-MAP-READ``     — extension reads a base map with no matching
  ``readable_base_maps`` grant.
* ``TENANT-SHARED-FIELD`` — two tenants write the same shared header
  field (whoever runs last wins — order-dependent behaviour).
* ``TENANT-FIELD-PERM``   — extension writes a base header field that
  its ``writable_fields`` permission does not grant.
* ``TENANT-BASE-FIELD``   — (INFO) extension writes a base field that
  infrastructure elements read, under a legacy unrestricted permission;
  suggests declaring ``writable_fields`` explicitly.
"""

from __future__ import annotations

import fnmatch
from typing import Sequence

from repro.analysis.dataflow import AccessSet, analyze
from repro.analysis.report import Finding, Severity
from repro.lang import ir
from repro.lang.composition import TenantSpec


def _applied_access(program: ir.Program) -> AccessSet:
    return analyze(program).program_access


def check_tenants(
    base: ir.Program,
    tenants: Sequence[tuple[TenantSpec, ir.Program]],
) -> list[Finding]:
    """Analyze base + extensions for undeclared shared writable state."""
    findings: list[Finding] = []
    base_df = analyze(base)
    base_maps = {m.name for m in base.maps}
    base_headers = {h.name for h in base.headers}

    per_tenant: dict[str, AccessSet] = {}
    for spec, extension in tenants:
        permission = spec.permission
        local_maps = {m.name for m in extension.maps}
        access = _applied_access(extension)
        per_tenant[spec.name] = access

        # -- map writes outside the tenant's own namespace ------------------
        for map_name in sorted(access.map_writes - local_maps):
            findings.append(
                Finding(
                    code="TENANT-MAP-WRITE",
                    severity=Severity.ERROR,
                    message=(
                        f"tenant {spec.name!r} writes map {map_name!r} it does not "
                        "declare; no Permission grants write access to foreign maps"
                    ),
                    pass_name="tenant",
                    element=map_name,
                    fixit=(
                        f"declare a tenant-local map (it will be namespaced to "
                        f"'{spec.name}__{map_name}') or drop the write"
                    ),
                )
            )

        # -- base map reads require a readable_base_maps grant --------------
        for map_name in sorted(access.map_reads - local_maps):
            granted = map_name in base_maps and any(
                fnmatch.fnmatchcase(map_name, pattern)
                for pattern in permission.readable_base_maps
            )
            if not granted:
                findings.append(
                    Finding(
                        code="TENANT-MAP-READ",
                        severity=Severity.ERROR,
                        message=(
                            f"tenant {spec.name!r} reads map {map_name!r} without a "
                            "readable_base_maps grant"
                        ),
                        pass_name="tenant",
                        element=map_name,
                        fixit=(
                            f"grant it: Permission(readable_base_maps=({map_name!r},)) "
                            "— or declare the map locally"
                        ),
                    )
                )

        # -- writes to base header fields -----------------------------------
        shared_writes = sorted(
            (ref for ref in access.field_writes if ref.header in base_headers), key=str
        )
        for ref in shared_writes:
            if permission.writable_fields is not None:
                granted = any(
                    fnmatch.fnmatchcase(str(ref), pattern)
                    for pattern in permission.writable_fields
                )
                if not granted:
                    readers = sorted(base_df.readers_of_field(ref))
                    extra = (
                        f"; infrastructure element(s) {readers} read this field"
                        if readers
                        else ""
                    )
                    findings.append(
                        Finding(
                            code="TENANT-FIELD-PERM",
                            severity=Severity.ERROR,
                            message=(
                                f"tenant {spec.name!r} writes base field {ref} but its "
                                f"writable_fields permission "
                                f"{permission.writable_fields!r} does not grant it"
                                f"{extra}"
                            ),
                            pass_name="tenant",
                            element=str(ref),
                            fixit=(
                                f"grant it: Permission(writable_fields=('{ref}',)) — "
                                "or make the write tenant-local state instead"
                            ),
                        )
                    )
            else:
                # Legacy unrestricted permission: surface (not block) writes
                # that infrastructure logic observably depends on.
                readers = sorted(base_df.readers_of_field(ref))
                if readers:
                    findings.append(
                        Finding(
                            code="TENANT-BASE-FIELD",
                            severity=Severity.INFO,
                            message=(
                                f"tenant {spec.name!r} writes base field {ref} which "
                                f"infrastructure element(s) {readers} read; permission "
                                "is legacy-unrestricted (writable_fields=None)"
                            ),
                            pass_name="tenant",
                            element=str(ref),
                            fixit=(
                                f"pin the grant explicitly: "
                                f"Permission(writable_fields=('{ref}',))"
                            ),
                        )
                    )

    # -- pairwise tenant/tenant same-field writes ---------------------------
    names = sorted(per_tenant)
    tenant_headers = {
        spec.name: {h.name for h in ext.headers} for spec, ext in tenants
    }
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            shared_headers = base_headers | (
                tenant_headers.get(first, set()) & tenant_headers.get(second, set())
            )
            both = {
                ref
                for ref in per_tenant[first].field_writes & per_tenant[second].field_writes
                if ref.header in shared_headers
            }
            for ref in sorted(both, key=str):
                findings.append(
                    Finding(
                        code="TENANT-SHARED-FIELD",
                        severity=Severity.ERROR,
                        message=(
                            f"tenants {first!r} and {second!r} both write shared "
                            f"field {ref}; the composed pipeline's result depends "
                            "on tenant apply order"
                        ),
                        pass_name="tenant",
                        element=str(ref),
                        fixit=(
                            "move one write into a tenant-local header/metadata, or "
                            "have the operator arbitrate via an infrastructure table"
                        ),
                    )
                )

    return findings
