"""P4-style meters: token-bucket rate markers.

P4Runtime manages "counters, meters, and table rules" (§3.4). A meter
is attached to a table; each rule hit passes through the bucket and the
packet is coloured GREEN (conforming) or RED (exceeding), exposed to
the program as ``meta.meter_color`` so actions/functions can police
(drop RED) or de-prioritize.

The model is a single-rate two-colour token bucket with continuous
refill — sufficient for SLA policing experiments; the three-colour
variant adds nothing the experiments observe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import FlexNetError


class MeterColor(enum.Enum):
    GREEN = 0
    RED = 1


@dataclass
class MeterConfig:
    rate_pps: float
    burst_packets: float


class Meter:
    """One token bucket. Tokens are packets; refill is continuous."""

    def __init__(self, config: MeterConfig):
        if config.rate_pps <= 0 or config.burst_packets <= 0:
            raise FlexNetError("meter rate and burst must be positive")
        self.config = config
        self._tokens = config.burst_packets
        self._last_refill = 0.0
        self.green_count = 0
        self.red_count = 0

    def mark(self, now: float) -> MeterColor:
        """Colour one packet arriving at virtual time ``now``."""
        if now > self._last_refill:
            self._tokens = min(
                self.config.burst_packets,
                self._tokens + (now - self._last_refill) * self.config.rate_pps,
            )
            self._last_refill = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.green_count += 1
            return MeterColor.GREEN
        self.red_count += 1
        return MeterColor.RED

    @property
    def observed_green_fraction(self) -> float:
        total = self.green_count + self.red_count
        return self.green_count / total if total else 1.0
