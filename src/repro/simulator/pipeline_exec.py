"""Packet-level interpreter for FlexBPF programs.

A :class:`ProgramInstance` is one immutable program version *installed
on one device*, together with that device's runtime artifacts: table
rules and map state. The interpreter executes the program's parse
graph and apply block against a packet, faithfully modelling the
datapath semantics the rest of the system depends on:

* parsing controls header *visibility* — reads of unparsed headers
  return 0 and writes to them are ignored (as a real pipeline's PHV
  simply would not contain them);
* ``mark_drop`` sets the drop flag but the pipeline keeps executing
  (hardware drops at egress, so later stages still observe the packet);
* ``recirculate`` re-runs the apply block, bounded by
  ``MAX_RECIRCULATIONS``;
* every packet records the program version that processed it, which is
  what the consistency experiments check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.lang import ir
from repro.limits import RECIRCULATION_CAP
from repro.lang.maps import MapSet
from repro.simulator.packet import Packet, Verdict
from repro.simulator.tables import TableRules
from repro.util import stable_hash

MAX_RECIRCULATIONS = RECIRCULATION_CAP


@dataclass
class ExecutionResult:
    ops: int
    version: int
    recirculations: int = 0


class ProgramInstance:
    """One program version's runtime state on one device."""

    def __init__(self, program: ir.Program, hosted_elements: set[str] | None = None):
        self.program = program
        #: None hosts the whole program; otherwise only these elements
        #: execute here (the rest run on other devices of the slice).
        self.hosted_elements = hosted_elements
        self.rules: dict[str, TableRules] = {
            table.name: TableRules(table) for table in program.tables
        }
        self.maps = MapSet(program.maps)
        #: FlexPath: when enabled, packets execute through the compiled
        #: closure tree instead of the tree-walking interpreter. The
        #: compiled artifact is built lazily on the first packet (after
        #: any state sharing/adoption has re-bound rules and maps).
        self.fastpath_enabled = False
        self._compiled = None
        #: FlexBatch: when enabled, :meth:`process_batch` routes through
        #: the batched backend (which itself falls back per packet when
        #: the FlexVet gate refuses admission). Implies FlexPath.
        self.batching_enabled = False
        self._batch_executor = None
        #: FlexVet: lazily computed parallelism classification of the
        #: hosted slice (see :meth:`vet`).
        self._vet = None

    @property
    def version(self) -> int:
        return self.program.version

    def vet(self):
        """The FlexVet :class:`~repro.analysis.vet.VetReport` for the
        slice this instance hosts — the static parallelism contract a
        batched backend or FlexScale partitioner consults at install
        time. Computed once per instance (the program is immutable)."""
        if self._vet is None:
            from repro.analysis.vet import vet

            self._vet = vet(self.program, self.hosted_elements)
        return self._vet

    def hosts(self, element: str) -> bool:
        return self.hosted_elements is None or element in self.hosted_elements

    def adopt_state(self, previous: "ProgramInstance") -> None:
        """Carry map state and table rules over from the prior version
        (same-name, same-shape elements keep their contents across a
        hitless reconfiguration). Runtime artifacts configured through
        P4Runtime — the table meter, per-rule hit counters, and the miss
        count — travel with the rules, so e.g. an active rate limiter is
        not silently disabled by an unrelated delta."""
        self.maps.adopt(previous.maps)
        for name, old_rules in previous.rules.items():
            if name not in self.rules:
                continue
            self.rules[name].adopt_from(old_rules)

    # -- execution ------------------------------------------------------------

    def enable_fastpath(self, enabled: bool = True) -> None:
        """Toggle FlexPath compiled execution for this instance."""
        self.fastpath_enabled = enabled
        if not enabled:
            self._compiled = None

    def enable_batching(self, enabled: bool = True) -> None:
        """Toggle FlexBatch batched execution for this instance.

        Batching rides on the compiled fast path, so enabling it also
        enables FlexPath; disabling it leaves FlexPath as-is."""
        self.batching_enabled = enabled
        if enabled:
            self.fastpath_enabled = True
        else:
            self._batch_executor = None

    def batch_executor(self):
        """The lazily built FlexBatch executor for this instance (built
        on first use, after state sharing/adoption, like the compile)."""
        if self._batch_executor is None:
            from repro.simulator.batch import BatchExecutor

            self._batch_executor = BatchExecutor(self)
        return self._batch_executor

    def process_batch(self, batch, now: float = 0.0) -> list[ExecutionResult]:
        """Execute a batch of packets; accepts a
        :class:`~repro.simulator.batch.PacketBatch` or a plain packet
        list (wrapped with a uniform ``now``). Falls back to per-packet
        processing when batching is disabled, so callers need not
        branch."""
        from repro.simulator.batch import PacketBatch

        if not isinstance(batch, PacketBatch):
            batch = PacketBatch(batch, now=now)
        if not self.batching_enabled:
            return [
                self.process(packet, batch.times[index])
                for index, packet in enumerate(batch.packets)
            ]
        return self.batch_executor().execute(batch)

    def process(self, packet: Packet, now: float = 0.0, trace=None) -> ExecutionResult:
        # FlexScope: a sampled packet (``trace`` is a PacketTrace) always
        # runs through the interpreter, which narrates its execution into
        # the trace. FlexPath's differential-identity guarantee makes the
        # outcome identical to the compiled path, so sampling observes
        # real behaviour without instrumenting the closures.
        if self.fastpath_enabled and trace is None:
            compiled = self._compiled
            if compiled is None:
                from repro.simulator.fastpath import compile_instance

                compiled = self._compiled = compile_instance(self)
            return compiled.process(packet, now)
        interpreter = _Interpreter(self, packet, now, trace=trace)
        return interpreter.run()


class _Interpreter:
    def __init__(self, instance: ProgramInstance, packet: Packet, now: float = 0.0, trace=None):
        self._instance = instance
        self._program = instance.program
        self._packet = packet
        self._now = now
        self._ops = 0
        self._visible_headers: set[str] = set()
        self._recirculations = 0
        #: FlexScope frame collector for sampled packets (None otherwise).
        self._trace = trace

    def run(self) -> ExecutionResult:
        self._parse()
        self._run_apply()
        while self._packet.meta.pop("_recirculate", 0) and self._recirculations < MAX_RECIRCULATIONS:
            self._recirculations += 1
            if self._trace is not None:
                self._trace.recirculate(self._recirculations)
            self._parse()
            self._run_apply()
        if self._packet.meta.get("drop_flag"):
            self._packet.verdict = Verdict.DROP
        return ExecutionResult(
            ops=self._ops, version=self._program.version, recirculations=self._recirculations
        )

    # -- parsing -----------------------------------------------------------

    def _parse(self) -> None:
        self._run_parser()
        if self._trace is not None:
            self._trace.parse(tuple(sorted(self._visible_headers)))

    def _run_parser(self) -> None:
        self._visible_headers.clear()
        parser = self._program.parser
        if parser is None:
            # No parser: every declared header the packet carries is visible.
            self._visible_headers.update(
                header.name
                for header in self._program.headers
                if self._packet.has_header(header.name)
            )
            return
        if not self._packet.has_header(parser.start_header):
            return
        self._visible_headers.add(parser.start_header)
        self._ops += 1
        for transition in parser.transitions:
            self._ops += 1
            if not self._packet.has_header(transition.next_header):
                continue
            if transition.select_field is not None:
                if transition.select_field.header not in self._visible_headers:
                    continue
                actual = self._packet.get_field(
                    transition.select_field.header, transition.select_field.field
                )
                if actual != transition.select_value:
                    continue
            self._visible_headers.add(transition.next_header)

    # -- apply block ----------------------------------------------------------

    def _run_apply(self) -> None:
        self._exec_steps(self._program.apply)

    def _exec_steps(self, steps: tuple[ir.ApplyStep, ...]) -> None:
        for step in steps:
            if isinstance(step, ir.ApplyTable):
                if self._instance.hosts(step.table):
                    self._apply_table(step.table)
            elif isinstance(step, ir.ApplyFunction):
                if self._instance.hosts(step.function):
                    if self._trace is not None:
                        self._trace.function(step.function)
                    self._exec_body(self._program.function(step.function).body, {})
            else:
                self._ops += 1
                if self._truthy(self._eval(step.condition, {})):
                    self._exec_steps(step.then_steps)
                else:
                    self._exec_steps(step.else_steps)

    def _apply_table(self, table_name: str) -> None:
        table = self._program.table(table_name)
        rules = self._instance.rules[table_name]
        key_values = tuple(
            self._read_field(key.field.header, key.field.field) for key in table.keys
        )
        self._ops += 1
        action_call = rules.lookup(key_values)
        if self._trace is not None:
            self._trace.table(
                table_name,
                action_call is not None,
                action_call.action if action_call is not None else None,
            )
        if action_call is None:
            return
        if rules.meter is not None:
            color = rules.meter.mark(self._now)
            self._packet.meta["meter_color"] = color.value
        action = self._program.action(action_call.action)
        scope: dict[str, int] = {
            param_name: value
            for (param_name, _), value in zip(action.params, action_call.args)
        }
        self._exec_body(action.body, scope)

    # -- statements ---------------------------------------------------------------

    def _exec_body(self, body: tuple[ir.Stmt, ...], scope: dict[str, int]) -> None:
        for stmt in body:
            self._exec_stmt(stmt, scope)

    def _exec_stmt(self, stmt: ir.Stmt, scope: dict[str, int]) -> None:
        self._ops += 1
        if isinstance(stmt, ir.Let):
            scope[stmt.name] = stmt.value_type.truncate(self._as_int(self._eval(stmt.value, scope)))
        elif isinstance(stmt, ir.Assign):
            value = self._as_int(self._eval(stmt.value, scope))
            target = stmt.target
            if isinstance(target, ir.VarRef):
                scope[target.name] = value
            elif isinstance(target, ir.FieldRef):
                if target.header in self._visible_headers:
                    width = self._program.field_width(target)
                    self._packet.set_field(
                        target.header, target.field, value & ((1 << width) - 1)
                    )
            else:
                self._packet.meta[target.key] = value
        elif isinstance(stmt, ir.MapPut):
            key = tuple(self._as_int(self._eval(part, scope)) for part in stmt.key)
            value = self._as_int(self._eval(stmt.value, scope))
            if stmt.map_name in self._instance.maps:
                self._instance.maps.state(stmt.map_name).put(key, value)
            self._ops += 3
        elif isinstance(stmt, ir.MapDelete):
            key = tuple(self._as_int(self._eval(part, scope)) for part in stmt.key)
            if stmt.map_name in self._instance.maps:
                self._instance.maps.state(stmt.map_name).delete(key)
            self._ops += 3
        elif isinstance(stmt, ir.If):
            # Branches share the enclosing scope: assignments to outer
            # variables must be visible after the branch (the validator
            # already enforces lexical let-scoping statically).
            if self._truthy(self._eval(stmt.condition, scope)):
                self._exec_body(stmt.then_body, scope)
            else:
                self._exec_body(stmt.else_body, scope)
        elif isinstance(stmt, ir.Repeat):
            for _ in range(stmt.count):
                self._exec_body(stmt.body, scope)
        elif isinstance(stmt, ir.PrimitiveCall):
            self._exec_primitive(stmt, scope)
        else:  # pragma: no cover
            raise SimulationError(f"cannot execute {stmt!r}")

    def _exec_primitive(self, call: ir.PrimitiveCall, scope: dict[str, int]) -> None:
        args = [self._as_int(self._eval(arg, scope)) for arg in call.args]
        meta = self._packet.meta
        if call.name == "mark_drop":
            meta["drop_flag"] = 1
            if self._trace is not None:
                self._trace.drop()
        elif call.name == "set_port":
            meta["egress_port"] = args[0] if args else 0
        elif call.name == "set_queue":
            meta["queue_id"] = args[0] if args else 0
        elif call.name == "emit_digest":
            self._packet.digests.append((self._program.name, tuple(args)))
            if self._trace is not None:
                self._trace.digest(self._program.name, tuple(args))
        elif call.name == "clone":
            meta["clones"] = meta.get("clones", 0) + 1
        elif call.name == "recirculate":
            meta["_recirculate"] = 1
        elif call.name == "no_op":
            pass
        else:  # pragma: no cover - validator rejects unknown primitives
            raise SimulationError(f"unknown primitive {call.name!r}")

    # -- expressions ----------------------------------------------------------------

    def _read_field(self, header: str, field_name: str) -> int:
        if header not in self._visible_headers:
            return 0
        return self._packet.get_field(header, field_name)

    def _eval(self, expr: ir.Expr, scope: dict[str, int]):
        # Constants and locals are immediates/registers — free at runtime
        # and costed as zero by the analyzer; everything else costs 1.
        if not isinstance(expr, (ir.Const, ir.VarRef)):
            self._ops += 1
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.FieldRef):
            return self._read_field(expr.header, expr.field)
        if isinstance(expr, ir.MetaRef):
            return self._packet.meta.get(expr.key, 0)
        if isinstance(expr, ir.VarRef):
            if expr.name not in scope:
                raise SimulationError(f"unbound variable {expr.name!r} at runtime")
            return scope[expr.name]
        if isinstance(expr, ir.MapGet):
            key = tuple(self._as_int(self._eval(part, scope)) for part in expr.key)
            self._ops += 3
            if expr.map_name in self._instance.maps:
                return self._instance.maps.state(expr.map_name).get(key)
            return 0
        if isinstance(expr, ir.HashExpr):
            values = tuple(self._as_int(self._eval(arg, scope)) for arg in expr.args)
            self._ops += 2
            return stable_hash(values) % expr.modulus
        if isinstance(expr, ir.UnOp):
            operand = self._eval(expr.operand, scope)
            if expr.op == "!":
                return not self._truthy(operand)
            return ~self._as_int(operand) & ((1 << 64) - 1)
        if isinstance(expr, ir.BinOp):
            return self._eval_binop(expr, scope)
        raise SimulationError(f"cannot evaluate {expr!r}")  # pragma: no cover

    def _eval_binop(self, expr: ir.BinOp, scope: dict[str, int]):
        kind = expr.kind
        if kind is ir.BinOpKind.LAND:
            return self._truthy(self._eval(expr.left, scope)) and self._truthy(
                self._eval(expr.right, scope)
            )
        if kind is ir.BinOpKind.LOR:
            return self._truthy(self._eval(expr.left, scope)) or self._truthy(
                self._eval(expr.right, scope)
            )
        left = self._as_int(self._eval(expr.left, scope))
        right = self._as_int(self._eval(expr.right, scope))
        if kind is ir.BinOpKind.ADD:
            return left + right
        if kind is ir.BinOpKind.SUB:
            # saturating subtraction (unsigned hardware semantics without
            # surprising wraparound for counters and TTL arithmetic)
            return max(left - right, 0)
        if kind is ir.BinOpKind.MUL:
            return left * right
        if kind is ir.BinOpKind.DIV:
            return left // right if right else 0
        if kind is ir.BinOpKind.MOD:
            return left % right if right else 0
        if kind is ir.BinOpKind.AND:
            return left & right
        if kind is ir.BinOpKind.OR:
            return left | right
        if kind is ir.BinOpKind.XOR:
            return left ^ right
        if kind is ir.BinOpKind.SHL:
            return (left << min(right, 64)) & ((1 << 128) - 1)
        if kind is ir.BinOpKind.SHR:
            return left >> min(right, 64)
        if kind is ir.BinOpKind.EQ:
            return left == right
        if kind is ir.BinOpKind.NE:
            return left != right
        if kind is ir.BinOpKind.LT:
            return left < right
        if kind is ir.BinOpKind.LE:
            return left <= right
        if kind is ir.BinOpKind.GT:
            return left > right
        if kind is ir.BinOpKind.GE:
            return left >= right
        raise SimulationError(f"unknown operator {kind}")  # pragma: no cover

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)

    @staticmethod
    def _as_int(value) -> int:
        return int(value)
