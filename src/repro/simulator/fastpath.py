"""FlexPath: the compiled fast path for the data-plane simulator.

The reference interpreter (:mod:`repro.simulator.pipeline_exec`) walks
the FlexBPF IR tree for every packet, paying an ``isinstance`` dispatch
chain per node. FlexPath compiles a :class:`~repro.lang.ir.Program`
once — at install / reconfiguration time, exactly when real runtime
programmable targets rewrite their pipelines — into a tree of
specialized Python closures, eliminating per-packet dispatch while
preserving the interpreter's semantics *bit for bit*:

* **exact ops accounting** — op costs are aggregated statically per
  straight-line region and added in one ``ctx.ops += k`` per region;
  only genuinely dynamic costs (taken branches, short-circuited
  ``&&``/``||`` right operands, recirculation) are counted at runtime.
  The compiled path reports the identical ``ExecutionResult.ops`` the
  interpreter would, so latency/energy models are unchanged.
* **header visibility, recirculation, digests, meters** — all modelled
  identically; the differential harness below enforces it.

On top of compilation, a per-device **flow micro-cache**
(:class:`FlowCache`) serves repeat packets of a flow without executing
the program at all — but only for programs FlexCheck's cacheability
pass (:mod:`repro.analysis.cacheability`) proves stateless/read-only.
Cached entries are validated against a token covering the program
version, every applied table's mutation epoch, and every read map's
mutation counter; any reconfiguration delta, rule insert/remove, meter
attach/detach, or control-plane map write therefore invalidates the
cache before a stale verdict can be served.
"""

from __future__ import annotations

import copy
import random
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.lang import ir
from repro.simulator.packet import Packet, Verdict, make_packet
from repro.util import stable_hash

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1


#: Sentinel distinguishing "table absent from the prematch dict" from a
#: prematched miss whose table has no default action (a legitimate None).
_NO_PREMATCH = object()


class _Ctx:
    """Mutable per-packet execution context threaded through closures."""

    __slots__ = ("packet", "fields", "meta", "scope", "visible", "now", "ops", "prematch")

    def __init__(self) -> None:
        self.packet = None
        self.fields = None
        self.meta = None
        self.scope: dict[str, int] = {}
        self.visible: set[str] = set()
        self.now = 0.0
        self.ops = 0
        #: FlexBatch: resolved ``{table name: action call}`` for this
        #: packet, pre-computed by a vectorized ``lookup_batch`` pass
        #: (counters already applied there). None outside batched runs.
        self.prematch = None


def _touches_scope(node) -> bool:
    """Whether executing ``node`` could read or write local scope.

    Bodies that provably never touch scope skip the per-invocation
    scope-dict set-up entirely (the elision is unobservable)."""
    if isinstance(node, (ir.VarRef, ir.Let)):
        return True
    if isinstance(node, (ir.Const, ir.FieldRef, ir.MetaRef)):
        return False
    if isinstance(node, ir.Assign):
        return isinstance(node.target, ir.VarRef) or _touches_scope(node.value)
    if isinstance(node, ir.MapGet):
        return any(_touches_scope(part) for part in node.key)
    if isinstance(node, ir.MapPut):
        return any(_touches_scope(part) for part in node.key) or _touches_scope(node.value)
    if isinstance(node, ir.MapDelete):
        return any(_touches_scope(part) for part in node.key)
    if isinstance(node, ir.HashExpr):
        return any(_touches_scope(arg) for arg in node.args)
    if isinstance(node, ir.UnOp):
        return _touches_scope(node.operand)
    if isinstance(node, ir.BinOp):
        return _touches_scope(node.left) or _touches_scope(node.right)
    if isinstance(node, ir.If):
        return (
            _touches_scope(node.condition)
            or any(_touches_scope(s) for s in node.then_body)
            or any(_touches_scope(s) for s in node.else_body)
        )
    if isinstance(node, ir.Repeat):
        return any(_touches_scope(s) for s in node.body)
    if isinstance(node, ir.PrimitiveCall):
        return any(_touches_scope(arg) for arg in node.args)
    return True  # unknown node: stay conservative


def _is_bool(expr) -> bool:
    """Whether ``expr`` evaluates to a bool (everything else in the IR
    evaluates to an exact int, given the storage invariants below)."""
    if isinstance(expr, ir.BinOp):
        return expr.kind in ir.COMPARISONS or expr.kind in ir.LOGICALS
    return isinstance(expr, ir.UnOp) and expr.op == "!"


def _chain(fns):
    """Fuse a statement/step list into one closure."""
    if not fns:
        return lambda ctx: None
    if len(fns) == 1:
        return fns[0]
    if len(fns) == 2:
        first, second = fns

        def chain2(ctx):
            first(ctx)
            second(ctx)

        return chain2
    fns = tuple(fns)

    def chain(ctx):
        for fn in fns:
            fn(ctx)

    return chain


class _Compiler:
    """Compiles one :class:`ProgramInstance` into closures.

    Bound dictionaries (``instance.rules``, ``instance.maps._states``)
    are captured once but indexed *live* on every packet, so state
    shared or re-bound across program versions by the device runtime
    stays visible to compiled code.
    """

    def __init__(self, instance):
        self._instance = instance
        self._program = instance.program
        self._rules = instance.rules
        self._states = instance.maps._states  # noqa: SLF001 - hot-path binding
        self._actions = {
            action.name: self._compile_action(action)
            for action in self._program.actions
        }

    # -- expressions -------------------------------------------------------

    def expr(self, expr: ir.Expr):
        """Compile one expression; returns ``(fn, static_ops)`` where
        ``fn`` adds only *dynamic* ops itself (short-circuit operands)."""
        if isinstance(expr, ir.Const):
            value = expr.value
            return (lambda ctx: value), 0
        if isinstance(expr, ir.VarRef):
            name = expr.name

            def var_fn(ctx):
                try:
                    return ctx.scope[name]
                except KeyError:
                    raise SimulationError(
                        f"unbound variable {name!r} at runtime"
                    ) from None

            return var_fn, 0
        if isinstance(expr, ir.FieldRef):
            header = expr.header
            key = (expr.header, expr.field)

            def field_fn(ctx):
                if header in ctx.visible:
                    return ctx.fields.get(key, 0)
                return 0

            return field_fn, 1
        if isinstance(expr, ir.MetaRef):
            meta_key = expr.key
            return (lambda ctx: ctx.meta.get(meta_key, 0)), 1
        if isinstance(expr, ir.MapGet):
            parts, parts_ops = self._key_parts(expr.key)
            states = self._states
            name = expr.map_name

            build_key = self._tuple_builder(parts)

            def map_get_fn(ctx):
                map_key = build_key(ctx)
                state = states.get(name)
                if state is not None:
                    return state.get(map_key)
                return 0

            return map_get_fn, 4 + parts_ops
        if isinstance(expr, ir.HashExpr):
            args, args_ops = self._key_parts(expr.args)
            build_args = self._tuple_builder(args)
            modulus = expr.modulus

            def hash_fn(ctx):
                return stable_hash(build_args(ctx)) % modulus

            return hash_fn, 3 + args_ops
        if isinstance(expr, ir.UnOp):
            operand_fn, operand_ops = self.expr(expr.operand)
            if expr.op == "!":
                return (lambda ctx: not bool(operand_fn(ctx))), 1 + operand_ops
            return (lambda ctx: ~operand_fn(ctx) & _MASK64), 1 + operand_ops
        if isinstance(expr, ir.BinOp):
            return self._binop(expr)
        raise SimulationError(f"cannot compile {expr!r}")  # pragma: no cover

    def _int_expr(self, expr: ir.Expr):
        """Like :meth:`expr` but the closure returns an *exact int*.

        Every storage location (scope, meta, fields, maps) is written
        through a coercion (truncate/mask/``int()``), so non-bool
        expressions are already exact ints and need no wrapper; only
        bool-producing expressions get an ``int()``.
        """
        fn, ops = self.expr(expr)
        if _is_bool(expr):
            return (lambda ctx: int(fn(ctx))), ops
        return fn, ops

    def _key_parts(self, exprs):
        compiled = [self._int_expr(part) for part in exprs]
        return tuple(fn for fn, _ in compiled), sum(ops for _, ops in compiled)

    @staticmethod
    def _tuple_builder(fns):
        """Build an int tuple from compiled part closures (specialized
        for the common small arities)."""
        if len(fns) == 1:
            only = fns[0]
            return lambda ctx: (only(ctx),)
        if len(fns) == 2:
            first, second = fns
            return lambda ctx: (first(ctx), second(ctx))
        return lambda ctx: tuple(fn(ctx) for fn in fns)

    def _binop(self, expr: ir.BinOp):
        kind = expr.kind
        left_fn, left_ops = self.expr(expr.left)
        right_fn, right_ops = self.expr(expr.right)
        if kind is ir.BinOpKind.LAND:
            if not right_ops:
                return (
                    lambda ctx: bool(left_fn(ctx)) and bool(right_fn(ctx))
                ), 1 + left_ops

            # The right operand's ops are charged only when evaluated,
            # mirroring the interpreter's short-circuit accounting.
            def land_fn(ctx):
                if not bool(left_fn(ctx)):
                    return False
                ctx.ops += right_ops
                return bool(right_fn(ctx))

            return land_fn, 1 + left_ops
        if kind is ir.BinOpKind.LOR:
            if not right_ops:
                return (
                    lambda ctx: bool(left_fn(ctx)) or bool(right_fn(ctx))
                ), 1 + left_ops

            def lor_fn(ctx):
                if bool(left_fn(ctx)):
                    return True
                ctx.ops += right_ops
                return bool(right_fn(ctx))

            return lor_fn, 1 + left_ops

        # Bool operands behave identically to their int() coercion in
        # every arithmetic/comparison operator (True == 1, False == 0),
        # so the interpreter's _as_int is dropped wholesale here.
        static = 1 + left_ops + right_ops
        K = ir.BinOpKind
        if kind is K.ADD:
            fn = lambda ctx: left_fn(ctx) + right_fn(ctx)  # noqa: E731
        elif kind is K.SUB:
            # saturating subtraction, as the interpreter models it
            fn = lambda ctx: max(left_fn(ctx) - right_fn(ctx), 0)  # noqa: E731
        elif kind is K.MUL:
            fn = lambda ctx: left_fn(ctx) * right_fn(ctx)  # noqa: E731
        elif kind is K.DIV:

            def div_fn(ctx):
                left = left_fn(ctx)
                right = right_fn(ctx)
                return left // right if right else 0

            fn = div_fn
        elif kind is K.MOD:

            def mod_fn(ctx):
                left = left_fn(ctx)
                right = right_fn(ctx)
                return left % right if right else 0

            fn = mod_fn
        elif kind is K.AND:
            fn = lambda ctx: left_fn(ctx) & right_fn(ctx)  # noqa: E731
        elif kind is K.OR:
            fn = lambda ctx: left_fn(ctx) | right_fn(ctx)  # noqa: E731
        elif kind is K.XOR:
            fn = lambda ctx: int(left_fn(ctx)) ^ int(right_fn(ctx))  # noqa: E731
        elif kind is K.SHL:
            fn = lambda ctx: (int(left_fn(ctx)) << min(int(right_fn(ctx)), 64)) & _MASK128  # noqa: E731
        elif kind is K.SHR:
            fn = lambda ctx: int(left_fn(ctx)) >> min(int(right_fn(ctx)), 64)  # noqa: E731
        elif kind is K.EQ:
            fn = lambda ctx: int(left_fn(ctx)) == int(right_fn(ctx))  # noqa: E731
        elif kind is K.NE:
            fn = lambda ctx: int(left_fn(ctx)) != int(right_fn(ctx))  # noqa: E731
        elif kind is K.LT:
            fn = lambda ctx: int(left_fn(ctx)) < int(right_fn(ctx))  # noqa: E731
        elif kind is K.LE:
            fn = lambda ctx: int(left_fn(ctx)) <= int(right_fn(ctx))  # noqa: E731
        elif kind is K.GT:
            fn = lambda ctx: int(left_fn(ctx)) > int(right_fn(ctx))  # noqa: E731
        elif kind is K.GE:
            fn = lambda ctx: int(left_fn(ctx)) >= int(right_fn(ctx))  # noqa: E731
        else:  # pragma: no cover - exhaustiveness guard
            raise SimulationError(f"unknown operator {kind}")
        return fn, static

    # -- statements --------------------------------------------------------

    def body(self, body: tuple[ir.Stmt, ...]):
        compiled = [self.stmt(stmt) for stmt in body]
        return _chain([fn for fn, _ in compiled]), sum(ops for _, ops in compiled)

    def stmt(self, stmt: ir.Stmt):
        if isinstance(stmt, ir.Let):
            # Let values are bits-typed (validated), so truncate's mask
            # is the only coercion needed.
            value_fn, value_ops = self._int_expr(stmt.value)
            truncate = stmt.value_type.truncate
            name = stmt.name

            def let_fn(ctx):
                ctx.scope[name] = truncate(value_fn(ctx))

            return let_fn, 1 + value_ops
        if isinstance(stmt, ir.Assign):
            return self._assign(stmt)
        if isinstance(stmt, ir.MapPut):
            parts, parts_ops = self._key_parts(stmt.key)
            build_key = self._tuple_builder(parts)
            value_fn, value_ops = self._int_expr(stmt.value)
            states = self._states
            name = stmt.map_name

            def put_fn(ctx):
                map_key = build_key(ctx)
                value = value_fn(ctx)
                state = states.get(name)
                if state is not None:
                    state.put(map_key, value)

            return put_fn, 4 + parts_ops + value_ops
        if isinstance(stmt, ir.MapDelete):
            parts, parts_ops = self._key_parts(stmt.key)
            build_key = self._tuple_builder(parts)
            states = self._states
            name = stmt.map_name

            def delete_fn(ctx):
                map_key = build_key(ctx)
                state = states.get(name)
                if state is not None:
                    state.delete(map_key)

            return delete_fn, 4 + parts_ops
        if isinstance(stmt, ir.If):
            cond_fn, cond_ops = self.expr(stmt.condition)
            then_fn, then_ops = self.body(stmt.then_body)
            else_fn, else_ops = self.body(stmt.else_body)

            def if_fn(ctx):
                if cond_fn(ctx):
                    ctx.ops += then_ops
                    then_fn(ctx)
                else:
                    ctx.ops += else_ops
                    else_fn(ctx)

            return if_fn, 1 + cond_ops
        if isinstance(stmt, ir.Repeat):
            body_fn, body_ops = self.body(stmt.body)
            count = stmt.count

            def repeat_fn(ctx):
                for _ in range(count):
                    body_fn(ctx)

            return repeat_fn, 1 + count * body_ops
        if isinstance(stmt, ir.PrimitiveCall):
            return self._primitive(stmt)
        raise SimulationError(f"cannot compile {stmt!r}")  # pragma: no cover

    def _assign(self, stmt: ir.Assign):
        value_fn, value_ops = self._int_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ir.VarRef):
            name = target.name

            def assign_var(ctx):
                ctx.scope[name] = value_fn(ctx)

            return assign_var, 1 + value_ops
        if isinstance(target, ir.FieldRef):
            header = target.header
            key = (target.header, target.field)
            mask = (1 << self._program.field_width(target)) - 1

            def assign_field(ctx):
                value = value_fn(ctx)
                if header in ctx.visible:
                    ctx.fields[key] = value & mask

            return assign_field, 1 + value_ops
        meta_key = target.key

        def assign_meta(ctx):
            ctx.meta[meta_key] = value_fn(ctx)

        return assign_meta, 1 + value_ops

    def _primitive(self, call: ir.PrimitiveCall):
        arg_fns, args_ops = self._key_parts(call.args)
        static = 1 + args_ops
        name = call.name
        if name == "mark_drop":

            def mark_drop(ctx):
                ctx.meta["drop_flag"] = 1

            return mark_drop, static
        if name == "set_port":
            if len(arg_fns) == 1:
                arg0 = arg_fns[0]
                return (
                    lambda ctx: ctx.meta.__setitem__("egress_port", arg0(ctx))
                ), static

            def set_port(ctx):
                args = [fn(ctx) for fn in arg_fns]
                ctx.meta["egress_port"] = args[0] if args else 0

            return set_port, static
        if name == "set_queue":
            if len(arg_fns) == 1:
                arg0 = arg_fns[0]
                return (
                    lambda ctx: ctx.meta.__setitem__("queue_id", arg0(ctx))
                ), static

            def set_queue(ctx):
                args = [fn(ctx) for fn in arg_fns]
                ctx.meta["queue_id"] = args[0] if args else 0

            return set_queue, static
        if name == "emit_digest":
            program_name = self._program.name
            build_args = self._tuple_builder(arg_fns) if arg_fns else (lambda ctx: ())

            def emit_digest(ctx):
                ctx.packet.digests.append((program_name, build_args(ctx)))

            return emit_digest, static
        if name == "clone":

            def clone(ctx):
                meta = ctx.meta
                meta["clones"] = meta.get("clones", 0) + 1

            return clone, static
        if name == "recirculate":

            def recirculate(ctx):
                ctx.meta["_recirculate"] = 1

            return recirculate, static
        if name == "no_op":

            def no_op(ctx):
                for arg in arg_fns:
                    arg(ctx)

            return no_op, static
        raise SimulationError(f"unknown primitive {name!r}")  # pragma: no cover

    # -- actions and apply steps -------------------------------------------

    def _compile_action(self, action: ir.ActionDef):
        body_fn, body_ops = self.body(action.body)
        param_names = tuple(name for name, _ in action.params)
        needs_scope = any(_touches_scope(stmt) for stmt in action.body)
        return param_names, body_fn, body_ops, needs_scope

    def _field_read(self, ref: ir.FieldRef):
        """A raw table-key read: visibility-masked, zero op cost."""
        header = ref.header
        key = (ref.header, ref.field)

        def read(ctx):
            if header in ctx.visible:
                return ctx.fields.get(key, 0)
            return 0

        return read

    def steps(self, steps: tuple[ir.ApplyStep, ...]):
        fns = []
        static = 0
        for step in steps:
            if isinstance(step, ir.ApplyTable):
                # Hosting is immutable per instance: filter at compile time.
                if not self._instance.hosts(step.table):
                    continue
                fn, ops = self._apply_table(step.table)
            elif isinstance(step, ir.ApplyFunction):
                if not self._instance.hosts(step.function):
                    continue
                fn, ops = self._apply_function(step.function)
            else:
                fn, ops = self._apply_if(step)
            fns.append(fn)
            static += ops
        return _chain(fns), static

    def _apply_if(self, step: ir.ApplyIf):
        cond_fn, cond_ops = self.expr(step.condition)
        then_fn, then_ops = self.steps(step.then_steps)
        else_fn, else_ops = self.steps(step.else_steps)

        if _touches_scope(step.condition):
            # Parity: the interpreter evaluates apply-if conditions in a
            # fresh empty scope, never a leftover action scope.
            def apply_if_scoped(ctx):
                ctx.scope = {}
                if cond_fn(ctx):
                    ctx.ops += then_ops
                    then_fn(ctx)
                else:
                    ctx.ops += else_ops
                    else_fn(ctx)

            return apply_if_scoped, 1 + cond_ops

        def apply_if(ctx):
            if cond_fn(ctx):
                ctx.ops += then_ops
                then_fn(ctx)
            else:
                ctx.ops += else_ops
                else_fn(ctx)

        return apply_if, 1 + cond_ops

    def _apply_function(self, name: str):
        body = self._program.function(name).body
        body_fn, body_ops = self.body(body)
        if not any(_touches_scope(stmt) for stmt in body):
            return body_fn, body_ops

        def apply_function(ctx):
            ctx.scope = {}
            body_fn(ctx)

        return apply_function, body_ops

    def _apply_table(self, name: str):
        table = self._program.table(name)
        key_fns = tuple(self._field_read(key.field) for key in table.keys)
        rules_by_name = self._rules
        actions = self._actions
        if len(key_fns) == 1:
            key0 = key_fns[0]
            build_key = lambda ctx: (key0(ctx),)  # noqa: E731
        elif len(key_fns) == 2:
            key0, key1 = key_fns
            build_key = lambda ctx: (key0(ctx), key1(ctx))  # noqa: E731
        else:
            build_key = lambda ctx: tuple(fn(ctx) for fn in key_fns)  # noqa: E731

        def apply_table(ctx):
            # FlexBatch prematch: a batched run may have resolved this
            # table for the whole batch already (counters included), in
            # which case the per-packet lookup is skipped entirely.
            pre = ctx.prematch
            if pre is not None:
                action_call = pre.get(name, _NO_PREMATCH)
                if action_call is not _NO_PREMATCH:
                    if action_call is None:
                        return
                    param_names, body_fn, body_ops, needs_scope = actions[action_call.action]
                    if needs_scope:
                        ctx.scope = dict(zip(param_names, action_call.args))
                    ctx.ops += body_ops
                    body_fn(ctx)
                    return
            # Inlined TableRules.lookup: the compiled key arity is
            # statically correct, so the per-call validation (and the
            # call frame) are skipped; semantics are otherwise identical.
            rules = rules_by_name[name]
            key = build_key(ctx)
            action_call = None
            if rules._all_exact:
                index = rules._exact_index
                if index is None:
                    index = rules._build_exact_index()
                hit = index.get(key)
                if hit is not None:
                    action_call, position = hit
                    rules.hit_counts[position] += 1
            else:
                ordered = rules._ordered
                if ordered is None:
                    ordered = rules._build_ordered()
                for predicate, action, position in ordered:
                    if predicate(key):
                        action_call = action
                        rules.hit_counts[position] += 1
                        break
            if action_call is None:
                rules.miss_count += 1
                action_call = rules.definition.default_action
                if action_call is None:
                    return
            meter = rules._meter
            if meter is not None:
                ctx.meta["meter_color"] = meter.mark(ctx.now).value
            param_names, body_fn, body_ops, needs_scope = actions[action_call.action]
            if needs_scope:
                ctx.scope = dict(zip(param_names, action_call.args))
            ctx.ops += body_ops
            body_fn(ctx)

        return apply_table, 1

    # -- parser ------------------------------------------------------------

    def parse(self):
        program = self._program
        parser = program.parser
        if parser is None:
            declared = tuple(header.name for header in program.headers)

            def parse_all(ctx):
                visible = ctx.visible
                visible.clear()
                present = {key[0] for key in ctx.fields}
                for name in declared:
                    if name in present:
                        visible.add(name)

            return parse_all

        start = parser.start_header
        transitions = []
        for transition in parser.transitions:
            select = transition.select_field
            transitions.append(
                (
                    transition.next_header,
                    None if select is None else select.header,
                    None if select is None else (select.header, select.field),
                    transition.select_value,
                )
            )
        transitions = tuple(transitions)
        parse_ops = 1 + len(transitions)

        def parse(ctx):
            visible = ctx.visible
            visible.clear()
            fields = ctx.fields
            present = {key[0] for key in fields}
            if start not in present:
                return
            visible.add(start)
            ctx.ops += parse_ops
            for next_header, select_header, select_key, select_value in transitions:
                if next_header not in present:
                    continue
                if select_header is not None:
                    if select_header not in visible:
                        continue
                    if fields.get(select_key, 0) != select_value:
                        continue
                visible.add(next_header)

        return parse


class CompiledProgram:
    """The FlexPath executable for one :class:`ProgramInstance`."""

    __slots__ = ("version", "vet", "batch", "_parse", "_apply", "_apply_ops", "_ctx")

    def __init__(self, instance):
        compiler = _Compiler(instance)
        self.version = instance.program.version
        #: FlexVet classification of the hosted slice and the batch
        #: admission verdict at compile time — the vectorized backend
        #: and FlexScale partitioner read these off the artifact.
        self.vet = instance.vet()
        self.batch = batch_gate(instance)
        self._parse = compiler.parse()
        self._apply, self._apply_ops = compiler.steps(instance.program.apply)
        self._ctx = _Ctx()

    def process(self, packet: Packet, now: float = 0.0):
        from repro.simulator.pipeline_exec import MAX_RECIRCULATIONS, ExecutionResult

        ctx = self._ctx
        ctx.packet = packet
        ctx.fields = packet.fields
        meta = ctx.meta = packet.meta
        ctx.scope = {}
        ctx.now = now
        ctx.ops = 0
        ctx.prematch = None
        parse = self._parse
        apply_fn = self._apply
        apply_ops = self._apply_ops

        parse(ctx)
        ctx.ops += apply_ops
        apply_fn(ctx)
        recirculations = 0
        while meta.pop("_recirculate", 0) and recirculations < MAX_RECIRCULATIONS:
            recirculations += 1
            parse(ctx)
            ctx.ops += apply_ops
            apply_fn(ctx)
        if meta.get("drop_flag"):
            packet.verdict = Verdict.DROP
        return ExecutionResult(
            ops=ctx.ops, version=self.version, recirculations=recirculations
        )

    def process_prematched(self, packet: Packet, now: float, prematch: dict):
        """:meth:`process` with a FlexBatch prematch dict: tables the
        batched backend already resolved (and counted) via
        ``TableRules.lookup_batch`` skip their per-packet lookup. A
        recirculation — only reachable here when the incoming packet
        carries a pre-set ``_recirculate`` flag, since prematch is
        disabled for programs that recirculate — drops the prematch for
        the re-run, because field writes could change parse visibility
        and therefore the keys the tables would observe."""
        from repro.simulator.pipeline_exec import MAX_RECIRCULATIONS, ExecutionResult

        ctx = self._ctx
        ctx.packet = packet
        ctx.fields = packet.fields
        meta = ctx.meta = packet.meta
        ctx.scope = {}
        ctx.now = now
        ctx.ops = 0
        ctx.prematch = prematch
        parse = self._parse
        apply_fn = self._apply
        apply_ops = self._apply_ops

        parse(ctx)
        ctx.ops += apply_ops
        apply_fn(ctx)
        recirculations = 0
        while meta.pop("_recirculate", 0) and recirculations < MAX_RECIRCULATIONS:
            recirculations += 1
            ctx.prematch = None
            parse(ctx)
            ctx.ops += apply_ops
            apply_fn(ctx)
        ctx.prematch = None
        if meta.get("drop_flag"):
            packet.verdict = Verdict.DROP
        return ExecutionResult(
            ops=ctx.ops, version=self.version, recirculations=recirculations
        )


def compile_instance(instance) -> CompiledProgram:
    """Compile ``instance`` (a :class:`ProgramInstance`) for FlexPath."""
    return CompiledProgram(instance)


# ---------------------------------------------------------------------------
# Flow micro-cache
# ---------------------------------------------------------------------------


@dataclass
class _CachedOutcome:
    """Replayable effect of one recorded run on one flow."""

    fields_post: dict
    fields_absent: tuple
    meta_post: dict
    meta_absent: tuple
    verdict: Verdict
    digests: tuple
    ops: int
    version: int
    recirculations: int
    #: per-table ((rule index, hit delta), ...) and miss-count delta, so
    #: P4Runtime direct counters stay exact under cache hits.
    counters: tuple

    def replay(self, packet: Packet, instance):
        from repro.simulator.pipeline_exec import ExecutionResult

        fields = packet.fields
        for key, value in self.fields_post.items():
            fields[key] = value
        for key in self.fields_absent:
            fields.pop(key, None)
        meta = packet.meta
        for key, value in self.meta_post.items():
            meta[key] = value
        for key in self.meta_absent:
            meta.pop(key, None)
        packet.verdict = self.verdict
        if self.digests:
            packet.digests.extend(self.digests)
        rules_by_name = instance.rules
        for table_name, hit_deltas, miss_delta in self.counters:
            rules = rules_by_name.get(table_name)
            if rules is None:
                continue
            for position, delta in hit_deltas:
                rules.hit_counts[position] += delta
            rules.miss_count += miss_delta
        return ExecutionResult(
            ops=self.ops, version=self.version, recirculations=self.recirculations
        )


class _CacheBinding:
    """Per-instance cache plumbing: the static cacheability decision,
    key extraction, validity token, and outcome capture."""

    def __init__(self, instance):
        from repro.analysis.cacheability import decide

        self.instance = instance
        self.decision = decide(instance.program, instance.hosted_elements)
        self.cacheable = self.decision.cacheable
        self._field_keys = self.decision.key_fields
        self._meta_keys = self.decision.key_meta
        self._headers = self.decision.headers
        self._tables = self.decision.applied_tables
        self._maps = self.decision.read_maps

    def token(self):
        """Current validity token, or None when the cache must be
        bypassed entirely (a meter makes outcomes stateful)."""
        instance = self.instance
        rules_by_name = instance.rules
        table_epochs = []
        for name in self._tables:
            rules = rules_by_name.get(name)
            if rules is None:
                continue
            if rules.meter is not None:
                return None
            table_epochs.append(rules.epoch)
        states = instance.maps._states  # noqa: SLF001 - hot path
        map_counts = []
        for name in self._maps:
            state = states.get(name)
            if state is not None:
                map_counts.append(state.mutation_count)
        return (instance.version, tuple(table_epochs), tuple(map_counts))

    def key(self, packet: Packet):
        fields = packet.fields
        meta = packet.meta
        present = {key[0] for key in fields}
        return (
            tuple(fields.get(key, 0) for key in self._field_keys),
            tuple(meta.get(key, 0) for key in self._meta_keys),
            tuple(header in present for header in self._headers),
        )

    def record(self, packet: Packet, now: float):
        """Run the packet through the real path, capturing a replayable
        outcome for subsequent flow-mates."""
        instance = self.instance
        rules_by_name = instance.rules
        before = {
            name: (list(rules_by_name[name].hit_counts), rules_by_name[name].miss_count)
            for name in self._tables
            if name in rules_by_name
        }
        digests_before = len(packet.digests)

        result = instance.process(packet, now)

        counters = []
        for name, (hits_before, miss_before) in before.items():
            rules = rules_by_name[name]
            hit_deltas = tuple(
                (position, after - hits_before[position])
                for position, after in enumerate(rules.hit_counts)
                if after != hits_before[position]
            )
            miss_delta = rules.miss_count - miss_before
            if hit_deltas or miss_delta:
                counters.append((name, hit_deltas, miss_delta))

        fields = packet.fields
        fields_post = {}
        fields_absent = []
        for key in self._field_keys:
            if key in fields:
                fields_post[key] = fields[key]
            else:
                fields_absent.append(key)
        meta = packet.meta
        meta_post = {}
        meta_absent = []
        for key in self._meta_keys:
            if key in meta:
                meta_post[key] = meta[key]
            else:
                meta_absent.append(key)
        outcome = _CachedOutcome(
            fields_post=fields_post,
            fields_absent=tuple(fields_absent),
            meta_post=meta_post,
            meta_absent=tuple(meta_absent),
            verdict=packet.verdict,
            digests=tuple(packet.digests[digests_before:]),
            ops=result.ops,
            version=result.version,
            recirculations=result.recirculations,
            counters=tuple(counters),
        )
        return outcome, result


@dataclass
class FlowCacheStats:
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    #: token-change invalidation *events* (one per token move that found
    #: a populated cache).
    invalidations: int = 0
    #: entries dropped across those invalidation events — a single token
    #: move can flush thousands of flows, which the event count hides.
    entries_dropped: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "invalidations": self.invalidations,
            "entries_dropped": self.entries_dropped,
            "hit_rate": self.hit_rate,
        }

    def summary(self) -> str:
        return (
            f"flow cache: {self.hits} hit(s) / {self.misses} miss(es) "
            f"({self.hit_rate:.0%}), {self.bypasses} bypass(es), "
            f"{self.invalidations} invalidation(s) dropping "
            f"{self.entries_dropped} entr(ies)"
        )


class FlowCache:
    """A per-device flow micro-cache over cacheable program versions.

    Entries are keyed by the packet values the program can observe (per
    the cacheability decision) and validated against an epoch token; a
    token change drops every entry at once, so no reconfiguration can
    leave a stale verdict behind.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise SimulationError("flow cache capacity must be positive")
        self.capacity = capacity
        self.stats = FlowCacheStats()
        self._entries: OrderedDict = OrderedDict()
        self._token = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._token = None

    @staticmethod
    def _binding(instance) -> _CacheBinding:
        binding = getattr(instance, "_flow_cache_binding", None)
        if binding is None:
            binding = _CacheBinding(instance)
            instance._flow_cache_binding = binding  # noqa: SLF001
        return binding

    def process(self, instance, packet: Packet, now: float):
        """Serve ``packet`` from the cache if possible; returns the
        :class:`ExecutionResult`, or None when the caller must run the
        normal path itself (uncacheable program)."""
        binding = self._binding(instance)
        if not binding.cacheable:
            self.stats.bypasses += 1
            return None
        token = binding.token()
        if token is None:
            self.stats.bypasses += 1
            return None
        if token != self._token:
            if self._token is not None and self._entries:
                self.stats.invalidations += 1
                self.stats.entries_dropped += len(self._entries)
            self._entries.clear()
            self._token = token
        key = binding.key(packet)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.replay(packet, instance)
        self.stats.misses += 1
        outcome, result = binding.record(packet, now)
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = outcome
        return result


# ---------------------------------------------------------------------------
# Batch admission (FlexVet gate for the future vectorized backend)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchAdmission:
    """Whether one instance may execute packets in reordered batches.

    The static half is FlexVet's ``batch_safe`` verdict (every
    data-plane map per-flow with a common partition field). The live
    half re-checks runtime attachments the IR cannot see: a meter on
    any hosted table makes outcomes depend on aggregate arrival order,
    which batching would reorder — the same disqualifier that makes
    :class:`FlowCache` bypass metered programs.
    """

    admitted: bool
    #: fields a batched backend may partition/group by (empty for a
    #: stateless program — any grouping works).
    flow_key: tuple[str, ...]
    reasons: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "flow_key": list(self.flow_key),
            "reasons": list(self.reasons),
        }


def batch_gate(instance) -> BatchAdmission:
    """Admission decision for batched execution of ``instance``."""
    report = instance.vet()
    reasons = list(report.batch_reasons)
    hosted_tables = {e.name for e in report.elements if e.kind == "table"}
    for name in sorted(hosted_tables):
        rules = instance.rules.get(name)
        if rules is not None and rules.meter is not None:
            reasons.append(
                f"table {name!r} carries a meter (rate state observes "
                f"aggregate arrival order)"
            )
    return BatchAdmission(
        admitted=not reasons,
        flow_key=report.flow_key if not reasons else (),
        reasons=tuple(reasons),
    )


# ---------------------------------------------------------------------------
# Differential harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """One observed difference between interpreter and FlexPath."""

    packet_index: int
    kind: str
    interpreted: object
    compiled: object

    def __str__(self) -> str:
        return (
            f"packet {self.packet_index}: {self.kind} diverged "
            f"(interpreter {self.interpreted!r} vs FlexPath {self.compiled!r})"
        )


@dataclass
class DifferentialReport:
    packets: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def seeded_corpus(count: int, seed: int = 2024) -> list[Packet]:
    """A deterministic packet corpus exercising header visibility, field
    ranges, and metadata variation."""
    rng = random.Random(seed)
    packets: list[Packet] = []
    for index in range(count):
        packet = make_packet(
            src_ip=rng.randrange(1, 1 << 32),
            dst_ip=rng.randrange(1, 1 << 32),
            proto=rng.choice((6, 6, 6, 17, 1)),
            src_port=rng.randrange(1, 1 << 16),
            dst_port=rng.choice((80, 443, 53, rng.randrange(1, 1 << 16))),
            vlan_id=rng.randrange(0, 8),
            ttl=rng.randrange(0, 256),
            tcp_flags=rng.choice((0x02, 0x10, 0x12, 0x18, rng.randrange(0, 256))),
            created_at=index * 1e-4,
        )
        packet.meta["ingress_port"] = rng.randrange(0, 48)
        packet.meta["queue_depth"] = rng.randrange(0, 64)
        if rng.random() < 0.15:  # un-parse the L4 header
            packet.fields = {
                key: value for key, value in packet.fields.items() if key[0] != "tcp"
            }
        if rng.random() < 0.05:  # mangle the ethertype chain
            packet.fields[("ethernet", "ethertype")] = rng.choice((0x0800, 0x86DD, 0x8100))
        packets.append(packet)
    return packets


def seeded_rules(program: ir.Program, instance, seed: int = 99, per_table: int = 6):
    """Install a deterministic rule set compatible with every table of
    ``program`` (same rules for every instance given the same seed)."""
    from repro.simulator.tables import exact, lpm, rng as range_match, ternary

    rand = random.Random(seed)
    for table in program.tables:
        rules = instance.rules[table.name]
        if not table.actions:
            continue
        for _ in range(min(per_table, table.size)):
            matches = []
            for key in table.keys:
                width = program.field_width(key.field)
                top = (1 << width) - 1
                if key.match_kind is ir.MatchKind.EXACT:
                    matches.append(exact(rand.randrange(0, top + 1)))
                elif key.match_kind is ir.MatchKind.LPM:
                    matches.append(
                        lpm(rand.randrange(0, top + 1), rand.randrange(0, width + 1), width)
                    )
                elif key.match_kind is ir.MatchKind.TERNARY:
                    matches.append(
                        ternary(rand.randrange(0, top + 1), rand.randrange(0, top + 1))
                    )
                else:
                    low = rand.randrange(0, top + 1)
                    matches.append(range_match(low, min(low + rand.randrange(0, 1 << 12), top)))
            action_name = rand.choice(table.actions)
            action = program.action(action_name)
            args = tuple(
                rand.randrange(0, param_type.max_value + 1)
                for _, param_type in action.params
            )
            from repro.lang.ir import ActionCall
            from repro.simulator.tables import Rule

            rules.insert(
                Rule(
                    matches=tuple(matches),
                    action=ActionCall(action=action_name, args=args),
                    priority=rand.randrange(0, 4),
                )
            )


def differential_check(
    program: ir.Program,
    packets: list[Packet],
    hosted_elements: set[str] | None = None,
    setup=None,
    now_step: float = 1e-4,
    max_divergences: int = 20,
) -> DifferentialReport:
    """Run the interpreter and FlexPath side by side over ``packets``
    and report every observable difference: verdicts, header fields,
    metadata, digests, op counts, recirculations — and, at the end,
    map state and table counters."""
    from repro.simulator.pipeline_exec import ProgramInstance

    reference = ProgramInstance(program, hosted_elements)
    fast = ProgramInstance(program, hosted_elements)
    fast.enable_fastpath()
    if setup is not None:
        setup(reference)
        setup(fast)

    report = DifferentialReport()
    for index, packet in enumerate(packets):
        if len(report.divergences) >= max_divergences:
            break
        left = copy.deepcopy(packet)
        right = copy.deepcopy(packet)
        now = index * now_step
        ref_result = reference.process(left, now)
        fast_result = fast.process(right, now)
        report.packets += 1
        checks = (
            ("verdict", left.verdict, right.verdict),
            ("fields", left.fields, right.fields),
            ("meta", left.meta, right.meta),
            ("digests", left.digests, right.digests),
            ("ops", ref_result.ops, fast_result.ops),
            ("recirculations", ref_result.recirculations, fast_result.recirculations),
            ("version", ref_result.version, fast_result.version),
        )
        for kind, expected, actual in checks:
            if expected != actual:
                report.divergences.append(
                    Divergence(index, kind, copy.deepcopy(expected), copy.deepcopy(actual))
                )

    for map_name in reference.maps.names():
        ref_state = dict(reference.maps.state(map_name).items())
        fast_state = dict(fast.maps.state(map_name).items())
        if ref_state != fast_state:
            report.divergences.append(
                Divergence(-1, f"map:{map_name}", ref_state, fast_state)
            )
    for table_name, ref_rules in reference.rules.items():
        fast_rules = fast.rules[table_name]
        if ref_rules.hit_counts != fast_rules.hit_counts:
            report.divergences.append(
                Divergence(
                    -1,
                    f"hit_counts:{table_name}",
                    list(ref_rules.hit_counts),
                    list(fast_rules.hit_counts),
                )
            )
        if ref_rules.miss_count != fast_rules.miss_count:
            report.divergences.append(
                Divergence(
                    -1, f"miss_count:{table_name}", ref_rules.miss_count, fast_rules.miss_count
                )
            )
    return report
