"""Network-level simulation: nodes, links, paths, and packet transport.

The network is deliberately generic over the node implementation — any
object satisfying :class:`PacketProcessor` can sit on a path. The
concrete node used everywhere is
:class:`repro.runtime.device.DeviceRuntime`, which layers program
versions and hitless reconfiguration on top; keeping the simulator
independent of that machinery keeps the dependency graph acyclic.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol

from repro.errors import SimulationError
from repro.simulator.engine import EventLoop
from repro.simulator.metrics import RunMetrics
from repro.simulator.packet import Packet, Verdict


class PacketProcessor(Protocol):
    """What the network needs from a device."""

    name: str

    def available(self, now: float) -> bool:
        """False while the device is drained/reflashing (packets are lost)."""
        ...

    def process(self, packet: Packet, now: float) -> float:
        """Process the packet, mutating it; return processing latency (s)."""
        ...


@dataclass(frozen=True)
class Link:
    source: str
    destination: str
    latency_s: float = 1e-6  # 1 us default intra-rack hop


class Network:
    """Nodes + links + named paths, driven by one event loop.

    A network normally owns every node on every path. Under FlexScale a
    shard's network owns only *its* devices: ``owned`` names that
    subset, and when a packet's next hop falls outside it the network
    calls ``on_handoff(packet, hops, index, arrival_time)`` instead of
    scheduling the arrival locally. The arrival time handed off is the
    exact float the single-process engine would have scheduled
    (``now + (processing_s + link_latency)``), which is what makes
    sharded runs bit-identical to unsharded ones.
    """

    def __init__(
        self,
        loop: EventLoop | None = None,
        owned: set[str] | None = None,
        on_handoff: Callable[[Packet, list[str], int, float], None] | None = None,
        track_inflight: bool = False,
    ):
        self.loop = loop or EventLoop()
        self._nodes: dict[str, PacketProcessor] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._paths: dict[str, list[str]] = {}
        self._owned = set(owned) if owned is not None else None
        self._on_handoff = on_handoff
        #: FlexMend: every event this network schedules is a packet
        #: arrival, fully described by plain data. With tracking on,
        #: in-flight arrivals are registered until they execute, so a
        #: shard checkpoint can serialize the event loop's contents as
        #: ``(time, seq, packet, hops, index)`` tuples.
        self._inflight: dict[int, tuple] | None = {} if track_inflight else None
        self._inflight_token = 0

    def adopt_topology(self, other: "Network") -> None:
        """Copy link latencies and named paths from another network
        (shard networks mirror the coordinator's topology tables while
        registering only their owned nodes)."""
        self._links.update(other._links)
        self._paths.update({name: list(hops) for name, hops in other._paths.items()})

    def owns(self, name: str) -> bool:
        return self._owned is None or name in self._owned

    # -- topology -----------------------------------------------------------

    def add_node(self, node: PacketProcessor) -> None:
        if node.name in self._nodes:
            raise SimulationError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node

    def node(self, name: str) -> PacketProcessor:
        if name not in self._nodes:
            raise SimulationError(f"unknown node {name!r}")
        return self._nodes[name]

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def add_link(self, source: str, destination: str, latency_s: float = 1e-6) -> None:
        self.node(source)
        self.node(destination)
        self._links[(source, destination)] = Link(source, destination, latency_s)
        self._links[(destination, source)] = Link(destination, source, latency_s)

    def has_link(self, source: str, destination: str) -> bool:
        return (source, destination) in self._links

    def link_latency(self, source: str, destination: str) -> float:
        link = self._links.get((source, destination))
        if link is None:
            raise SimulationError(f"no link {source!r} -> {destination!r}")
        return link.latency_s

    def define_path(self, name: str, hops: list[str]) -> None:
        for previous, current in zip(hops, hops[1:]):
            self.link_latency(previous, current)  # validates links exist
        self._paths[name] = list(hops)

    def path(self, name: str) -> list[str]:
        if name not in self._paths:
            raise SimulationError(f"unknown path {name!r}")
        return list(self._paths[name])

    # -- transport ------------------------------------------------------------

    def inject(
        self,
        packet: Packet,
        path: str | list[str],
        at_time: float,
        metrics: RunMetrics | None = None,
        on_done: Callable[[Packet], None] | None = None,
    ) -> None:
        """Send a packet along a path, starting at ``at_time``."""
        hops = self.path(path) if isinstance(path, str) else list(path)
        if not hops:
            raise SimulationError("empty path")
        if metrics is not None:
            metrics.record_sent()
        if not self.owns(hops[0]):
            self._on_handoff(packet, hops, 0, at_time)
            return
        self._schedule_arrival(at_time, packet, hops, 0, metrics, on_done)

    def receive(
        self,
        packet: Packet,
        hops: list[str],
        index: int,
        at_time: float,
        metrics: RunMetrics | None = None,
        on_done: Callable[[Packet], None] | None = None,
    ) -> None:
        """Accept a handed-off packet at its exact precomputed arrival
        time (the FlexScale shard runtime calls this after draining its
        handoff queue in canonical order)."""
        self._schedule_arrival(at_time, packet, hops, index, metrics, on_done)

    def _schedule_arrival(
        self,
        at_time: float,
        packet: Packet,
        hops: list[str],
        index: int,
        metrics: RunMetrics | None,
        on_done: Callable[[Packet], None] | None,
    ) -> None:
        if self._inflight is None:
            self.loop.schedule_at(
                at_time, lambda: self._arrive(packet, hops, index, metrics, on_done)
            )
            return
        self._inflight_token += 1
        token = self._inflight_token

        def run() -> None:
            del self._inflight[token]
            self._arrive(packet, hops, index, metrics, on_done)

        handle = self.loop.schedule_at(at_time, run)
        self._inflight[token] = (at_time, handle.sequence, packet, hops, index)

    def inflight_arrivals(self) -> list[tuple]:
        """Pending arrivals as plain ``(time, seq, packet, hops, index)``
        data, in the loop's canonical execution order. Only meaningful
        with ``track_inflight=True`` (FlexMend checkpointing)."""
        if self._inflight is None:
            raise SimulationError(
                "inflight_arrivals requires track_inflight=True"
            )
        return sorted(self._inflight.values(), key=lambda item: (item[0], item[1]))

    def _arrive(
        self,
        packet: Packet,
        hops: list[str],
        index: int,
        metrics: RunMetrics | None,
        on_done: Callable[[Packet], None] | None,
    ) -> None:
        now = self.loop.now
        node = self.node(hops[index])
        if not node.available(now):
            packet.verdict = Verdict.LOST
            self._finish(packet, metrics, on_done)
            return
        processing_s = node.process(packet, now)
        packet.path.append(node.name)
        if packet.verdict is not Verdict.FORWARD:
            # program drop or queue overflow — the packet goes no further
            self._finish(packet, metrics, on_done)
            return
        if index + 1 >= len(hops):
            packet.delivered_at = now + processing_s
            self._finish(packet, metrics, on_done)
            return
        hop_latency = processing_s + self.link_latency(hops[index], hops[index + 1])
        if not self.owns(hops[index + 1]):
            # Cross-shard handoff: ship the exact arrival timestamp the
            # local schedule() call would have produced.
            self._on_handoff(packet, hops, index + 1, now + hop_latency)
            return
        self._schedule_arrival(
            now + hop_latency, packet, hops, index + 1, metrics, on_done
        )

    def _finish(
        self,
        packet: Packet,
        metrics: RunMetrics | None,
        on_done: Callable[[Packet], None] | None,
    ) -> None:
        if metrics is not None:
            metrics.record_outcome(packet)
        if on_done is not None:
            on_done(packet)
