"""Packets and flows for the simulated data plane.

A :class:`Packet` carries header fields as a ``(header, field) -> int``
mapping plus a metadata dict mirroring the datapath metadata FlexBPF
exposes (``ingress_port``, ``vlan_id``, ``drop_flag``...). Packets also
record which program version processed them on each device — the raw
material for the paper's per-packet consistency check ("packets are
either processed by the new program or old one in a consistent
manner").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Packet ids are namespaced: the low bits hold a process-local counter
#: and the bits at and above this shift hold the allocating shard's id.
#: Namespace 0 is the single-process / coordinator namespace; a
#: FlexScale shard worker allocates in its own namespace, so ids are
#: deterministic regardless of how shard execution interleaves and can
#: never collide with coordinator-generated ids.
PACKET_ID_SHARD_SHIFT = 48


class _PacketIdCounter:
    """``itertools.count`` with inspectable/settable state, so FlexMend
    checkpoints can capture the allocator and a restarted shard worker
    resumes id allocation exactly where the dead one left off."""

    __slots__ = ("next_id",)

    def __init__(self, start: int):
        self.next_id = start

    def __next__(self) -> int:
        value = self.next_id
        self.next_id = value + 1
        return value


_packet_ids = _PacketIdCounter(1)


def packet_id_state() -> int:
    """The next packet id this process would allocate (checkpointable)."""
    return _packet_ids.next_id


def set_packet_id_state(next_id: int) -> None:
    """Resume allocation at ``next_id`` (FlexMend shard restore)."""
    _packet_ids.next_id = next_id


def reset_packet_ids(shard: int = 0) -> None:
    """Restart the packet id counter in the given shard namespace.

    Packet ids feed the deterministic cut-over hash that splits traffic
    between program versions inside a transition window, so seeded
    scenario runners (:func:`repro.faults.chaos.run_chaos`) restart the
    counter up front — two same-seed runs then draw identical version
    choices even within one process.

    ``shard`` selects the allocation namespace: ids become
    ``(shard << PACKET_ID_SHARD_SHIFT) + local_counter`` with the local
    counter restarting at 1. FlexScale workers call this with their own
    shard namespace on startup, so a packet allocated *inside* a shard
    gets an id that depends only on the shard and its local allocation
    order — never on cross-shard interleaving. Ids stay unique within a
    run, which is all any consumer relies on.
    """
    if shard < 0:
        raise ValueError(f"shard namespace must be >= 0, got {shard}")
    _packet_ids.next_id = (shard << PACKET_ID_SHARD_SHIFT) + 1


class Verdict(enum.Enum):
    FORWARD = "forward"
    DROP = "drop"  # program decision (e.g. ACL deny)
    LOST = "lost"  # infrastructure loss (drain, queue overflow)


@dataclass
class Packet:
    """One simulated packet."""

    fields: dict[tuple[str, str], int]
    meta: dict[str, int] = field(default_factory=dict)
    size_bytes: int = 256
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: device name -> program version that processed this packet there.
    versions_seen: dict[str, int] = field(default_factory=dict)
    #: device names traversed, in order.
    path: list[str] = field(default_factory=list)
    verdict: Verdict = Verdict.FORWARD
    delivered_at: float | None = None
    #: digests emitted toward the controller while processing.
    digests: list[tuple[str, tuple[int, ...]]] = field(default_factory=list)

    def get_field(self, header: str, field_name: str) -> int:
        return self.fields.get((header, field_name), 0)

    def set_field(self, header: str, field_name: str, value: int) -> None:
        self.fields[(header, field_name)] = value

    def has_header(self, header: str) -> bool:
        return any(key[0] == header for key in self.fields)

    @property
    def dropped(self) -> bool:
        return self.verdict is not Verdict.FORWARD

    @property
    def latency_s(self) -> float | None:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at


def make_packet(
    src_ip: int,
    dst_ip: int,
    proto: int = 6,
    src_port: int = 12345,
    dst_port: int = 80,
    vlan_id: int = 0,
    size_bytes: int = 256,
    created_at: float = 0.0,
    ttl: int = 64,
    tcp_flags: int = 0x10,
) -> Packet:
    """Build a standard ethernet/ipv4/tcp packet matching the header
    layouts used throughout the library's example programs."""
    fields = {
        ("ethernet", "dst"): 0x0000AABBCCDD,
        ("ethernet", "src"): 0x0000DDCCBBAA,
        ("ethernet", "ethertype"): 0x0800,
        ("ipv4", "src"): src_ip,
        ("ipv4", "dst"): dst_ip,
        ("ipv4", "proto"): proto,
        ("ipv4", "ttl"): ttl,
        ("tcp", "sport"): src_port,
        ("tcp", "dport"): dst_port,
        ("tcp", "flags"): tcp_flags,
    }
    meta = {"vlan_id": vlan_id, "ingress_port": 0, "drop_flag": 0, "egress_port": 0}
    return Packet(fields=fields, meta=meta, size_bytes=size_bytes, created_at=created_at)


@dataclass(frozen=True)
class FiveTuple:
    src_ip: int
    dst_ip: int
    proto: int
    src_port: int
    dst_port: int

    @classmethod
    def of(cls, packet: Packet) -> "FiveTuple":
        return cls(
            src_ip=packet.get_field("ipv4", "src"),
            dst_ip=packet.get_field("ipv4", "dst"),
            proto=packet.get_field("ipv4", "proto"),
            src_port=packet.get_field("tcp", "sport"),
            dst_port=packet.get_field("tcp", "dport"),
        )
