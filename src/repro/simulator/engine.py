"""Discrete-event simulation engine.

A minimal, deterministic event loop. The ordering contract is explicit
and load-bearing (FlexScale's cross-shard handoff protocol relies on
it):

* Events execute in ascending ``(time, seq)`` order, where ``seq`` is
  the monotonically increasing *insertion* counter of this loop.
* Two events scheduled for the same virtual time therefore run in the
  exact order they were scheduled — never in heap-internal, id-based,
  or otherwise incidental order.
* ``schedule_at`` stores the *exact* absolute time it was given (no
  ``now + (time - now)`` float round trip), so an event handed across
  process boundaries with a precomputed absolute timestamp executes at
  a bit-identical time on any loop.

Callers that inject externally-produced events (the FlexScale shard
runtime draining a handoff queue) must therefore insert them in a
canonical order of their own — e.g. sorted by ``(time, packet_id)`` —
before scheduling; the loop then preserves that order exactly. All
FlexNet experiments execute inside one :class:`EventLoop` — packet
arrivals, reconfiguration steps, controller decisions, and attack
ramps are all just scheduled callbacks.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def sequence(self) -> int:
        """The loop's insertion counter for this event — the tie-break
        half of the ``(time, seq)`` ordering contract. FlexMend
        checkpoints record it so re-scheduled events preserve their
        original same-time ordering after a restore."""
        return self._event.sequence


class EventLoop:
    """A deterministic discrete-event loop with seconds as virtual time.

    See the module docstring for the explicit ``(time, seq)`` ordering
    contract.
    """

    def __init__(self):
        #: heap of ``(time, seq, event)`` — the ordering key is spelled
        #: out rather than derived from dataclass comparison so the
        #: tie-break rule is part of the API, not an implementation
        #: accident.
        self._heap: list[tuple[float, int, _Event]] = []
        self._sequence = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def _push(self, time: float, callback: Callable[[], None]) -> EventHandle:
        event = _Event(time=time, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, (event.time, event.sequence, event))
        return EventHandle(event)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self._push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time.

        The given timestamp is stored exactly (no relative-delay round
        trip), so cross-loop handoffs that carry absolute times stay
        bit-identical to the loop that produced them.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} s, before current time {self._now} s"
            )
        return self._push(time, callback)

    def run_until(self, end_time: float) -> None:
        """Process events with time <= ``end_time``; advance the clock."""
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is before current time {self._now}"
            )
        self._running = True
        try:
            while self._heap and self._heap[0][0] <= end_time:
                _, _, event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
        finally:
            self._running = False
        self._now = end_time

    def run(self) -> None:
        """Drain every pending event."""
        self._running = True
        try:
            while self._heap:
                _, _, event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
        finally:
            self._running = False

    def pending(self) -> int:
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    def restore_clock(self, now: float) -> None:
        """Reset the clock to an absolute time on an *empty* loop.

        FlexMend restores a checkpointed shard by setting the clock to
        the checkpoint's window bound and then re-scheduling the saved
        events in their canonical ``(time, seq)`` order; restoring into
        a loop that already holds events would interleave two seq
        spaces, so it is refused.
        """
        if self.pending():
            raise SimulationError(
                f"restore_clock requires an empty loop ({self.pending()} pending)"
            )
        self._now = now
