"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, sequence,
callback)`` triples in a heap; ties break by insertion order so runs
are reproducible. All FlexNet experiments execute inside one
:class:`EventLoop` — packet arrivals, reconfiguration steps, controller
decisions, and attack ramps are all just scheduled callbacks.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventLoop.schedule`; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """A deterministic discrete-event loop with seconds as virtual time."""

    def __init__(self):
        self._heap: list[_Event] = []
        self._sequence = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        event = _Event(time=self._now + delay, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback)

    def run_until(self, end_time: float) -> None:
        """Process events with time <= ``end_time``; advance the clock."""
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is before current time {self._now}"
            )
        self._running = True
        try:
            while self._heap and self._heap[0].time <= end_time:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
        finally:
            self._running = False
        self._now = end_time

    def run(self) -> None:
        """Drain every pending event."""
        self._running = True
        try:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
        finally:
            self._running = False

    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
