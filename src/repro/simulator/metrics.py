"""Measurement collection for simulation runs."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


from repro.simulator.packet import Packet, Verdict


@dataclass
class LatencyStats:
    """Streaming latency statistics (seconds).

    Count, total, min, max, and mean are exact regardless of run length.
    Percentiles come from a bounded reservoir (Vitter's algorithm R)
    seeded deterministically, so memory stays O(``reservoir_size``) on
    multi-million-packet runs and repeated runs reproduce the same
    percentile estimates. Below the cap the reservoir holds every sample
    and percentiles are exact.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0
    reservoir_size: int = 4096
    seed: int = 2024
    samples: list[float] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False, compare=False)
    _sorted: list[float] | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self.samples) < self.reservoir_size:
            self.samples.append(value)
            self._sorted = None
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self.samples[slot] = value
                self._sorted = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        if not self.samples:
            return 0.0
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self.samples)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def merge(self, *others: "LatencyStats") -> "LatencyStats":
        """Combine per-shard reservoirs into one deterministic result.

        Exact aggregates (count, total, min, max — and therefore mean)
        add losslessly. The merged reservoir is the *sorted* union of
        every input's samples, so the result is independent of both
        merge order and the interleaving the shards ran under. While the
        combined sample count fits the reservoir every sample is kept —
        percentiles are then exactly what a single-process run over the
        union stream would report. Beyond the cap the sorted union is
        downsampled at evenly spaced ranks (deterministic, and a better
        percentile sketch than random subsampling); merge all shards in
        one call rather than pairwise chaining so the downsample happens
        once over the full union.
        """
        merged = LatencyStats(reservoir_size=self.reservoir_size, seed=self.seed)
        parts = (self, *others)
        merged.count = sum(part.count for part in parts)
        merged.total = sum(part.total for part in parts)
        merged.minimum = min(part.minimum for part in parts)
        merged.maximum = max(part.maximum for part in parts)
        union = sorted(sample for part in parts for sample in part.samples)
        if len(union) <= merged.reservoir_size:
            merged.samples = union
        else:
            cap = merged.reservoir_size
            step = (len(union) - 1) / (cap - 1)
            merged.samples = [union[round(index * step)] for index in range(cap)]
        merged._sorted = list(merged.samples)
        return merged


@dataclass
class RunMetrics:
    """Aggregate outcome of one simulation run."""

    sent: int = 0
    delivered: int = 0
    dropped_by_program: int = 0
    lost_by_infrastructure: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: packets that saw a *mixed* program version along one device —
    #: impossible under correct per-packet consistency; any nonzero
    #: value is a consistency violation.
    version_mixtures: int = 0
    #: packet counts per (device, program version) pair.
    version_counts: dict[tuple[str, int], int] = field(default_factory=dict)

    def record_sent(self) -> None:
        self.sent += 1

    def record_outcome(self, packet: Packet) -> None:
        if packet.verdict is Verdict.FORWARD:
            self.delivered += 1
            if packet.latency_s is not None:
                self.latency.record(packet.latency_s)
        elif packet.verdict is Verdict.DROP:
            self.dropped_by_program += 1
        else:
            self.lost_by_infrastructure += 1
        for device, version in packet.versions_seen.items():
            key = (device, version)
            self.version_counts[key] = self.version_counts.get(key, 0) + 1

    @property
    def loss_rate(self) -> float:
        return self.lost_by_infrastructure / self.sent if self.sent else 0.0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0

    def merge(self, *others: "RunMetrics") -> "RunMetrics":
        """Combine per-shard run metrics into one aggregate.

        Every device lives on exactly one shard and every packet
        finishes on exactly one shard, so plain sums are lossless; the
        latency reservoirs combine through
        :meth:`LatencyStats.merge`. Deterministic given deterministic
        inputs — the FlexScale coordinator calls this once, with every
        shard's metrics, after the workers drain.
        """
        parts = (self, *others)
        merged = RunMetrics(
            sent=sum(part.sent for part in parts),
            delivered=sum(part.delivered for part in parts),
            dropped_by_program=sum(part.dropped_by_program for part in parts),
            lost_by_infrastructure=sum(part.lost_by_infrastructure for part in parts),
            latency=self.latency.merge(*(part.latency for part in others)),
            version_mixtures=sum(part.version_mixtures for part in parts),
        )
        for part in parts:
            for key, count in part.version_counts.items():
                merged.version_counts[key] = merged.version_counts.get(key, 0) + count
        return merged

    def versions_on(self, device: str) -> dict[int, int]:
        return {
            version: count
            for (dev, version), count in self.version_counts.items()
            if dev == device
        }

    # -- Reportable protocol (FlexScope) ------------------------------------

    def summary(self) -> str:
        lines = [
            f"sent {self.sent}, delivered {self.delivered} "
            f"({self.delivery_rate * 100:.2f}%), "
            f"program drops {self.dropped_by_program}, "
            f"infrastructure loss {self.lost_by_infrastructure}"
        ]
        if self.latency.count:
            lines.append(
                f"latency: mean {self.latency.mean * 1e6:.2f} us, "
                f"p50 {self.latency.percentile(0.50) * 1e6:.2f} us, "
                f"p99 {self.latency.percentile(0.99) * 1e6:.2f} us"
            )
        if self.version_mixtures:
            lines.append(f"version mixtures: {self.version_mixtures} (VIOLATION)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        data: dict = {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_by_program": self.dropped_by_program,
            "lost_by_infrastructure": self.lost_by_infrastructure,
            "delivery_rate": round(self.delivery_rate, 9),
            "loss_rate": round(self.loss_rate, 9),
            "version_mixtures": self.version_mixtures,
            "version_counts": {
                f"{device}@v{version}": count
                for (device, version), count in sorted(self.version_counts.items())
            },
        }
        if self.latency.count:
            data["latency"] = {
                "count": self.latency.count,
                "mean_s": round(self.latency.mean, 9),
                "min_s": round(self.latency.minimum, 9),
                "max_s": round(self.latency.maximum, 9),
                "p50_s": round(self.latency.percentile(0.50), 9),
                "p99_s": round(self.latency.percentile(0.99), 9),
            }
        return data
