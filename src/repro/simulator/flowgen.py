"""Deterministic traffic generation.

Workload generators for the benchmark harness: constant-rate flows,
Poisson arrivals, heavy-tailed flow mixes, SYN-flood attack ramps, and
Poisson tenant churn. All randomness flows through a seeded
``random.Random`` so every experiment is reproducible run-to-run.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.simulator.packet import Packet, make_packet


@dataclass(frozen=True)
class TimedPacket:
    time: float
    packet: Packet


def constant_rate(
    rate_pps: float,
    duration_s: float,
    src_ip: int = 0x0A000001,
    dst_ip: int = 0x0A000002,
    start_s: float = 0.0,
    vlan_id: int = 0,
    dst_port: int = 80,
) -> Iterator[TimedPacket]:
    """One flow at a fixed packet rate."""
    if rate_pps <= 0:
        return
    interval = 1.0 / rate_pps
    count = int(duration_s * rate_pps)
    for index in range(count):
        time = start_s + index * interval
        yield TimedPacket(
            time=time,
            packet=make_packet(
                src_ip=src_ip,
                dst_ip=dst_ip,
                vlan_id=vlan_id,
                dst_port=dst_port,
                created_at=time,
            ),
        )


def poisson_flows(
    rate_pps: float,
    duration_s: float,
    flow_count: int,
    seed: int = 7,
    start_s: float = 0.0,
    vlan_id: int = 0,
    subnet: int = 0x0A000000,
) -> Iterator[TimedPacket]:
    """Poisson packet arrivals spread over ``flow_count`` flows.

    Flow popularity is Zipf-like (flow k gets weight 1/(k+1)), matching
    the heavy-tailed mixes datacenter monitoring literature assumes.
    """
    rng = random.Random(seed)
    weights = [1.0 / (k + 1) for k in range(flow_count)]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]
    time = start_s
    while time < start_s + duration_s:
        time += rng.expovariate(rate_pps)
        if time >= start_s + duration_s:
            break
        flow = rng.choices(range(flow_count), weights=probabilities)[0]
        yield TimedPacket(
            time=time,
            packet=make_packet(
                src_ip=subnet | (flow + 1),
                dst_ip=subnet | 0xFFFE,
                src_port=10000 + flow,
                vlan_id=vlan_id,
                created_at=time,
            ),
        )


def syn_flood(
    peak_pps: float,
    ramp_s: float,
    hold_s: float,
    decay_s: float,
    victim_ip: int = 0x0A0000FE,
    seed: int = 13,
    start_s: float = 0.0,
) -> Iterator[TimedPacket]:
    """A SYN-flood attack: rate ramps linearly to ``peak_pps``, holds,
    then decays. Sources are spoofed uniformly at random (the classic
    pattern a runtime-injected defense must fingerprint)."""
    rng = random.Random(seed)
    time = start_s
    end = start_s + ramp_s + hold_s + decay_s

    def rate_at(t: float) -> float:
        offset = t - start_s
        if offset < ramp_s:
            return peak_pps * (offset / max(ramp_s, 1e-9))
        if offset < ramp_s + hold_s:
            return peak_pps
        remaining = end - t
        return peak_pps * (remaining / max(decay_s, 1e-9))

    while time < end:
        # Floor the instantaneous rate so the ramp's first packets appear
        # promptly even for short attacks (2% of peak, at least 1 pps).
        rate = max(rate_at(time), peak_pps * 0.02, 1.0)
        time += rng.expovariate(rate)
        if time >= end:
            break
        yield TimedPacket(
            time=time,
            packet=make_packet(
                src_ip=rng.randrange(1, 1 << 32),
                dst_ip=victim_ip,
                src_port=rng.randrange(1024, 65535),
                dst_port=80,
                tcp_flags=0x02,  # SYN
                created_at=time,
            ),
        )


@dataclass(frozen=True)
class TenantEvent:
    time: float
    kind: str  # "arrive" | "depart"
    tenant: str


def tenant_churn(
    arrival_rate_per_s: float,
    mean_lifetime_s: float,
    duration_s: float,
    seed: int = 23,
) -> list[TenantEvent]:
    """Poisson tenant arrivals with exponential lifetimes (E12 workload)."""
    rng = random.Random(seed)
    events: list[TenantEvent] = []
    time = 0.0
    index = 0
    while True:
        time += rng.expovariate(arrival_rate_per_s)
        if time >= duration_s:
            break
        index += 1
        name = f"tenant{index}"
        events.append(TenantEvent(time=time, kind="arrive", tenant=name))
        departure = time + rng.expovariate(1.0 / mean_lifetime_s)
        if departure < duration_s:
            events.append(TenantEvent(time=departure, kind="depart", tenant=name))
    events.sort(key=lambda e: (e.time, e.kind == "depart"))
    return events


def merge_streams(*streams: Iterator[TimedPacket]) -> list[TimedPacket]:
    """Merge generators into one time-sorted list."""
    merged = [item for stream in streams for item in stream]
    merged.sort(key=lambda tp: tp.time)
    return merged
