"""FlexBatch: batched struct-of-arrays packet execution behind the
FlexVet batch gate.

FlexPath (:mod:`repro.simulator.fastpath`) compiles a program once and
executes packets one at a time; the per-packet Python overhead — context
set-up, key tuple construction, table lookups, result allocation — caps
the engine in the tens of microseconds per packet. FlexBatch amortizes
that overhead across a :class:`PacketBatch` (a struct-of-arrays buffer:
per-field value columns over many packets), which is only sound for
programs the FlexVet gate admits (:func:`~repro.simulator.fastpath.batch_gate`):
every data-plane map per-flow over a common partition field, and no
meter attached to any hosted table.

Execution is tiered, and every tier reproduces the interpreter's
per-packet outcomes *bit-exactly* (the merge gate is
:func:`batched_differential` at 0 divergences):

* **Memo tier** — for instances whose hosted slice is *cacheable*
  (stateless/read-only, per :mod:`repro.analysis.cacheability`): the
  batch is sub-grouped by the full observation key (the same key the
  FlexPath flow cache uses); one representative per group executes the
  compiled closure while its outcome is captured, and the rest receive
  a vectorized scatter — field/meta updates per packet, table counter
  deltas applied once per group with the group's multiplicity, one
  shared :class:`~repro.simulator.pipeline_exec.ExecutionResult`.
  Memoized outcomes persist across batches under an epoch token; when
  ``TableRules.epoch`` (or a read map's mutation counter) moves, the
  memo is flushed and the run continues bit-exactly on the fresh state.

* **Closure tier** — for per-flow stateful instances: packets are
  grouped by the admitted ``flow_key`` (visibility-masked, exactly the
  values the program would observe), groups execute through the
  compiled closure in first-appearance order with original order kept
  inside each group, and top-level tables whose keys no hosted element
  writes are *prematched* for the whole batch via
  :meth:`~repro.simulator.tables.TableRules.lookup_batch` — an
  exact-index gather over unique keys first, the rank-ordered predicate
  scan only for residual unique keys — so the closure skips those
  lookups per packet.

* **Fallback** — admission is revoked live when a meter attaches to a
  hosted table (the same disqualifier that bypasses the flow cache);
  the batch then runs packet-by-packet through the normal path, still
  bit-exact.

FlexScale integration: a :class:`~repro.scale.shard.ShardEngine` resets
every executor at each protocol window boundary
(:meth:`BatchExecutor.reset_window`), so batching amortizes *within* a
window but never across one — the windowed handoff protocol's
byte-identity argument is untouched.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.lang import ir
from repro.simulator.packet import Packet


class PacketBatch:
    """A struct-of-arrays batch: packets plus their per-packet virtual
    arrival times, with columnar accessors for batched passes."""

    __slots__ = ("packets", "times")

    def __init__(self, packets, times=None, now: float = 0.0):
        self.packets: list[Packet] = list(packets)
        if times is None:
            self.times = [now] * len(self.packets)
        else:
            self.times = list(times)
            if len(self.times) != len(self.packets):
                raise SimulationError(
                    f"batch has {len(self.packets)} packet(s) but "
                    f"{len(self.times)} time(s)"
                )

    @property
    def size(self) -> int:
        return len(self.packets)

    def column(self, header: str, field_name: str) -> list[int]:
        """Raw field values across the batch (0 where absent)."""
        key = (header, field_name)
        return [packet.fields.get(key, 0) for packet in self.packets]

    def meta_column(self, key: str) -> list[int]:
        return [packet.meta.get(key, 0) for packet in self.packets]

    def presence(self, header: str) -> list[bool]:
        """Per-packet header presence bits."""
        return [packet.has_header(header) for packet in self.packets]


@dataclass
class BatchStats:
    """FlexBatch execution counters (the FlexScope batch metrics)."""

    batches: int = 0
    packets: int = 0
    #: execution groups formed (observation-key sub-groups in the memo
    #: tier, flow-key groups in the closure tier).
    groups: int = 0
    #: packets served by replaying a memoized outcome.
    memo_hits: int = 0
    #: representative executions that recorded a new outcome.
    memo_misses: int = 0
    #: packets executed through the compiled closure (per-flow tier).
    closure_packets: int = 0
    #: packets run through the normal per-packet path after a live
    #: admission revocation.
    fallback_packets: int = 0
    #: batches refused live (meter attached to a hosted table).
    revoked_batches: int = 0
    #: epoch-token moves that flushed the memo mid-run.
    revocations: int = 0
    #: memoized outcomes dropped across those flushes and window resets.
    memo_entries_dropped: int = 0
    #: largest batch observed.
    max_batch_size: int = 0

    @property
    def occupancy(self) -> float:
        """Mean packets per batch — how full the batches actually are."""
        return self.packets / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "batches": self.batches,
            "packets": self.packets,
            "groups": self.groups,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "closure_packets": self.closure_packets,
            "fallback_packets": self.fallback_packets,
            "revoked_batches": self.revoked_batches,
            "revocations": self.revocations,
            "memo_entries_dropped": self.memo_entries_dropped,
            "max_batch_size": self.max_batch_size,
            "occupancy": self.occupancy,
        }

    def summary(self) -> str:
        return (
            f"{self.packets} packet(s) in {self.batches} batch(es) "
            f"(occupancy {self.occupancy:.1f}, {self.groups} group(s)): "
            f"{self.memo_hits} memo hit(s), {self.memo_misses} miss(es), "
            f"{self.closure_packets} closure, {self.fallback_packets} "
            f"fallback; {self.revoked_batches} batch(es) revoked, "
            f"{self.revocations} memo flush(es)"
        )


def _has_recirculate(program: ir.Program) -> bool:
    """Whether any action/function body could recirculate (conservative:
    the whole program, not just the hosted slice)."""

    def in_body(body) -> bool:
        for stmt in body:
            if isinstance(stmt, ir.PrimitiveCall) and stmt.name == "recirculate":
                return True
            if isinstance(stmt, ir.If):
                if in_body(stmt.then_body) or in_body(stmt.else_body):
                    return True
            elif isinstance(stmt, ir.Repeat):
                if in_body(stmt.body):
                    return True
        return False

    return any(in_body(action.body) for action in program.actions) or any(
        in_body(function.body) for function in program.functions
    )


def _prematch_plan(instance) -> tuple:
    """The tables a batched pass may resolve up front: top-level,
    unconditionally applied, hosted, and keyed only on fields no hosted
    element writes — so the key a table observes mid-pipeline equals the
    key computed from the incoming packet. Programs that can
    recirculate are excluded wholesale (a re-run could observe rewritten
    fields)."""
    program = instance.program
    if _has_recirculate(program):
        return ()
    from repro.analysis.dataflow import analyze, executed_slice

    info = analyze(program)
    _, access = executed_slice(program, info, instance.hosted_elements)
    written = {(ref.header, ref.field) for ref in access.field_writes}
    plan = []
    for step in program.apply:
        if not isinstance(step, ir.ApplyTable):
            continue
        if not instance.hosts(step.table):
            continue
        table = program.table(step.table)
        key_refs = tuple((key.field.header, key.field.field) for key in table.keys)
        if any(ref in written for ref in key_refs):
            continue
        plan.append((step.table, key_refs))
    return tuple(plan)


def _memo_entry(outcome, instance):
    """Pre-resolve one recorded outcome for fast replay: counter deltas
    are bound to their live ``hit_counts`` lists (valid until the epoch
    token moves, which flushes the memo), and one ExecutionResult is
    shared by every replayed packet (results are value-compared, never
    mutated). Returns ``(outcome, hit_ops, miss_ops, shared_result,
    simple)`` where ``simple`` marks outcomes with no absent keys or
    digests, which take a shorter scatter loop."""
    from repro.simulator.pipeline_exec import ExecutionResult

    rules_by_name = instance.rules
    hit_ops = []
    miss_ops = []
    for table_name, hit_deltas, miss_delta in outcome.counters:
        rules = rules_by_name.get(table_name)
        if rules is None:
            continue
        hit_counts = rules.hit_counts
        for position, delta in hit_deltas:
            hit_ops.append((hit_counts, position, delta))
        if miss_delta:
            miss_ops.append((rules, miss_delta))
    shared = ExecutionResult(
        ops=outcome.ops, version=outcome.version, recirculations=outcome.recirculations
    )
    simple = not (outcome.fields_absent or outcome.meta_absent or outcome.digests)
    return (outcome, tuple(hit_ops), tuple(miss_ops), shared, simple)


def _compile_obs_key(binding):
    """Codegen the per-packet observation-key function for the memo
    tier (the FlexPath trick applied to key extraction: one specialized
    function instead of a generic loop over key descriptors).

    The key is ``(tuple(packet.fields), observed field values…, meta
    values…)``. The leading ordered field-key tuple determines the set
    of present fields — a strict refinement of the
    :class:`_CacheBinding` key's per-header presence bits — so packets
    sharing a key are indistinguishable to the hosted slice and the
    memoized outcome replays bit-exactly.
    """
    lines = ["def obs_key(p):", "    f = p.fields", "    g = f.get"]
    if binding._meta_keys:  # noqa: SLF001 - executor owns the binding
        lines.append("    m = p.meta.get")
    parts = ["tuple(f)"]
    namespace: dict = {}
    for index, key in enumerate(binding._field_keys):  # noqa: SLF001
        namespace[f"F{index}"] = key
        parts.append(f"g(F{index}, 0)")
    for index, key in enumerate(binding._meta_keys):  # noqa: SLF001
        namespace[f"M{index}"] = key
        parts.append(f"m(M{index}, 0)")
    lines.append("    return (" + ", ".join(parts) + ")")
    exec("\n".join(lines), namespace)  # noqa: S102 - static codegen, no packet data
    return namespace["obs_key"]


def _compile_parse_sig(program: ir.Program):
    """Codegen the parse-signature function for the closure tier.

    The compiled parse pass observes exactly two things: which headers
    are present (derived from the field-key set) and the values of the
    parser's select fields. Packets with equal signatures therefore
    parse to identical visibility sets, which is what lets the executor
    memoize the parse probe instead of re-parsing every packet.
    """
    select_keys: list = []
    parser = program.parser
    if parser is not None:
        for transition in parser.transitions:
            ref = transition.select_field
            if ref is not None:
                key = (ref.header, ref.field)
                if key not in select_keys:
                    select_keys.append(key)
    lines = ["def parse_sig(p):", "    f = p.fields"]
    parts = ["tuple(f)"]
    namespace: dict = {}
    for index, key in enumerate(select_keys):
        namespace[f"S{index}"] = key
        parts.append(f"f.get(S{index}, 0)")
    lines.append("    return (" + ", ".join(parts) + ")")
    exec("\n".join(lines), namespace)  # noqa: S102 - static codegen, no packet data
    return namespace["parse_sig"]


class BatchExecutor:
    """The batched backend for one :class:`ProgramInstance`.

    Built lazily by :meth:`ProgramInstance.batch_executor` (after state
    sharing/adoption has re-bound rules and maps, like the FlexPath
    compile). The static admission half (FlexVet's ``batch_safe``) is
    fixed per instance; the live half — a meter attaching to a hosted
    table — is re-checked on every batch, which is what "revoked live"
    means.
    """

    def __init__(self, instance, memo_capacity: int = 4096):
        from repro.simulator.fastpath import FlowCache

        if memo_capacity <= 0:
            raise SimulationError("batch memo capacity must be positive")
        self.instance = instance
        self.memo_capacity = memo_capacity
        self.stats = BatchStats()
        report = instance.vet()
        self._static_reasons = tuple(report.batch_reasons)
        self._flow_fields = tuple(
            tuple(name.split(".", 1)) for name in report.flow_key
        )
        self._meter_tables = tuple(
            sorted(e.name for e in report.elements if e.kind == "table")
        )
        self._binding = FlowCache._binding(instance)  # noqa: SLF001 - shared per-instance binding
        self._plan = _prematch_plan(instance) if not self._static_reasons else ()
        self._obs_key = (
            _compile_obs_key(self._binding) if self._binding.cacheable else None
        )
        self._parse_sig = _compile_parse_sig(instance.program)
        #: parse signature -> visibility frozenset. Never invalidated:
        #: visibility is a pure function of the signature for this
        #: immutable program (rule/map mutations cannot change parsing).
        self._vis_memo: dict = {}
        #: observation key -> recorded outcome, valid under _memo_token.
        self._memo: dict = {}
        self._memo_token = None

    # -- admission ----------------------------------------------------------

    def admission(self):
        """The current live admission verdict (static + meter check)."""
        from repro.simulator.fastpath import batch_gate

        return batch_gate(self.instance)

    def _meter_blocked(self) -> bool:
        rules_by_name = self.instance.rules
        for name in self._meter_tables:
            rules = rules_by_name.get(name)
            if rules is not None and rules.meter is not None:
                return True
        return False

    # -- window / invalidation ---------------------------------------------

    def reset_window(self) -> None:
        """FlexScale window boundary: drop every memoized outcome so
        batching never spans a shard window."""
        self.stats.memo_entries_dropped += len(self._memo)
        self._memo.clear()
        self._memo_token = None

    # -- execution ----------------------------------------------------------

    def execute(self, batch: PacketBatch) -> list:
        """Run one batch; returns per-packet ExecutionResults aligned
        with ``batch.packets`` (every packet mutated exactly as the
        interpreter would have left it)."""
        stats = self.stats
        stats.batches += 1
        size = batch.size
        stats.packets += size
        if size > stats.max_batch_size:
            stats.max_batch_size = size
        if not size:
            return []
        instance = self.instance
        if self._static_reasons or self._meter_blocked():
            stats.revoked_batches += 1
            stats.fallback_packets += size
            process = instance.process
            times = batch.times
            return [process(packet, times[i]) for i, packet in enumerate(batch.packets)]
        results: list = [None] * size
        if self._binding.cacheable:
            token = self._binding.token()
            if token is None:
                # A meter on an applied-but-unhosted table: the vet scan
                # above cannot see it, the cacheability token can.
                stats.revoked_batches += 1
                stats.fallback_packets += size
                process = instance.process
                times = batch.times
                return [
                    process(packet, times[i]) for i, packet in enumerate(batch.packets)
                ]
            if token != self._memo_token:
                if self._memo_token is not None:
                    stats.revocations += 1
                    stats.memo_entries_dropped += len(self._memo)
                self._memo.clear()
                self._memo_token = token
            self._run_memo(batch, results)
        elif size == 1:
            # Device-level routing feeds single packets; the per-flow
            # tier has nothing to amortize at size 1, so skip straight
            # to the compiled path.
            stats.groups += 1
            stats.closure_packets += 1
            results[0] = instance.process(batch.packets[0], batch.times[0])
        else:
            self._run_closure(batch, results)
        return results

    def _run_memo(self, batch: PacketBatch, results: list) -> None:
        """Memo tier: sub-group by observation key, execute one
        representative per group, scatter to the rest. Sound because the
        hosted slice is stateless — outcomes are a pure function of the
        observation key, so any cross-group execution order is
        bit-exact and flow-key grouping is subsumed."""
        binding = self._binding
        packets = batch.packets
        times = batch.times

        subgroups: dict = {}
        order: list = []
        i = 0
        for key in map(self._obs_key, packets):
            rows = subgroups.get(key)
            if rows is None:
                subgroups[key] = rows = []
                order.append(key)
            rows.append(i)
            i += 1
        stats = self.stats
        stats.groups += len(order)

        memo = self._memo
        capacity = self.memo_capacity
        instance = self.instance
        for key in order:
            rows = subgroups[key]
            entry = memo.get(key)
            if entry is None:
                rep = rows[0]
                outcome, rep_result = binding.record(packets[rep], times[rep])
                stats.memo_misses += 1
                if len(memo) >= capacity:
                    del memo[next(iter(memo))]
                entry = _memo_entry(outcome, instance)
                memo[key] = entry
                results[rep] = rep_result
                del rows[0]
                if not rows:
                    continue
            outcome, hit_ops, miss_ops, shared, simple = entry
            fields_post = outcome.fields_post
            meta_post = outcome.meta_post
            verdict = outcome.verdict
            if simple:
                for i in rows:
                    packet = packets[i]
                    packet.fields.update(fields_post)
                    packet.meta.update(meta_post)
                    packet.verdict = verdict
                    results[i] = shared
            else:
                fields_absent = outcome.fields_absent
                meta_absent = outcome.meta_absent
                digests = outcome.digests
                for i in rows:
                    packet = packets[i]
                    fields = packet.fields
                    fields.update(fields_post)
                    for absent in fields_absent:
                        fields.pop(absent, None)
                    meta = packet.meta
                    meta.update(meta_post)
                    for absent in meta_absent:
                        meta.pop(absent, None)
                    packet.verdict = verdict
                    if digests:
                        packet.digests.extend(digests)
                    results[i] = shared
            count = len(rows)
            for hit_counts, position, delta in hit_ops:
                hit_counts[position] += delta * count
            for rules, delta in miss_ops:
                rules.miss_count += delta * count
            stats.memo_hits += count

    def _run_closure(self, batch: PacketBatch, results: list) -> None:
        """Closure tier: group by the admitted flow key (masked exactly
        as the program observes it), prematch batch-stable tables via
        ``lookup_batch``, then run each group through the compiled
        closure — original order inside a group, groups in
        first-appearance order (cross-flow independence is FlexVet's
        ``batch_safe`` contract)."""
        from repro.simulator.fastpath import _Ctx

        instance = self.instance
        compiled = instance._compiled  # noqa: SLF001 - hot-path binding
        if compiled is None:
            from repro.simulator.fastpath import compile_instance

            compiled = instance._compiled = compile_instance(instance)  # noqa: SLF001
        packets = batch.packets
        times = batch.times
        size = len(packets)

        # The flow grouping and the prematch keys must respect parse
        # visibility (an unparsed header reads as 0, so two packets the
        # program sees as the same flow may differ in raw fields). One
        # parse probe per *unique parse signature* resolves it — the
        # signature captures everything the parse pass observes.
        parse = compiled._parse  # noqa: SLF001
        parse_sig = self._parse_sig
        vis_memo = self._vis_memo
        probe = None
        visibles = []
        for packet in packets:
            sig = parse_sig(packet)
            visible = vis_memo.get(sig)
            if visible is None:
                if probe is None:
                    probe = _Ctx()
                probe.packet = packet
                probe.fields = packet.fields
                probe.meta = packet.meta
                probe.ops = 0
                parse(probe)
                visible = frozenset(probe.visible)
                if len(vis_memo) >= 65536:  # unbounded-signature backstop
                    vis_memo.clear()
                vis_memo[sig] = visible
            visibles.append(visible)

        flow_fields = self._flow_fields
        groups: dict = {}
        order: list = []
        if flow_fields:
            for i in range(size):
                visible = visibles[i]
                fields = packets[i].fields
                key = tuple(
                    fields.get(ref, 0) if ref[0] in visible else 0
                    for ref in flow_fields
                )
                rows = groups.get(key)
                if rows is None:
                    groups[key] = rows = []
                    order.append(key)
                rows.append(i)
        else:
            groups[()] = list(range(size))
            order.append(())
        stats = self.stats
        stats.groups += len(order)

        prematch_rows = None
        if self._plan:
            prematch_rows = [{} for _ in range(size)]
            rules_by_name = instance.rules
            for name, key_refs in self._plan:
                rules = rules_by_name.get(name)
                if rules is None:
                    continue
                keys = []
                for i in range(size):
                    visible = visibles[i]
                    fields = packets[i].fields
                    keys.append(
                        tuple(
                            fields.get(ref, 0) if ref[0] in visible else 0
                            for ref in key_refs
                        )
                    )
                actions = rules.lookup_batch(keys)
                for i in range(size):
                    prematch_rows[i][name] = actions[i]

        if prematch_rows is None:
            process = compiled.process
            for key in order:
                for i in groups[key]:
                    results[i] = process(packets[i], times[i])
        else:
            process = compiled.process_prematched
            for key in order:
                for i in groups[key]:
                    results[i] = process(packets[i], times[i], prematch_rows[i])
        stats.closure_packets += size


# ---------------------------------------------------------------------------
# Differential harness (the FlexBatch merge gate)
# ---------------------------------------------------------------------------


def batched_differential(
    program: ir.Program,
    packets: list[Packet],
    hosted_elements: set[str] | None = None,
    setup=None,
    batch_size: int = 64,
    now_step: float = 1e-4,
    max_divergences: int = 20,
    mutate=None,
):
    """Run the interpreter and the batched backend side by side and
    report every observable difference (the same checks
    :func:`~repro.simulator.fastpath.differential_check` applies, plus
    end-of-run map state and table counters). ``mutate(reference,
    batched, batch_index)`` — when given — runs before each batch on
    both instances, which is how the revocation tests attach a meter or
    mutate rules mid-run."""
    from repro.simulator.fastpath import DifferentialReport, Divergence
    from repro.simulator.pipeline_exec import ProgramInstance

    if batch_size <= 0:
        raise SimulationError("batch size must be positive")
    reference = ProgramInstance(program, hosted_elements)
    batched = ProgramInstance(program, hosted_elements)
    batched.enable_batching()
    if setup is not None:
        setup(reference)
        setup(batched)

    report = DifferentialReport()
    for batch_index, start in enumerate(range(0, len(packets), batch_size)):
        if len(report.divergences) >= max_divergences:
            break
        chunk = packets[start : start + batch_size]
        if mutate is not None:
            mutate(reference, batched, batch_index)
        lefts = [copy.deepcopy(packet) for packet in chunk]
        rights = [copy.deepcopy(packet) for packet in chunk]
        times = [(start + offset) * now_step for offset in range(len(chunk))]
        ref_results = [
            reference.process(packet, times[offset])
            for offset, packet in enumerate(lefts)
        ]
        batch_results = batched.process_batch(PacketBatch(rights, times=times))
        for offset in range(len(chunk)):
            index = start + offset
            left, right = lefts[offset], rights[offset]
            ref_result, batch_result = ref_results[offset], batch_results[offset]
            report.packets += 1
            checks = (
                ("verdict", left.verdict, right.verdict),
                ("fields", left.fields, right.fields),
                ("meta", left.meta, right.meta),
                ("digests", left.digests, right.digests),
                ("ops", ref_result.ops, batch_result.ops),
                ("recirculations", ref_result.recirculations, batch_result.recirculations),
                ("version", ref_result.version, batch_result.version),
            )
            for kind, expected, actual in checks:
                if expected != actual:
                    report.divergences.append(
                        Divergence(
                            index, kind, copy.deepcopy(expected), copy.deepcopy(actual)
                        )
                    )

    for map_name in reference.maps.names():
        ref_state = dict(reference.maps.state(map_name).items())
        batch_state = dict(batched.maps.state(map_name).items())
        if ref_state != batch_state:
            report.divergences.append(
                Divergence(-1, f"map:{map_name}", ref_state, batch_state)
            )
    for table_name, ref_rules in reference.rules.items():
        batch_rules = batched.rules[table_name]
        if ref_rules.hit_counts != batch_rules.hit_counts:
            report.divergences.append(
                Divergence(
                    -1,
                    f"hit_counts:{table_name}",
                    list(ref_rules.hit_counts),
                    list(batch_rules.hit_counts),
                )
            )
        if ref_rules.miss_count != batch_rules.miss_count:
            report.divergences.append(
                Divergence(
                    -1,
                    f"miss_count:{table_name}",
                    ref_rules.miss_count,
                    batch_rules.miss_count,
                )
            )
    return report
