"""Runtime match/action table rules.

A program defines a table's *shape* (keys, actions, size); the control
plane populates its *rules* at runtime through the P4Runtime-level API
(:mod:`repro.control.p4runtime`). This module models the rule store one
device keeps per table: typed match specs (exact / LPM / ternary /
range), priorities, and longest-prefix semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FlexNetError
from repro.lang.ir import ActionCall, MatchKind, TableDef


class TableError(FlexNetError):
    """Raised on malformed rules or capacity overflow."""


@dataclass(frozen=True)
class ExactMatch:
    value: int

    def matches(self, value: int) -> bool:
        return value == self.value

    @property
    def specificity(self) -> int:
        return 1 << 20


@dataclass(frozen=True)
class LpmMatch:
    prefix: int
    prefix_len: int
    width: int = 32

    def matches(self, value: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = self.width - self.prefix_len
        return (value >> shift) == (self.prefix >> shift)

    @property
    def specificity(self) -> int:
        return self.prefix_len


@dataclass(frozen=True)
class TernaryMatch:
    value: int
    mask: int

    def matches(self, value: int) -> bool:
        return (value & self.mask) == (self.value & self.mask)

    @property
    def specificity(self) -> int:
        return bin(self.mask).count("1")


@dataclass(frozen=True)
class RangeMatch:
    low: int
    high: int

    def matches(self, value: int) -> bool:
        return self.low <= value <= self.high

    @property
    def specificity(self) -> int:
        return max(0, 64 - max(self.high - self.low, 0).bit_length())


MatchSpec = ExactMatch | LpmMatch | TernaryMatch | RangeMatch


@dataclass(frozen=True)
class Rule:
    """One table entry: per-key match specs, action, priority."""

    matches: tuple[MatchSpec, ...]
    action: ActionCall
    priority: int = 0

    def matches_key(self, key_values: tuple[int, ...]) -> bool:
        return all(spec.matches(value) for spec, value in zip(self.matches, key_values))


class TableRules:
    """The installed rules of one table on one device."""

    def __init__(self, definition: TableDef):
        self.definition = definition
        self._rules: list[Rule] = []
        #: per-rule hit counters, aligned with self._rules (P4Runtime
        #: exposes these as direct counters).
        self.hit_counts: list[int] = []
        self.miss_count = 0
        #: optional table meter (configured via P4Runtime); every rule
        #: hit is coloured through it.
        self.meter = None

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> list[Rule]:
        return list(self._rules)

    def insert(self, rule: Rule) -> None:
        if len(rule.matches) != len(self.definition.keys):
            raise TableError(
                f"table {self.definition.name!r} has {len(self.definition.keys)} keys; "
                f"rule provides {len(rule.matches)}"
            )
        if rule.action.action not in self.definition.actions:
            raise TableError(
                f"table {self.definition.name!r} does not allow action {rule.action.action!r}"
            )
        for spec, key in zip(rule.matches, self.definition.keys):
            expected = {
                MatchKind.EXACT: ExactMatch,
                MatchKind.LPM: LpmMatch,
                MatchKind.TERNARY: TernaryMatch,
                MatchKind.RANGE: RangeMatch,
            }[key.match_kind]
            if not isinstance(spec, expected):
                raise TableError(
                    f"table {self.definition.name!r} key {key.field} expects "
                    f"{key.match_kind.value} match, got {type(spec).__name__}"
                )
        if len(self._rules) >= self.definition.size:
            raise TableError(
                f"table {self.definition.name!r} is full ({self.definition.size} rules)"
            )
        self._rules.append(rule)
        self.hit_counts.append(0)

    def remove(self, rule: Rule) -> bool:
        try:
            index = self._rules.index(rule)
        except ValueError:
            return False
        del self._rules[index]
        del self.hit_counts[index]
        return True

    def clear(self) -> None:
        self._rules.clear()
        self.hit_counts.clear()

    def lookup(self, key_values: tuple[int, ...]) -> ActionCall | None:
        """Find the matching rule with highest (priority, specificity);
        returns the table's default action on miss (None if absent)."""
        best: Rule | None = None
        best_index = -1
        best_rank: tuple[int, int] = (-1, -1)
        for index, rule in enumerate(self._rules):
            if not rule.matches_key(key_values):
                continue
            specificity = sum(spec.specificity for spec in rule.matches)
            rank = (rule.priority, specificity)
            if rank > best_rank:
                best, best_index, best_rank = rule, index, rank
        if best is not None:
            self.hit_counts[best_index] += 1
            return best.action
        self.miss_count += 1
        return self.definition.default_action


def exact(value: int) -> ExactMatch:
    return ExactMatch(value=value)


def lpm(prefix: int, prefix_len: int, width: int = 32) -> LpmMatch:
    return LpmMatch(prefix=prefix, prefix_len=prefix_len, width=width)


def ternary(value: int, mask: int) -> TernaryMatch:
    return TernaryMatch(value=value, mask=mask)


def rng(low: int, high: int) -> RangeMatch:
    return RangeMatch(low=low, high=high)
