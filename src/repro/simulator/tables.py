"""Runtime match/action table rules.

A program defines a table's *shape* (keys, actions, size); the control
plane populates its *rules* at runtime through the P4Runtime-level API
(:mod:`repro.control.p4runtime`). This module models the rule store one
device keeps per table: typed match specs (exact / LPM / ternary /
range), priorities, and longest-prefix semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FlexNetError
from repro.lang.ir import ActionCall, MatchKind, TableDef


class TableError(FlexNetError):
    """Raised on malformed rules or capacity overflow."""


@dataclass(frozen=True)
class ExactMatch:
    value: int

    def matches(self, value: int) -> bool:
        return value == self.value

    def compile(self):
        expected = self.value
        return lambda value: value == expected

    @property
    def specificity(self) -> int:
        return 1 << 20


@dataclass(frozen=True)
class LpmMatch:
    prefix: int
    prefix_len: int
    width: int = 32

    def matches(self, value: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = self.width - self.prefix_len
        return (value >> shift) == (self.prefix >> shift)

    def compile(self):
        if self.prefix_len == 0:
            return lambda value: True
        shift = self.width - self.prefix_len
        target = self.prefix >> shift
        return lambda value: (value >> shift) == target

    @property
    def specificity(self) -> int:
        return self.prefix_len


@dataclass(frozen=True)
class TernaryMatch:
    value: int
    mask: int

    def matches(self, value: int) -> bool:
        return (value & self.mask) == (self.value & self.mask)

    def compile(self):
        mask = self.mask
        target = self.value & mask
        return lambda value: (value & mask) == target

    @property
    def specificity(self) -> int:
        return bin(self.mask).count("1")


@dataclass(frozen=True)
class RangeMatch:
    low: int
    high: int

    def matches(self, value: int) -> bool:
        return self.low <= value <= self.high

    def compile(self):
        low, high = self.low, self.high
        return lambda value: low <= value <= high

    @property
    def specificity(self) -> int:
        return max(0, 64 - max(self.high - self.low, 0).bit_length())


MatchSpec = ExactMatch | LpmMatch | TernaryMatch | RangeMatch


@dataclass(frozen=True)
class Rule:
    """One table entry: per-key match specs, action, priority."""

    matches: tuple[MatchSpec, ...]
    action: ActionCall
    priority: int = 0

    def matches_key(self, key_values: tuple[int, ...]) -> bool:
        if len(key_values) != len(self.matches):
            raise TableError(
                f"rule has {len(self.matches)} match specs; "
                f"matched against {len(key_values)} key values"
            )
        return all(spec.matches(value) for spec, value in zip(self.matches, key_values))

    def compile_predicate(self):
        """A dispatch-free predicate over a full key tuple, for the
        indexed lookup path (semantically identical to matches_key)."""
        compiled = tuple(spec.compile() for spec in self.matches)
        if len(compiled) == 1:
            only = compiled[0]
            return lambda key_values: only(key_values[0])

        def predicate(key_values):
            for spec, value in zip(compiled, key_values):
                if not spec(value):
                    return False
            return True

        return predicate

    @property
    def specificity(self) -> int:
        return sum(spec.specificity for spec in self.matches)


class TableRules:
    """The installed rules of one table on one device.

    Lookup is indexed (FlexPath): tables whose keys are all exact-match
    resolve through a hash index; LPM/ternary/range tables scan rules
    pre-sorted by ``(priority, specificity, insertion order)`` and take
    the first match — both orders reproduce the linear-scan semantics
    exactly. Indexes are invalidated on any rule mutation, and every
    mutation (rules or meter) bumps :attr:`epoch`, which the FlexPath
    flow cache uses to drop stale verdicts.
    """

    def __init__(self, definition: TableDef):
        self.definition = definition
        self._rules: list[Rule] = []
        #: per-rule hit counters, aligned with self._rules (P4Runtime
        #: exposes these as direct counters).
        self.hit_counts: list[int] = []
        self.miss_count = 0
        #: optional table meter (configured via P4Runtime); every rule
        #: hit is coloured through it.
        self._meter = None
        #: monotonic mutation counter (rules inserted/removed/cleared,
        #: meter attached/detached) — the flow-cache invalidation epoch.
        self.epoch = 0
        self._all_exact = bool(definition.keys) and all(
            key.match_kind is MatchKind.EXACT for key in definition.keys
        )
        #: exact-key hash index: key tuple -> (action, rule index).
        self._exact_index: dict[tuple[int, ...], tuple[ActionCall, int]] | None = None
        #: (compiled predicate, action, rule index) pre-sorted for
        #: first-match-wins.
        self._ordered: list | None = None

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def rules(self) -> list[Rule]:
        return list(self._rules)

    @property
    def meter(self):
        return self._meter

    @meter.setter
    def meter(self, value) -> None:
        self._meter = value
        self.epoch += 1

    def _invalidate(self) -> None:
        self._exact_index = None
        self._ordered = None
        self.epoch += 1

    def insert(self, rule: Rule) -> None:
        if len(rule.matches) != len(self.definition.keys):
            raise TableError(
                f"table {self.definition.name!r} has {len(self.definition.keys)} keys; "
                f"rule provides {len(rule.matches)}"
            )
        if rule.action.action not in self.definition.actions:
            raise TableError(
                f"table {self.definition.name!r} does not allow action {rule.action.action!r}"
            )
        for spec, key in zip(rule.matches, self.definition.keys):
            expected = {
                MatchKind.EXACT: ExactMatch,
                MatchKind.LPM: LpmMatch,
                MatchKind.TERNARY: TernaryMatch,
                MatchKind.RANGE: RangeMatch,
            }[key.match_kind]
            if not isinstance(spec, expected):
                raise TableError(
                    f"table {self.definition.name!r} key {key.field} expects "
                    f"{key.match_kind.value} match, got {type(spec).__name__}"
                )
        if len(self._rules) >= self.definition.size:
            raise TableError(
                f"table {self.definition.name!r} is full ({self.definition.size} rules)"
            )
        self._rules.append(rule)
        self.hit_counts.append(0)
        self._invalidate()

    def remove(self, rule: Rule) -> bool:
        try:
            index = self._rules.index(rule)
        except ValueError:
            return False
        del self._rules[index]
        del self.hit_counts[index]
        self._invalidate()
        return True

    def clear(self) -> None:
        self._rules.clear()
        self.hit_counts.clear()
        self._invalidate()

    def adopt_from(self, previous: "TableRules") -> None:
        """Carry runtime state over from a same-shape predecessor across
        a hitless reconfiguration: compatible rules keep their per-rule
        hit counters, and the table keeps its miss count and meter (a
        rate limiter configured via P4Runtime must survive unrelated
        deltas)."""
        if previous.definition.keys != self.definition.keys:
            return
        for rule, hits in zip(previous._rules, previous.hit_counts):
            if rule.action.action not in self.definition.actions:
                continue
            if len(self._rules) >= self.definition.size:
                break
            self.insert(rule)
            self.hit_counts[-1] = hits
        self.miss_count += previous.miss_count
        if previous._meter is not None:
            self.meter = previous._meter

    # -- lookup ------------------------------------------------------------

    def _build_exact_index(self) -> dict[tuple[int, ...], tuple[ActionCall, int]]:
        """Hash index for all-exact tables: per key, keep the winner the
        linear scan would pick (highest priority, earliest insertion)."""
        index: dict[tuple[int, ...], tuple[ActionCall, int]] = {}
        priorities: dict[tuple[int, ...], int] = {}
        for position, rule in enumerate(self._rules):
            key = tuple(spec.value for spec in rule.matches)
            if key not in index or rule.priority > priorities[key]:
                index[key] = (rule.action, position)
                priorities[key] = rule.priority
        self._exact_index = index
        return index

    def _build_ordered(self) -> list:
        """Rules sorted so the first match wins: descending (priority,
        specificity), ascending insertion order — the same winner the
        max-rank linear scan selects. Each entry carries a compiled,
        dispatch-free predicate."""
        ranked = sorted(
            ((rule, position) for position, rule in enumerate(self._rules)),
            key=lambda pair: (-pair[0].priority, -pair[0].specificity, pair[1]),
        )
        ordered = [
            (rule.compile_predicate(), rule.action, position) for rule, position in ranked
        ]
        self._ordered = ordered
        return ordered

    def lookup(self, key_values: tuple[int, ...]) -> ActionCall | None:
        """Find the matching rule with highest (priority, specificity);
        returns the table's default action on miss (None if absent)."""
        if len(key_values) != len(self.definition.keys):
            raise TableError(
                f"table {self.definition.name!r} has {len(self.definition.keys)} keys; "
                f"lookup provides {len(key_values)} values"
            )
        if self._all_exact:
            index = self._exact_index
            if index is None:
                index = self._build_exact_index()
            hit = index.get(key_values)
            if hit is not None:
                action, position = hit
                self.hit_counts[position] += 1
                return action
        else:
            ordered = self._ordered
            if ordered is None:
                ordered = self._build_ordered()
            for predicate, action, position in ordered:
                if predicate(key_values):
                    self.hit_counts[position] += 1
                    return action
        self.miss_count += 1
        return self.definition.default_action

    def lookup_batch(self, key_batch) -> list[ActionCall | None]:
        """Batched lookup (FlexBatch): resolve many key tuples at once.

        Semantically identical to calling :meth:`lookup` once per key —
        same resolved actions (default action on miss) and the same
        hit/miss counter totals — but resolved per *unique* key: an
        exact-index gather serves all-exact tables, and only residual
        unique keys (tables without an exact index) take the
        rank-ordered predicate scan. Counters are bumped once per
        unique key with that key's multiplicity, which is exact because
        counter increments commute.
        """
        if not key_batch:
            return []
        width = len(self.definition.keys)
        multiplicity: dict[tuple[int, ...], int] = {}
        for key_values in key_batch:
            if len(key_values) != width:
                raise TableError(
                    f"table {self.definition.name!r} has {width} keys; "
                    f"lookup provides {len(key_values)} values"
                )
            multiplicity[key_values] = multiplicity.get(key_values, 0) + 1
        default = self.definition.default_action
        resolved: dict[tuple[int, ...], ActionCall | None] = {}
        if self._all_exact:
            index = self._exact_index
            if index is None:
                index = self._build_exact_index()
            for key_values, count in multiplicity.items():
                hit = index.get(key_values)
                if hit is not None:
                    action, position = hit
                    self.hit_counts[position] += count
                    resolved[key_values] = action
                else:
                    self.miss_count += count
                    resolved[key_values] = default
        else:
            ordered = self._ordered
            if ordered is None:
                ordered = self._build_ordered()
            for key_values, count in multiplicity.items():
                for predicate, action, position in ordered:
                    if predicate(key_values):
                        self.hit_counts[position] += count
                        resolved[key_values] = action
                        break
                else:
                    self.miss_count += count
                    resolved[key_values] = default
        return [resolved[key_values] for key_values in key_batch]


def exact(value: int) -> ExactMatch:
    return ExactMatch(value=value)


def lpm(prefix: int, prefix_len: int, width: int = 32) -> LpmMatch:
    return LpmMatch(prefix=prefix, prefix_len=prefix_len, width=width)


def ternary(value: int, mask: int) -> TernaryMatch:
    return TernaryMatch(value=value, mask=mask)


def rng(low: int, high: int) -> RangeMatch:
    return RangeMatch(low=low, high=high)
