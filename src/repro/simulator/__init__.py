"""Discrete-event data plane simulator (the hardware substitution)."""

from repro.simulator.engine import EventLoop
from repro.simulator.meters import Meter, MeterColor, MeterConfig
from repro.simulator.metrics import LatencyStats, RunMetrics
from repro.simulator.network import Link, Network, PacketProcessor
from repro.simulator.packet import FiveTuple, Packet, Verdict, make_packet
from repro.simulator.pipeline_exec import ExecutionResult, ProgramInstance
from repro.simulator.tables import Rule, TableRules, exact, lpm, rng, ternary

__all__ = [
    "EventLoop",
    "ExecutionResult",
    "FiveTuple",
    "LatencyStats",
    "Meter",
    "MeterColor",
    "MeterConfig",
    "Link",
    "Network",
    "Packet",
    "PacketProcessor",
    "ProgramInstance",
    "Rule",
    "RunMetrics",
    "TableRules",
    "Verdict",
    "exact",
    "lpm",
    "make_packet",
    "rng",
    "ternary",
]
