"""The compile-time programmable baseline (§1).

"In compile-time programmable networks, devices that need to be
'repurposed' are first isolated by management operations (e.g.,
draining traffic), reconfigured with a different program, before they
are redeployed to the network again."

:class:`CompileTimeNetwork` mirrors the :class:`~repro.core.FlexNet`
facade but every program change — however small — is a drain + full
reflash + redeploy on each affected device. Packets arriving during the
window are lost and durable state starts cold, which is exactly what
experiments E1/E2 quantify against the runtime path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.incremental import diff_programs
from repro.compiler.placement import NetworkSlice, PlacementEngine
from repro.compiler.plan import CompilationPlan, DeviceSpec
from repro.errors import ControlPlaneError
from repro.lang.analyzer import certify
from repro.lang.delta import Delta, apply_delta
from repro.lang.ir import Program
from repro.runtime.device import DeviceRuntime
from repro.simulator.engine import EventLoop
from repro.simulator.flowgen import TimedPacket
from repro.simulator.metrics import RunMetrics
from repro.simulator.network import Network
from repro.targets import host, rmt_switch, smartnic
from repro.targets.base import Target


@dataclass
class ReflashEvent:
    at: float
    available_again: float
    devices: list[str]

    @property
    def downtime_s(self) -> float:
        return self.available_again - self.at


@dataclass
class CompileTimeNetwork:
    """A FlexNet-shaped facade whose update path is drain-and-reflash."""

    loop: EventLoop = field(default_factory=EventLoop)
    devices: dict[str, DeviceRuntime] = field(default_factory=dict)
    path_names: list[str] = field(default_factory=list)
    engine: PlacementEngine = field(default_factory=PlacementEngine)
    program: Program | None = None
    plan: CompilationPlan | None = None
    reflashes: list[ReflashEvent] = field(default_factory=list)
    network: Network = field(init=False)

    def __post_init__(self):
        self.network = Network(self.loop)

    # -- topology ---------------------------------------------------------------

    def add_device(self, name: str, target: Target) -> None:
        runtime = DeviceRuntime(name, target)
        self.devices[name] = runtime
        self.network.add_node(runtime)
        self.path_names.append(name)

    def finalize_path(self, link_latency_s: float = 2e-6) -> None:
        for a, b in zip(self.path_names, self.path_names[1:]):
            self.network.add_link(a, b, link_latency_s)
        self.network.define_path("datapath", self.path_names)

    @classmethod
    def standard(cls) -> "CompileTimeNetwork":
        """The standard 5-hop slice with a stock (non-runtime) RMT switch."""
        baseline = cls()
        baseline.add_device("h1", host("h1"))
        baseline.add_device("nic1", smartnic("nic1"))
        baseline.add_device("sw1", rmt_switch("sw1", runtime_capable=False))
        baseline.add_device("nic2", smartnic("nic2"))
        baseline.add_device("h2", host("h2"))
        baseline.finalize_path()
        return baseline

    def _slice(self) -> NetworkSlice:
        return NetworkSlice(
            devices=[DeviceSpec(name, self.devices[name].target) for name in self.path_names]
        )

    # -- programming -------------------------------------------------------------

    def install(self, program: Program) -> CompilationPlan:
        program = program.validate()
        certificate = certify(program)
        plan = self.engine.compile(program, certificate, self._slice())
        self.program = program
        self.plan = plan
        for name, device in self.devices.items():
            device.install(program, set(plan.elements_on(name)))
        return plan

    def update(self, delta: Delta) -> ReflashEvent:
        """Any change = reflash every device whose hosted set or program
        text changes. Returns the (scheduled) reflash event."""
        if self.program is None or self.plan is None:
            raise ControlPlaneError("install a program first")
        new_program, changes = apply_delta(self.program, delta)
        certificate = certify(new_program)
        new_plan = self.engine.compile(new_program, certificate, self._slice())
        diff = diff_programs(self.plan.program, new_program)

        affected = sorted(
            set(new_plan.placement.values())
            | {
                device
                for element, device in self.plan.placement.items()
                if element in diff.removed or element in diff.modified
            }
        ) or list(self.plan.devices_used)

        now = self.loop.now
        available = now
        for name in affected:
            device = self.devices[name]
            hosted = set(new_plan.elements_on(name))
            until = device.begin_reflash(new_program, now, hosted)
            available = max(available, until)
        # Unaffected devices still need the new program text (their apply
        # block changed); they swap pointers without downtime only if they
        # host nothing — otherwise they reflash too. For the compile-time
        # baseline we conservatively reflash every hosting device above;
        # non-hosting devices get a cold install.
        for name, device in self.devices.items():
            if name not in affected:
                device.install(new_program, set(new_plan.elements_on(name)))

        event = ReflashEvent(at=now, available_again=available, devices=affected)
        self.reflashes.append(event)
        self.program = new_program
        self.plan = new_plan
        return event

    # -- traffic --------------------------------------------------------------------

    def run_traffic(
        self,
        packets: list[TimedPacket],
        extra_time_s: float = 1.0,
    ) -> RunMetrics:
        metrics = RunMetrics()
        last = self.loop.now
        for timed in packets:
            self.network.inject(timed.packet, "datapath", timed.time, metrics)
            last = max(last, timed.time)
        self.loop.run_until(last + extra_time_s)
        return metrics
