"""The systems the paper positions FlexNet against."""

from repro.baselines.compile_time import CompileTimeNetwork, ReflashEvent
from repro.baselines.hyper4 import EmulationReport, Hyper4Device
from repro.baselines.mantis import ActivationResult, MantisDevice, ProvisionedSlot

__all__ = [
    "ActivationResult",
    "CompileTimeNetwork",
    "EmulationReport",
    "Hyper4Device",
    "MantisDevice",
    "ProvisionedSlot",
    "ReflashEvent",
]
