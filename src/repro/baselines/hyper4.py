"""HyPer4-style baseline: data plane virtualization (§1.1, cites [30]).

"HyPer4 emulates different network programs with a virtualization
layer." A general-purpose interpreter program is compiled once; logical
programs become *table entries* of the interpreter, so arbitrary new
programs deploy at rule-install speed without reflashing. The price is
emulation overhead: every logical primitive costs several physical
match/action stages, and interpreter tables inflate memory.

The published evaluation reports roughly 6-9x more tables/stages and a
corresponding latency/throughput penalty versus native programs; this
model exposes both knobs (``op_overhead``, ``memory_overhead``) with
defaults in that range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.analyzer import Certificate
from repro.targets.base import Target
from repro.targets.resources import ResourceVector

#: Defaults calibrated to the HyPer4 paper's reported overheads.
DEFAULT_OP_OVERHEAD = 7.0
DEFAULT_MEMORY_OVERHEAD = 6.0
#: Installing a logical program = populating interpreter tables.
RULE_INSTALL_S_PER_ELEMENT = 0.01


@dataclass
class EmulationReport:
    program_name: str
    native_ops: int
    emulated_ops: int
    native_memory_kb: float
    emulated_memory_kb: float
    native_latency_ns: float
    emulated_latency_ns: float
    deploy_latency_s: float
    fits: bool

    @property
    def latency_overhead(self) -> float:
        return self.emulated_latency_ns / self.native_latency_ns if self.native_latency_ns else 1.0


class Hyper4Device:
    """A device running the HyPer4-style interpreter."""

    def __init__(
        self,
        target: Target,
        op_overhead: float = DEFAULT_OP_OVERHEAD,
        memory_overhead: float = DEFAULT_MEMORY_OVERHEAD,
    ):
        self.target = target
        self.op_overhead = op_overhead
        self.memory_overhead = memory_overhead
        #: memory permanently consumed by the interpreter scaffolding.
        self.interpreter_overhead = ResourceVector(
            sram_kb=target.capacity["sram_kb"] * 0.15,
            tcam_kb=target.capacity["tcam_kb"] * 0.25,
        )
        self.deployed: dict[str, EmulationReport] = {}

    def _memory_kb(self, certificate: Certificate) -> float:
        total = 0.0
        for profile in certificate.profiles.values():
            if profile.kind in ("table", "map"):
                total += profile.table_entries * (profile.key_bits + 96) / 8.0 / 1024.0
        return total

    def deploy(self, certificate: Certificate) -> EmulationReport:
        """Deploy a logical program onto the interpreter (rule installs,
        no reflash)."""
        native_ops = certificate.max_packet_ops
        emulated_ops = int(native_ops * self.op_overhead)
        native_memory = self._memory_kb(certificate)
        emulated_memory = native_memory * self.memory_overhead

        used = self.interpreter_overhead
        for report in self.deployed.values():
            used = used + ResourceVector(sram_kb=report.emulated_memory_kb)
        fits = (used + ResourceVector(sram_kb=emulated_memory)).fits_within(
            self.target.capacity
        )

        performance = self.target.performance
        element_count = len(certificate.profiles)
        report = EmulationReport(
            program_name=certificate.program_name,
            native_ops=native_ops,
            emulated_ops=emulated_ops,
            native_memory_kb=native_memory,
            emulated_memory_kb=emulated_memory,
            native_latency_ns=performance.packet_latency_ns(native_ops),
            emulated_latency_ns=performance.packet_latency_ns(emulated_ops),
            deploy_latency_s=element_count * RULE_INSTALL_S_PER_ELEMENT,
            fits=fits,
        )
        if fits:
            self.deployed[certificate.program_name] = report
        return report

    def remove(self, program_name: str) -> None:
        self.deployed.pop(program_name, None)

    @property
    def effective_throughput_mpps(self) -> float:
        """Line rate divided by the emulation slowdown of the heaviest
        deployed program."""
        if not self.deployed:
            return self.target.performance.throughput_mpps
        worst = max(r.latency_overhead for r in self.deployed.values())
        return self.target.performance.throughput_mpps / worst
