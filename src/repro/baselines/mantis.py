"""Mantis-style baseline: pre-baked reactions (§1.1, cites [70]).

"Mantis hardcodes all runtime response logic at compile time, and
invokes different responses at runtime by modifying control registers."

The model: the operator provisions ``slots`` response functions at
compile time. Each slot permanently occupies device resources whether
active or not. At runtime, activating a *provisioned* behaviour is a
register write — microseconds, far faster even than FlexNet's
sub-second reconfiguration. But a behaviour that was **not**
anticipated at compile time simply cannot be deployed; the device must
fall back to a full reflash (or the need goes unmet). Experiment E4
sweeps the number of distinct behaviours demanded at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReconfigError
from repro.targets.base import Target
from repro.targets.resources import ResourceVector

#: A register write through the control channel.
ACTIVATION_LATENCY_S = 50e-6


@dataclass(frozen=True)
class ProvisionedSlot:
    """One compile-time-provisioned response behaviour."""

    name: str
    #: resources this slot pins even while inactive.
    footprint: ResourceVector


@dataclass
class ActivationResult:
    behaviour: str
    satisfied: bool
    latency_s: float
    #: True when satisfaction required a full reflash (unanticipated need).
    required_reflash: bool = False


@dataclass
class MantisDevice:
    """A device whose dynamism is limited to pre-provisioned slots."""

    target: Target
    slots: list[ProvisionedSlot] = field(default_factory=list)
    active: set[str] = field(default_factory=set)
    activations: list[ActivationResult] = field(default_factory=list)

    def provision(self, slot: ProvisionedSlot) -> None:
        """Compile-time: reserve resources for one anticipated behaviour."""
        committed = self.pinned_resources() + slot.footprint
        if not committed.fits_within(self.target.capacity):
            raise ReconfigError(
                f"cannot provision slot {slot.name!r}: device capacity exhausted "
                f"(deficit {committed.deficit_against(self.target.capacity)})"
            )
        self.slots.append(slot)

    def pinned_resources(self) -> ResourceVector:
        total = ResourceVector()
        for slot in self.slots:
            total = total + slot.footprint
        return total

    @property
    def provisioned_names(self) -> set[str]:
        return {slot.name for slot in self.slots}

    def activate(self, behaviour: str) -> ActivationResult:
        """Runtime: flip a control register — if the behaviour exists."""
        if behaviour in self.provisioned_names:
            self.active.add(behaviour)
            result = ActivationResult(
                behaviour=behaviour, satisfied=True, latency_s=ACTIVATION_LATENCY_S
            )
        else:
            # Unanticipated: only a full reflash cycle can add it.
            model = self.target.reconfig
            result = ActivationResult(
                behaviour=behaviour,
                satisfied=False,
                latency_s=model.drain_s + model.full_reflash_s + model.redeploy_s,
                required_reflash=True,
            )
        self.activations.append(result)
        return result

    def deactivate(self, behaviour: str) -> None:
        self.active.discard(behaviour)
        # Note: resources are NOT released — the slot stays compiled in.

    @property
    def wasted_resources(self) -> ResourceVector:
        """Resources pinned by currently-inactive slots — the static
        overprovisioning cost FlexNet's remove-on-departure avoids."""
        total = ResourceVector()
        for slot in self.slots:
            if slot.name not in self.active:
                total = total + slot.footprint
        return total
