"""Resilient state replication across devices (§3.4).

"To detect and tolerate device failures, the FlexNet controller
replicates important network state in a logical datapath across
multiple physical devices. State consistency is ensured via state
replication and update protocols" (SwiShmem-style [71]).

The model: one *primary* map and N replicas on other devices. Two
replication modes:

* ``periodic`` — the controller (or a data plane mirror rule) ships a
  snapshot of dirty entries every ``interval_s``; replicas lag by at
  most one interval (staleness is measurable).
* ``write_through`` — every primary write is forwarded in-band via
  dRPC; replicas stay entry-for-entry consistent at the cost of one
  dRPC per mutation.

On primary failure the manager promotes the freshest replica and
reports how many updates were lost to the failure window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ControlPlaneError
from repro.lang.maps import MapState
from repro.simulator.engine import EventLoop


@dataclass
class ReplicaStatus:
    device: str
    synced_mutation_count: int = 0
    last_sync_at: float = 0.0


@dataclass
class ReplicationGroup:
    map_name: str
    primary_device: str
    primary: MapState
    replicas: dict[str, MapState] = field(default_factory=dict)
    status: dict[str, ReplicaStatus] = field(default_factory=dict)
    mode: str = "periodic"
    interval_s: float = 0.1
    syncs: int = 0
    failed_over: bool = False

    def staleness(self) -> dict[str, int]:
        """Mutations each replica is behind the primary."""
        return {
            device: self.primary.mutation_count - status.synced_mutation_count
            for device, status in self.status.items()
        }


class ReplicationManager:
    """Creates and drives replication groups inside the event loop."""

    def __init__(self, loop: EventLoop):
        self._loop = loop
        self._groups: dict[str, ReplicationGroup] = {}

    def group(self, map_name: str) -> ReplicationGroup:
        if map_name not in self._groups:
            raise ControlPlaneError(f"no replication group for map {map_name!r}")
        return self._groups[map_name]

    def replicate(
        self,
        map_name: str,
        primary_device: str,
        primary: MapState,
        replicas: dict[str, MapState],
        mode: str = "periodic",
        interval_s: float = 0.1,
    ) -> ReplicationGroup:
        if map_name in self._groups:
            raise ControlPlaneError(f"map {map_name!r} already replicated")
        if mode not in ("periodic", "write_through"):
            raise ControlPlaneError(f"unknown replication mode {mode!r}")
        group = ReplicationGroup(
            map_name=map_name,
            primary_device=primary_device,
            primary=primary,
            replicas=dict(replicas),
            status={device: ReplicaStatus(device=device) for device in replicas},
            mode=mode,
            interval_s=interval_s,
        )
        self._groups[map_name] = group
        if mode == "periodic":
            self._loop.schedule(interval_s, self._periodic_sync(group))
        return group

    def write(self, map_name: str, key: tuple[int, ...], value: int) -> None:
        """A primary write through the replication layer."""
        group = self.group(map_name)
        group.primary.put(key, value)
        if group.mode == "write_through":
            for device, replica in group.replicas.items():
                replica.put(key, value)
                group.status[device].synced_mutation_count = group.primary.mutation_count
                group.status[device].last_sync_at = self._loop.now
            group.syncs += 1

    def _periodic_sync(self, group: ReplicationGroup):
        def sync() -> None:
            if group.failed_over or group.map_name not in self._groups:
                return
            snapshot = group.primary.snapshot()
            for device, replica in group.replicas.items():
                replica.restore(snapshot)
                group.status[device].synced_mutation_count = group.primary.mutation_count
                group.status[device].last_sync_at = self._loop.now
            group.syncs += 1
            self._loop.schedule(group.interval_s, self._periodic_sync(group))

        return sync

    def fail_over(self, map_name: str) -> tuple[str, MapState, int]:
        """Primary died: promote the freshest replica.

        Returns ``(new_primary_device, its state, mutations lost)`` —
        the loss is the primary mutations the chosen replica had not yet
        synced when the failure hit.
        """
        group = self.group(map_name)
        if not group.replicas:
            raise ControlPlaneError(f"map {map_name!r} has no replicas to promote")
        # Tie-break equally fresh replicas by device name so promotion
        # is deterministic regardless of replica-dict insertion order.
        freshest = min(
            group.status.values(),
            key=lambda s: (-s.synced_mutation_count, s.device),
        )
        lost = group.primary.mutation_count - freshest.synced_mutation_count
        group.failed_over = True
        new_primary = group.replicas[freshest.device]
        return freshest.device, new_primary, max(lost, 0)
