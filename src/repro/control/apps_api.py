"""App-level management abstractions (§3.4, "Control plane abstractions").

"The controller is able to 'name' in-network apps by their URIs
(instead of, say, IP addresses), and perform management operations
using the URI as a handle." This module defines those first-class
objects: :class:`AppUri`, :class:`AppRecord` (an app's elements,
owner, SLA and current footprint), and :class:`AppSla`. The
translation of app-level operations into element-level P4Runtime calls
and compiler invocations lives in
:class:`repro.control.controller.FlexNetController`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownAppError


@dataclass(frozen=True)
class AppUri:
    """``flexnet://<owner>/<app-name>``"""

    owner: str
    name: str

    SCHEME = "flexnet"

    def __str__(self) -> str:
        return f"{self.SCHEME}://{self.owner}/{self.name}"

    @classmethod
    def parse(cls, text: str) -> "AppUri":
        prefix = f"{cls.SCHEME}://"
        if not text.startswith(prefix):
            raise UnknownAppError(f"malformed app URI {text!r} (expected {prefix}...)")
        remainder = text[len(prefix) :]
        owner, separator, name = remainder.partition("/")
        if not separator or not owner or not name:
            raise UnknownAppError(f"malformed app URI {text!r} (expected owner/name)")
        return cls(owner=owner, name=name)


@dataclass(frozen=True)
class AppSla:
    """Negotiated service expectations for one app."""

    max_latency_ns: float | None = None
    min_table_entries: int | None = None
    #: apps marked removable are fair game for the compiler's GC loop.
    removable: bool = False


@dataclass
class AppRecord:
    """The controller's bookkeeping for one deployed app."""

    uri: AppUri
    #: element names this app contributed to the composed program.
    elements: set[str]
    sla: AppSla = field(default_factory=AppSla)
    #: device -> elements currently hosted there (from the active plan).
    footprint: dict[str, list[str]] = field(default_factory=dict)
    deployed_at: float = 0.0
    #: incremented on every scale/migrate/update touching this app.
    generation: int = 1

    @property
    def devices(self) -> list[str]:
        return sorted(self.footprint)

    def refresh_footprint(self, placement: dict[str, str]) -> None:
        self.footprint = {}
        for element in sorted(self.elements):
            device = placement.get(element)
            if device is not None:
                self.footprint.setdefault(device, []).append(element)
