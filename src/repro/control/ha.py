"""FlexHA: controller fail-over, fenced reconfiguration, device resync.

The paper's §3.4 observes that "logically centralized controllers are
realized in physically distributed nodes, which brings classic
distributed systems concerns on consensus and availability". FlexFault
hardened the *device* side of the fault model; this module closes the
controller side:

* **Replicated state machine** — the live controller runs over the
  Raft cluster of :mod:`repro.control.consensus`. Every accepted
  update delta is proposed as an :class:`HACommand`, committed to the
  Raft log *before* any device reconfiguration window opens, and
  executed by the apply callback on whichever node currently leads.
  Raft snapshots compact the log and catch lagging replicas up fast.

* **Fencing epochs** — every P4Runtime/dRPC mutation and every
  orchestrated window start carries the proposing leader's term as a
  fencing epoch. Devices ratchet a per-device watermark
  (:meth:`~repro.runtime.device.DeviceRuntime.admit_epoch`) and reject
  anything older, so a deposed leader still writing from the wrong
  side of a partition can never corrupt device state. Each
  self-believed leader renews its lease every heartbeat, which is
  exactly how a deposed leader's writes surface as rejections.

* **Resync sweep** — a newly elected leader proposes a no-op barrier
  (committing every prior-term entry, per Raft §5.4.2); when the
  barrier applies, the leader reads back each device's ground truth
  (:meth:`~repro.control.p4runtime.P4RuntimeClient.read_ground_truth`),
  diffs it against the committed log's intent, resolves stranded
  devices, re-drives devices whose windows the dead leader never
  opened, and stamps its epoch everywhere. Commands are idempotent via
  journaled delta ids, so re-driving a half-applied window is safe.

The whole layer is deterministic in simulated time: same seed, same
fault plan, byte-identical :meth:`FlexHA.status`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ChannelError, ConsensusError, ControlPlaneError, FlexNetError
from repro.lang.delta import Delta, apply_delta
from repro.limits import HEARTBEAT_INTERVAL_S
from repro.runtime.consistency import ConsistencyLevel
from repro.runtime.reconfig import DEFAULT_REFRESH_S

from repro.control.consensus import ControllerCluster, RaftNode, Role

__all__ = ["FlexHA", "HACommand", "FailoverRecord"]


@dataclass(frozen=True)
class HACommand:
    """One replicated controller command in the Raft log.

    ``kind="update"`` carries a delta to execute; ``kind="noop"`` is a
    new leader's barrier entry (its application triggers the resync
    sweep); ``kind="cloud"`` carries a FlexCloud coalesced tenant batch
    (``payload`` describes the folded deltas — the admission engine
    registered via :attr:`FlexHA.cloud_apply` executes it). ``delta_id``
    makes execution idempotent: a command re-driven by a successor
    leader is recognized and skipped.
    """

    delta_id: int
    kind: str = "update"
    delta: Delta | None = None
    consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PATH
    payload: object = None


@dataclass
class FailoverRecord:
    """One observed leadership hand-off."""

    term: int
    leader: str
    at_s: float
    #: leadership-lost -> first resync complete (None until measured).
    downtime_s: float | None = None

    def to_dict(self) -> dict:
        return {
            "term": self.term,
            "leader": self.leader,
            "at_s": round(self.at_s, 6),
            "downtime_s": None if self.downtime_s is None else round(self.downtime_s, 6),
        }


class FlexHA:
    """Controller high availability over the existing Raft module.

    Attach to a live :class:`~repro.control.controller.FlexNetController`;
    route updates through :meth:`submit_update` instead of calling
    ``transition_to`` directly, and the update is linearized by Raft,
    executed by the current leader with fencing, and survives leader
    crashes and partitions (chaos scenario E19).
    """

    def __init__(
        self,
        controller,
        node_count: int = 3,
        seed: int = 0,
        snapshot_threshold: int | None = 8,
        fencing: bool = True,
        latency_s: float = 0.005,
    ):
        self.controller = controller
        self.fencing = fencing
        self.cluster = ControllerCluster(
            controller.loop,
            node_count=node_count,
            seed=seed,
            apply_factory=self._apply_factory,
            snapshot_threshold=snapshot_threshold,
            latency_s=latency_s,
        )
        self._delta_ids = itertools.count(1)
        #: delta ids already executed against the network — the
        #: idempotence guard that lets a successor leader re-apply the
        #: committed log without double-driving transitions.
        self._executed: set[int] = set()
        self._leader_key: tuple[str, int] | None = None
        self._had_leader = False
        self._leader_lost_at: float | None = None

        #: FlexCloud hook (set by CloudEngine.attach_ha): executes a
        #: committed ``kind="cloud"`` batch on the current leader.
        self.cloud_apply = None
        self.cloud_submitted = 0
        self.cloud_executed = 0

        self.failovers: list[FailoverRecord] = []
        self.submitted = 0
        self.executed_updates = 0
        self.update_errors: list[str] = []
        self.resyncs = 0
        self.resync_reads = 0
        self.resync_read_failures = 0
        self.resync_skipped = 0
        self.devices_redriven = 0
        self.stranded_resolved = 0
        self.health_resyncs = 0
        #: fencing at work: a deposed leader's lease renewals / writes
        #: rejected by device watermarks...
        self.epoch_rejections = 0
        #: ...or, with ``fencing=False``, silently applied (the baseline
        #: corruption count E19 contrasts against).
        self.stale_writes_applied = 0
        self.max_term = 0

        controller.ha = self
        self._tick()

    # -- replicated state machine ------------------------------------------------

    def _apply_factory(self, node_id: str):
        def apply(command: object) -> None:
            self._on_apply(node_id, command)

        return apply

    def submit_update(
        self,
        delta: Delta,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PATH,
    ) -> int | None:
        """Propose an update through the current Raft leader.

        Returns the assigned delta id, or None when no leader is
        reachable (retry after an election settles). The transition's
        device windows open only once the command commits and the
        leader's apply callback executes it.
        """
        leader = self.cluster.leader()
        if leader is None:
            return None
        delta_id = next(self._delta_ids)
        command = HACommand(delta_id=delta_id, delta=delta, consistency=consistency)
        try:
            leader.propose(command)
        except ConsensusError:
            return None
        self.submitted += 1
        return delta_id

    def submit_cloud(
        self,
        payload: object,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
    ) -> "HACommand | None":
        """Propose one FlexCloud coalesced batch through the current
        leader. Returns the proposed command (carrying its delta id), or
        None when no leader is reachable — the admission engine keeps
        the batch queued and retries next round, which is exactly the
        leader-gated drain the queue's durability rests on."""
        leader = self.cluster.leader()
        if leader is None:
            return None
        command = HACommand(
            delta_id=next(self._delta_ids),
            kind="cloud",
            consistency=consistency,
            payload=payload,
        )
        try:
            leader.propose(command)
        except ConsensusError:
            return None
        self.cloud_submitted += 1
        return command

    def repropose(self, command: "HACommand") -> bool:
        """Re-propose a command whose original proposal may have died
        with its leader (same delta id — the executed guard makes a
        double commit a no-op)."""
        leader = self.cluster.leader()
        if leader is None:
            return False
        try:
            leader.propose(command)
        except ConsensusError:
            return False
        return True

    def was_executed(self, delta_id: int) -> bool:
        return delta_id in self._executed

    def _on_apply(self, node_id: str, command: object) -> None:
        if not isinstance(command, HACommand):
            return
        node = self.cluster.nodes[node_id]
        # Commands execute against the (single, shared) network only on
        # the node that currently leads; followers apply to their state
        # machines silently and stand ready to take over.
        if node.role is not Role.LEADER:
            return
        if command.kind == "noop":
            self._resync(node)
            return
        if command.kind == "cloud":
            if command.delta_id in self._executed or self.cloud_apply is None:
                return
            self._executed.add(command.delta_id)
            term = node.current_term
            try:
                self.cloud_apply(
                    command,
                    epoch=term if self.fencing else None,
                    dispatch_gate=self._dispatch_gate(node_id, term),
                )
                self.cloud_executed += 1
            except FlexNetError as exc:
                self.update_errors.append(f"{type(exc).__name__}: {exc}")
            return
        if command.delta_id in self._executed or command.delta is None:
            return
        self._executed.add(command.delta_id)
        term = node.current_term
        controller = self.controller
        try:
            new_program, changes = apply_delta(controller.program, command.delta)
            controller.transition_to(
                new_program,
                changes,
                command.consistency,
                epoch=term if self.fencing else None,
                dispatch_gate=self._dispatch_gate(node_id, term),
                delta_id=command.delta_id,
            )
            self.executed_updates += 1
        except FlexNetError as exc:
            self.update_errors.append(f"{type(exc).__name__}: {exc}")

    def _dispatch_gate(self, node_id: str, term: int):
        """True while the proposing leader is still alive *and* still
        the leader of the same term — the condition under which its
        scheduled window starts may dispatch. Anything else (crashed,
        deposed, new term) suppresses the start; the successor's resync
        re-drives the affected devices from the committed log."""

        def alive() -> bool:
            node = self.cluster.nodes[node_id]
            return (
                self.cluster.bus.reachable(node_id, node_id)
                and node.role is Role.LEADER
                and node.current_term == term
            )

        return alive

    # -- fail-over detection + fencing leases -------------------------------------

    def _tick(self) -> None:
        self.controller.loop.schedule(HEARTBEAT_INTERVAL_S, self._on_tick)

    def _on_tick(self) -> None:
        now = self.controller.loop.now
        leader = self.cluster.leader()
        if leader is None:
            if self._had_leader and self._leader_lost_at is None:
                self._leader_lost_at = now
                observer = self.controller.observer
                if observer is not None:
                    observer.tracer.event("ha_leader_lost", now)
        else:
            key = (leader.node_id, leader.current_term)
            if key != self._leader_key:
                self._on_new_leader(leader, now)
        self._renew_leases()
        self._tick()

    def _on_new_leader(self, leader: RaftNode, now: float) -> None:
        previous = self._leader_key
        self._leader_key = (leader.node_id, leader.current_term)
        self._had_leader = True
        self.max_term = max(self.max_term, leader.current_term)
        self.controller.hub.set_epoch(leader.current_term if self.fencing else None)
        if previous is not None:
            # A hand-off (not the bootstrap election). If the old leader
            # was deposed without an observed no-leader gap (partition),
            # downtime starts at the moment the new leader surfaces.
            if self._leader_lost_at is None:
                self._leader_lost_at = now
            self.failovers.append(
                FailoverRecord(term=leader.current_term, leader=leader.node_id, at_s=now)
            )
        observer = self.controller.observer
        if observer is not None:
            observer.tracer.event(
                "ha_leader_elected",
                now,
                leader=leader.node_id,
                term=leader.current_term,
                failover=previous is not None,
            )
            observer.metrics.counter(
                "flexnet_ha_failovers_total", help="controller leadership hand-offs"
            ).inc(0 if previous is None else 1)
        # No-op barrier (Raft §5.4.2): committing it commits every
        # prior-term entry, so the apply callback drains any update the
        # dead leader accepted but never executed — and its own
        # application is the signal that the log is drained, which is
        # when the resync sweep runs.
        try:
            leader.propose(HACommand(delta_id=-leader.current_term, kind="noop"))
        except ConsensusError:
            pass

    def _renew_leases(self) -> None:
        """Every node that *believes* it leads renews its fencing lease
        on every device each heartbeat. For the true leader this
        ratchets watermarks forward; for a deposed leader on the wrong
        side of a partition it surfaces the split: with fencing the
        renewals bounce off the watermark, without fencing they land —
        counted as stale writes applied (the corruption fencing buys
        out of)."""
        for node in self.cluster.nodes.values():
            if node.role is not Role.LEADER:
                continue
            if not self.cluster.bus.reachable(node.node_id, node.node_id):
                continue
            term = node.current_term
            for device in self.controller.devices.values():
                if device.crashed:
                    continue
                if self.fencing:
                    if not device.admit_epoch(term):
                        self.epoch_rejections += 1
                elif term < self.max_term:
                    self.stale_writes_applied += 1

    # -- resync sweep ----------------------------------------------------------------

    def _resync(self, node: RaftNode) -> None:
        controller = self.controller
        now = controller.loop.now
        term = node.current_term
        observer = controller.observer
        span = None
        if observer is not None:
            span = observer.tracer.start_span(
                "ha_resync", "resync", now, leader=node.node_id, term=term
            )
        redriven: list[str] = []
        resolved: list[str] = []
        for name in sorted(controller.devices):
            action = self._resync_one(name, term)
            if action == "redriven":
                redriven.append(name)
            elif action == "resolved":
                resolved.append(name)
        self.resyncs += 1
        self.devices_redriven += len(redriven)
        self.stranded_resolved += len(resolved)
        end = controller.loop.now
        if self._leader_lost_at is not None:
            downtime = end - self._leader_lost_at
            self._leader_lost_at = None
            for record in reversed(self.failovers):
                if record.downtime_s is None:
                    record.downtime_s = downtime
                    break
        if observer is not None:
            observer.tracer.end_span(
                span,
                end,
                redriven=len(redriven),
                resolved=len(resolved),
            )
            observer.metrics.counter(
                "flexnet_ha_resyncs_total", help="leader resync sweeps"
            ).inc()

    def _resync_one(self, name: str, term: int) -> str | None:
        """Resync one device against the committed intent; returns the
        action taken ("redriven", "resolved", None)."""
        controller = self.controller
        device = controller.devices[name]
        if device.crashed:
            # Unreachable: the recovery manager (or the health monitor's
            # release hook) brings it back through resync later.
            self.resync_skipped += 1
            return None
        try:
            truth = controller.hub.client(name).read_ground_truth()
        except (ChannelError, ControlPlaneError):
            self.resync_read_failures += 1
            return None
        self.resync_reads += 1
        action: str | None = None
        if truth.stranded:
            # Crash-frozen mid-delta: roll forward to the committed
            # intent (the journal's resume semantics).
            device.resolve_interrupted(to_new=True)
            action = "resolved"
        intended = controller._program  # noqa: SLF001 - resync reads controller intent
        # Only devices hosting elements of the current plan must serve
        # the intended version; pass-through devices legitimately keep
        # whatever was installed (they do not stamp packet versions).
        hosting = (
            set(controller.plan.placement.values())
            if controller._plan is not None  # noqa: SLF001
            else set()
        )
        if (
            intended is not None
            and name in hosting
            and not device.in_transition
            # A window already open or scheduled (e.g. by this same
            # apply batch, when the new leader just executed the pending
            # update) will bring the device forward on its own.
            and controller.orchestrator.reserved_until(name) <= controller.loop.now
        ):
            version = (
                device.active_program.version if device.active_program else None
            )
            if version is not None and version < intended.version:
                action = self._redrive(device, intended, version) or action
        if self.fencing:
            # Stamp the new epoch even on in-sync devices: from here on
            # any write the deposed leader still has in flight bounces.
            device.admit_epoch(term)
        return action

    def _redrive(self, device, intended, from_version: int) -> str | None:
        """Open the window the dead leader never dispatched."""
        controller = self.controller
        loop = controller.loop
        now = loop.now
        hosted = set(controller.plan.elements_on(device.name))
        try:
            device.begin_hitless_update(
                intended, now=now, duration_s=DEFAULT_REFRESH_S, hosted_elements=hosted
            )
        except FlexNetError as exc:
            self.update_errors.append(f"{type(exc).__name__}: {exc}")
            return None
        controller.orchestrator.reserve(device.name, now + DEFAULT_REFRESH_S)
        journal = controller.journal
        if journal is not None:
            entry = journal.begin(
                device.name,
                from_version,
                intended.version,
                started_at=now,
                window_end=now + DEFAULT_REFRESH_S,
            )

            def commit() -> None:
                if device.crashed or device.stranded:
                    return
                device.settle(loop.now)
                journal.commit(entry, loop.now, resolution="resync")

            loop.schedule(DEFAULT_REFRESH_S, commit)
        else:
            loop.schedule(DEFAULT_REFRESH_S, lambda: device.settle(loop.now))
        return "redriven"

    def resync_device(self, name: str) -> bool:
        """Targeted resync of one device (the health monitor calls this
        when a quarantined device recovers: it may have missed whole
        windows while unreachable). Returns True if a leader ran the
        sweep."""
        leader = self.cluster.leader()
        if leader is None or name not in self.controller.devices:
            return False
        self.health_resyncs += 1
        self._resync_one(name, leader.current_term)
        observer = self.controller.observer
        if observer is not None:
            observer.tracer.event(
                "ha_health_resync", self.controller.loop.now, device=name
            )
        return True

    # -- introspection -----------------------------------------------------------------

    @property
    def leader_id(self) -> str | None:
        leader = self.cluster.leader()
        return leader.node_id if leader is not None else None

    @property
    def epoch(self) -> int | None:
        """The fencing epoch currently stamped on mutations."""
        return self.controller.hub.epoch

    def handoff_downtimes_s(self) -> list[float]:
        return [
            record.downtime_s
            for record in self.failovers
            if record.downtime_s is not None
        ]

    def status(self) -> dict:
        """Deterministic snapshot (same seed + scenario => identical)."""
        return {
            "leader": self.leader_id,
            "epoch": self.epoch,
            "fencing": self.fencing,
            "nodes": {
                node_id: {
                    "role": node.role.value,
                    "term": node.current_term,
                    "last_log_index": node.last_log_index,
                    "commit_index": node.commit_index,
                    "applied": node.last_applied,
                    "log_offset": node.log_offset,
                    "snapshots_taken": node.snapshots_taken,
                    "snapshots_installed": node.snapshots_installed,
                }
                for node_id, node in sorted(self.cluster.nodes.items())
            },
            "submitted": self.submitted,
            "executed_updates": self.executed_updates,
            "cloud_submitted": self.cloud_submitted,
            "cloud_executed": self.cloud_executed,
            "update_errors": list(self.update_errors),
            "failovers": [record.to_dict() for record in self.failovers],
            "resyncs": self.resyncs,
            "resync_reads": self.resync_reads,
            "resync_read_failures": self.resync_read_failures,
            "resync_skipped": self.resync_skipped,
            "devices_redriven": self.devices_redriven,
            "stranded_resolved": self.stranded_resolved,
            "health_resyncs": self.health_resyncs,
            "epoch_rejections": self.epoch_rejections,
            "stale_writes_applied": self.stale_writes_applied,
            "device_stale_rejections": {
                name: device.stats.stale_rejections
                for name, device in sorted(self.controller.devices.items())
            },
        }

    def summary(self) -> str:
        status = self.status()
        lines = [
            f"ha: leader={status['leader'] or 'none'} epoch={status['epoch']} "
            f"fencing={'on' if self.fencing else 'off'}",
            f"  nodes: "
            + ", ".join(
                f"{node_id}[{info['role']} t{info['term']}]"
                for node_id, info in status["nodes"].items()
            ),
            f"  log: commit={max(i['commit_index'] for i in status['nodes'].values())}, "
            f"snapshots taken={sum(i['snapshots_taken'] for i in status['nodes'].values())}, "
            f"installed={sum(i['snapshots_installed'] for i in status['nodes'].values())}",
            f"  updates: {self.submitted} submitted, {self.executed_updates} executed"
            + (f", {len(self.update_errors)} error(s)" if self.update_errors else ""),
            f"  failovers: {len(self.failovers)}"
            + (
                " ("
                + ", ".join(
                    f"t{r.term}->{r.leader}"
                    + (f" {r.downtime_s * 1000:.0f}ms" if r.downtime_s is not None else "")
                    for r in self.failovers
                )
                + ")"
                if self.failovers
                else ""
            ),
            f"  resync: {self.resyncs} sweep(s), {self.devices_redriven} re-driven, "
            f"{self.stranded_resolved} stranded resolved, "
            f"{self.health_resyncs} health-triggered",
            f"  fencing: {self.epoch_rejections} stale rejection(s), "
            f"{self.stale_writes_applied} stale write(s) applied",
        ]
        return "\n".join(lines)
