"""Consistent-update scheduling (§3.4, "Fault tolerance and consistency").

Functional updates to a logical datapath need "application-level,
consistent packet processing, which goes beyond controlling the order
of rule updates". The scheduler decides *when* each device on a path
starts its transition window so a requested consistency level holds:

* ``PER_PACKET_PER_DEVICE`` — no coordination needed: every runtime
  programmable device guarantees old-XOR-new natively. All devices
  start together (minimal makespan).
* ``PER_PACKET_PATH`` — epoch stamping (two-phase): every updated
  device holds both versions for the whole transition; the first
  updated device a packet meets decides old-vs-new and stamps the
  packet, and downstream devices honour the stamp. The scheduler's job
  is to make the stamp always honourable: all windows start together
  and downstream windows are stretched by a per-hop guard so in-flight
  packets never outlive the version they were stamped with.
* ``PER_FLOW`` — path scheduling plus a flow-affine decision: the
  ingress draw is keyed by the packet's five-tuple instead of its id,
  so every packet of a flow cuts over at the same instant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.consistency import ConsistencyLevel


@dataclass(frozen=True)
class UpdateSchedule:
    """Per-device start offsets (seconds from transition begin) plus the
    per-device window durations the plan charges."""

    stagger: dict[str, float]
    window_s: dict[str, float]

    @property
    def makespan_s(self) -> float:
        return max(
            (self.stagger[d] + self.window_s.get(d, 0.0) for d in self.stagger),
            default=0.0,
        )


def plan_schedule(
    level: ConsistencyLevel,
    path_order: list[str],
    window_s: dict[str, float],
    guard_s: float = 0.001,
) -> UpdateSchedule:
    """Compute start offsets for the devices being updated.

    ``path_order`` lists the updated devices in *traffic* order
    (upstream first); ``window_s`` gives each device's transition
    window length. ``guard_s`` is slack added between sequenced windows
    to cover in-flight packets (propagation + queueing headroom).
    """
    if level is ConsistencyLevel.PER_PACKET_PER_DEVICE:
        return UpdateSchedule(stagger={d: 0.0 for d in path_order}, window_s=dict(window_s))

    # Path/flow consistency via epoch stamping: every updated device holds
    # both versions for the whole transition; the *first* updated device a
    # packet meets makes the old/new decision and stamps it, downstream
    # devices honour the stamp. For the stamp to always be honourable,
    # each downstream device's window must outlast the upstream decision
    # window by at least the in-flight transit time — so all windows start
    # together and are stretched by ``guard_s`` per hop of depth.
    first = path_order[0] if path_order else None
    base = window_s.get(first, 0.0) if first is not None else 0.0
    stretched: dict[str, float] = {}
    for position, device in enumerate(path_order):
        own = window_s.get(device, 0.0)
        stretched[device] = max(own, base + position * guard_s)
    return UpdateSchedule(stagger={d: 0.0 for d in path_order}, window_s=stretched)


def plan_admission_round(
    depths: dict[str, int],
    budget: int,
    weights: dict[str, int],
) -> dict[str, int]:
    """Split one FlexCloud admission round's ticket ``budget`` across
    SLA classes (weighted fair shares over the classes with queued
    tickets).

    ``depths`` maps class name -> queued ticket count; ``weights`` maps
    class name -> drain weight. Every non-empty class is guaranteed at
    least one ticket when the budget allows (anti-starvation), classes
    never receive more than their depth, and leftover budget is
    redistributed to still-backlogged classes in weight order. The
    result is fully determined by the inputs — class names are processed
    in sorted order so two controllers (or two drain arms of a
    differential test) always cut the same shares.
    """
    if budget < 0:
        raise ValueError(f"admission budget must be >= 0, got {budget}")
    active = sorted(name for name, depth in depths.items() if depth > 0)
    shares: dict[str, int] = {name: 0 for name in active}
    if not active or budget == 0:
        return shares
    # Anti-starvation floor first: one ticket per non-empty class, in
    # descending weight order (ties broken by name) while budget lasts.
    by_priority = sorted(active, key=lambda name: (-weights.get(name, 1), name))
    remaining = budget
    for name in by_priority:
        if remaining == 0:
            return shares
        shares[name] = 1
        remaining -= 1
    # Weighted shares over what's left, capped at each class's depth;
    # leftovers (rounding + caps) sweep to backlogged classes by weight.
    total_weight = sum(weights.get(name, 1) for name in active)
    for name in by_priority:
        want = depths[name] - shares[name]
        share = min(want, remaining * weights.get(name, 1) // total_weight)
        shares[name] += share
        remaining -= share
    for name in by_priority:
        if remaining == 0:
            break
        give = min(depths[name] - shares[name], remaining)
        shares[name] += give
        remaining -= give
    return shares
