"""The FlexNet controller: real-time piloting of the network (§3.4).

One logically centralized controller object owns:

* the global :class:`~repro.control.topology.TopologyView` and the
  live :class:`~repro.runtime.device.DeviceRuntime` fleet;
* the composed network program (infrastructure base + admitted tenant
  extensions) and its active :class:`CompilationPlan`;
* the app registry — every deployed app is named by URI and managed
  through app-level operations (deploy / remove / scale / migrate) that
  the controller translates into deltas, incremental compilations, and
  orchestrated hitless transitions;
* the element-level P4Runtime bindings, the dRPC fabric, telemetry, and
  the replication manager.

The compiler's GC hook is implemented here: when placement fails, the
controller retires apps whose SLA marks them removable, frees their
resources, and lets the compiler try again (§3.3's iterative loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import check_changeset
from repro.analysis.report import Finding
from repro.compiler.incremental import IncrementalCompiler, IncrementalResult, diff_programs
from repro.compiler.placement import NetworkSlice, Objective, PlacementEngine
from repro.compiler.plan import CompilationPlan
from repro.errors import ControlPlaneError, FlexNetError, UnknownAppError
from repro.lang.analyzer import Certificate, certify
from repro.lang.composition import Composer, TenantSpec
from repro.lang.delta import (
    ChangeSet,
    Delta,
    RemoveElements,
    SetMapEntries,
    SetTableSize,
    apply_delta,
)
from repro.lang.ir import Program
from repro.runtime.consistency import ConsistencyLevel
from repro.runtime.device import DeviceRuntime
from repro.runtime.drpc import DrpcFabric, RpcRegistry
from repro.runtime.reconfig import ReconfigOrchestrator, TransitionReport
from repro.simulator.engine import EventLoop
from repro.simulator.network import Network
from repro.targets.base import Target

from repro.control.apps_api import AppRecord, AppSla, AppUri
from repro.control.p4runtime import P4RuntimeHub
from repro.control.replication import ReplicationManager
from repro.control.scheduler import plan_schedule
from repro.control.telemetry import TelemetryCollector
from repro.control.topology import TopologyView


@dataclass
class TransitionOutcome:
    """What one runtime change produced.

    Implements the FlexScope :class:`~repro.observe.report.Reportable`
    protocol; when observability is enabled the outcome also carries the
    ids of the trace spans covering this change, so a caller can jump
    from the outcome straight to its span subtree
    (``net.observe.tracer.find(outcome.span_id)``).
    """

    result: IncrementalResult
    report: TransitionReport
    compile_iterations: int = 1
    gc_evicted: list[str] = field(default_factory=list)
    #: FlexCheck race-pass findings for this transition (post-escalation).
    race_findings: tuple[Finding, ...] = ()
    #: True when the race pass found hazards under the requested
    #: consistency and the controller escalated the schedule onto the
    #: two-phase consistent path (PER_PACKET_PATH) instead of rejecting.
    forced_two_phase: bool = False
    #: FlexScope: the "update" span covering this change and the root of
    #: its trace tree (None when observability is disabled).
    span_id: int | None = None
    trace_id: int | None = None

    def summary(self) -> str:
        report = self.report
        head = (
            f"transition to v{self.result.new_plan.program.version}: "
            f"{report.steps_applied} step(s), {len(report.device_windows)} device window(s), "
            f"{report.duration_s:.3f}s"
        )
        if self.forced_two_phase:
            head += " [escalated to two-phase]"
        lines = [head]
        for device in sorted(report.device_windows):
            start, end = report.device_windows[device]
            mode = "reflash" if device in report.reflashed_devices else "hitless"
            lines.append(f"  {device}: {mode} t={start:.3f}..{end:.3f}")
        if report.migrations:
            lines.append(f"  migrations: {len(report.migrations)}")
        if self.gc_evicted:
            lines.append(f"  gc evicted: {', '.join(self.gc_evicted)}")
        if self.race_findings:
            lines.append(
                "  race findings: "
                + ", ".join(sorted({f.code for f in self.race_findings}))
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        report = self.report
        return {
            "to_version": self.result.new_plan.program.version,
            "compile_iterations": self.compile_iterations,
            "gc_evicted": list(self.gc_evicted),
            "forced_two_phase": self.forced_two_phase,
            "race_findings": sorted({f.code for f in self.race_findings}),
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "transition": {
                "started_at": round(report.started_at, 9),
                "finished_at": round(report.finished_at, 9),
                "duration_s": round(report.duration_s, 9),
                "steps_applied": report.steps_applied,
                "device_windows": {
                    device: [round(start, 9), round(end, 9)]
                    for device, (start, end) in sorted(report.device_windows.items())
                },
                "reflashed": sorted(report.reflashed_devices),
                "migrations": len(report.migrations),
                "commands_dropped": report.commands_dropped,
                "command_retries": report.command_retries,
                "stranded": sorted(report.stranded_commands),
                "deferred_starts": sorted(report.deferred_starts),
                "stale_rejected": report.stale_rejected,
                "undispatched": sorted(report.undispatched),
            },
        }


class FlexNetController:
    """See module docstring."""

    def __init__(
        self,
        loop: EventLoop | None = None,
        objective: Objective | None = None,
    ):
        self.loop = loop or EventLoop()
        self.network = Network(self.loop)
        self.topology = TopologyView()
        self.engine = PlacementEngine(objective)
        self.incremental = IncrementalCompiler(self.engine)
        self.hub = P4RuntimeHub()
        self.telemetry = TelemetryCollector()
        self.replication = ReplicationManager(self.loop)
        self.rpc_registry = RpcRegistry()
        self.drpc = DrpcFabric(self.rpc_registry)

        self.devices: dict[str, DeviceRuntime] = {}
        self.orchestrator = ReconfigOrchestrator(self.loop, self.devices)

        #: FlexFault wiring (populated by :meth:`attach_faults`).
        self.fault_injector = None
        self.journal = None
        self.recovery = None
        self.health = None

        #: FlexScope wiring (populated by
        #: :meth:`repro.observe.Observer.enable` only — ``None`` means
        #: observability is off and no call site pays more than this
        #: attribute check).
        self.observer = None

        #: FlexHA wiring (populated by :meth:`repro.control.ha.FlexHA.attach`
        #: only — ``None`` means the controller runs unreplicated).
        self.ha = None

        self._composer: Composer | None = None
        self._base_program: Program | None = None
        self._program: Program | None = None
        self._certificate: Certificate | None = None
        self._plan: CompilationPlan | None = None
        self._path: list[str] = []
        self._slice: NetworkSlice | None = None
        self._apps: dict[str, AppRecord] = {}
        self._tenants: dict[str, tuple[TenantSpec, Program]] = {}
        self._last_gc_evicted: list[str] = []
        self._endpoints: tuple[str, str] | None = None

    # -- topology construction --------------------------------------------------

    def add_device(self, name: str, target: Target | None) -> DeviceRuntime | None:
        """Register a device; programmable devices get a live runtime and
        a P4Runtime binding."""
        self.topology.add_device(name, target)
        if target is None:
            return None
        runtime = DeviceRuntime(name, target)
        self.devices[name] = runtime
        self.network.add_node(runtime)
        self.hub.bind(runtime)
        self.drpc.set_device_speed(name, target.performance.per_op_ns)
        if self.observer is not None:
            self.observer.attach_device(runtime)
        return runtime

    def add_link(self, a: str, b: str, latency_s: float = 1e-6) -> None:
        self.topology.add_link(a, b, latency_s)
        if a in self.devices and b in self.devices:
            self.network.add_link(a, b, latency_s)

    def set_datapath_endpoints(self, source: str, destination: str) -> None:
        """Fix the fungible datapath's slice to the shortest path between
        two endpoints; the compiler places everything along it."""
        self._endpoints = (source, destination)
        self._set_path(self.topology.shortest_path(source, destination))

    def _set_path(self, path: list[str]) -> None:
        """Adopt a concrete route for the datapath.

        Non-programmable hops forward but host nothing: the simulated
        path collapses them into the link latency between the adjacent
        programmable devices.
        """
        self._path = list(path)
        self._slice = self.topology.slice_along(self._path)
        programmable = [n for n in self._path if n in self.devices]
        # Bridge over legacy hops: accumulate underlying link latency
        # between consecutive programmable devices and materialize a
        # direct simulated link when one is missing.
        last_programmable: str | None = None
        accumulated = 0.0
        for index, node in enumerate(self._path):
            if index > 0:
                accumulated += self.topology.link_latency(self._path[index - 1], node)
            if node in self.devices:
                if last_programmable is not None and not self.network.has_link(
                    last_programmable, node
                ):
                    self.network.add_link(last_programmable, node, accumulated)
                last_programmable = node
                accumulated = 0.0
        self.network.define_path("datapath", programmable)

    @property
    def datapath_path(self) -> list[str]:
        return list(self._path)

    @property
    def program(self) -> Program:
        if self._program is None:
            raise ControlPlaneError("no program installed yet")
        return self._program

    @property
    def plan(self) -> CompilationPlan:
        if self._plan is None:
            raise ControlPlaneError("no plan compiled yet")
        return self._plan

    def slice(self) -> NetworkSlice:
        if self._slice is None:
            raise ControlPlaneError("datapath endpoints not set")
        return self.topology.slice_along(self._path)

    # -- provisioning ---------------------------------------------------------------

    def install_infrastructure(self, program: Program) -> CompilationPlan:
        """Compile and cold-install the operator's base program."""
        program = program.validate()
        certificate = certify(program)
        plan = self.engine.compile(program, certificate, self.slice(), gc_hook=self._gc_hook)
        self._base_program = program
        self._composer = Composer(program)
        self._program = program
        self._certificate = certificate
        self._plan = plan
        self.orchestrator.install_plan(plan)
        uri = AppUri(owner="infrastructure", name="base")
        record = AppRecord(
            uri=uri,
            elements=set(program.element_names),
            deployed_at=self.loop.now,
        )
        record.refresh_footprint(plan.placement)
        self._apps[str(uri)] = record
        return plan

    # -- the core transition path ------------------------------------------------------

    def transition_to(
        self,
        new_program: Program,
        changes: ChangeSet | None = None,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
        strict_analysis: bool = False,
        *,
        epoch: int | None = None,
        dispatch_gate=None,
        delta_id: int | None = None,
    ) -> TransitionOutcome:
        """Incrementally recompile to ``new_program`` and orchestrate the
        hitless runtime transition (see :meth:`_transition_to` for the
        mechanics). With FlexScope enabled, the whole change runs inside
        an "update" span (the orchestrator's transition/window spans nest
        under it) and the outcome carries the span ids.

        ``epoch``/``dispatch_gate``/``delta_id`` are FlexHA's fencing
        hooks, threaded down to the orchestrator's device windows."""
        observer = self.observer
        if observer is None:
            return self._transition_to(
                new_program,
                changes,
                consistency,
                strict_analysis,
                epoch=epoch,
                dispatch_gate=dispatch_gate,
                delta_id=delta_id,
            )
        tracer = observer.tracer
        span = tracer.start_span(
            "update",
            "update",
            self.loop.now,
            to_version=new_program.version,
            consistency=consistency.name,
        )
        tracer._stack.append(span)
        try:
            with observer.profiler.phase("transition"):
                outcome = self._transition_to(
                    new_program,
                    changes,
                    consistency,
                    strict_analysis,
                    epoch=epoch,
                    dispatch_gate=dispatch_gate,
                    delta_id=delta_id,
                )
        except FlexNetError:
            tracer._stack.pop()
            tracer.end_span(span, self.loop.now, status="error")
            raise
        tracer._stack.pop()
        report = outcome.report
        tracer.end_span(
            span,
            report.finished_at,
            steps=report.steps_applied,
            forced_two_phase=outcome.forced_two_phase,
        )
        outcome.span_id = span.span_id
        outcome.trace_id = span.parent_id if span.parent_id is not None else span.span_id
        metrics = observer.metrics
        metrics.counter(
            "flexnet_transitions_total",
            help="runtime transitions orchestrated",
            consistency=consistency.name,
            forced_two_phase=str(outcome.forced_two_phase).lower(),
        ).inc()
        metrics.histogram(
            "flexnet_schedule_makespan_seconds",
            help="end-to-end transition makespan",
        ).observe(report.duration_s)
        for device_name in sorted(report.device_windows):
            start, end = report.device_windows[device_name]
            metrics.histogram(
                "flexnet_transition_window_seconds",
                help="per-device transition window",
                device=device_name,
            ).observe(end - start)
        observer.profiler.add_sim("transition_window", report.duration_s)
        return outcome

    def _transition_to(
        self,
        new_program: Program,
        changes: ChangeSet | None = None,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
        strict_analysis: bool = False,
        *,
        epoch: int | None = None,
        dispatch_gate=None,
        delta_id: int | None = None,
    ) -> TransitionOutcome:
        """Incrementally recompile to ``new_program`` and orchestrate the
        hitless runtime transition under the requested consistency.

        Every transition first runs FlexCheck's reconfiguration-race pass
        against the live program. Hazards under a per-device schedule are
        *escalated*: the controller forces the transition through the
        two-phase consistent path (PER_PACKET_PATH epoch stamping plus
        swing-state migration of the flagged maps) so the change ships
        safely. With ``strict_analysis=True`` the transition is instead
        rejected with :class:`~repro.errors.AnalysisError`.
        """
        if self._plan is None:
            raise ControlPlaneError("install infrastructure before transitioning")
        certificate = certify(new_program)
        changes = changes or diff_programs(self._plan.program, new_program)

        race_findings: tuple[Finding, ...] = ()
        forced_two_phase = False
        protected_maps: set[str] = set()
        if not changes.is_empty():
            two_phase = consistency in (
                ConsistencyLevel.PER_PACKET_PATH,
                ConsistencyLevel.PER_FLOW,
            )
            race_report = check_changeset(
                self.program, new_program, changes, two_phase=two_phase
            )
            if race_report.errors:
                if strict_analysis:
                    from repro.errors import AnalysisError

                    detail = "; ".join(f.message for f in race_report.errors)
                    raise AnalysisError(
                        f"transition to {new_program.name!r} v{new_program.version} "
                        f"rejected by FlexCheck race analysis: {detail}"
                    )
                # Escalate onto the two-phase consistent path.
                consistency = ConsistencyLevel.PER_PACKET_PATH
                forced_two_phase = True
                race_report = check_changeset(
                    self.program, new_program, changes, two_phase=True
                )
            race_findings = race_report.findings
            protected_maps = {
                finding.element
                for finding in race_findings
                if finding.element is not None
                and finding.code in ("RACE-MAP-RESIZE", "RACE-MAP-REMOVED")
            }

        survivors = {
            element: device
            for element, device in self._plan.placement.items()
            if element not in changes.removed and element not in changes.added
        }
        new_plan = self.engine.compile(
            new_program,
            certificate,
            self.slice(),
            pinned=survivors,
        )
        reconfig = self.incremental.transition(self._plan, new_plan, self.slice(), changes)
        result = IncrementalResult(new_plan=new_plan, reconfig=reconfig, changes=changes)

        from repro.runtime.reconfig import batched_window_s

        per_device_steps: dict[str, list[float]] = {}
        for step in reconfig.steps:
            per_device_steps.setdefault(step.device, []).append(step.cost_s)
        per_device_window = {
            device: batched_window_s(costs)
            for device, costs in per_device_steps.items()
        }
        updated_in_path = [
            d for d in self.network.path("datapath") if d in per_device_window
        ] or [d for d in self.network.path("datapath") if d in set(new_plan.placement.values())]
        schedule = plan_schedule(consistency, updated_in_path, per_device_window)

        report = self.orchestrator.apply(
            reconfig,
            new_plan,
            old_plan=self._plan,
            stagger=schedule.stagger,
            window_override=schedule.window_s,
            flow_affine=consistency is ConsistencyLevel.PER_FLOW,
            protected_maps=protected_maps or None,
            epoch=epoch,
            dispatch_gate=dispatch_gate,
            delta_id=delta_id,
        )

        self._program = new_program
        self._certificate = certificate
        self._plan = new_plan
        for record in self._apps.values():
            record.refresh_footprint(new_plan.placement)
        return TransitionOutcome(
            result=result,
            report=report,
            compile_iterations=new_plan.iterations,
            gc_evicted=list(self._last_gc_evicted),
            race_findings=race_findings,
            forced_two_phase=forced_two_phase,
        )

    # -- app-level API (URI handles) ---------------------------------------------------

    def app(self, uri: str) -> AppRecord:
        if uri not in self._apps:
            raise UnknownAppError(f"no app {uri!r}")
        return self._apps[uri]

    @property
    def app_uris(self) -> list[str]:
        return sorted(self._apps)

    def deploy_app(
        self,
        uri: str,
        delta: Delta,
        sla: AppSla | None = None,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
        max_gc_rounds: int = 3,
        allow_detour: bool = False,
    ) -> TransitionOutcome:
        """Inject an app (expressed as a delta over the current program).

        Implements the §3.3 compile loop: if placement fails, garbage-
        collect one removable app and *replay the delta against the
        trimmed program*, up to ``max_gc_rounds`` times. With
        ``allow_detour`` the controller additionally co-designs routing
        and placement: when GC cannot free enough, it searches for a
        loop-free detour route through an off-path runtime programmable
        device with capacity, re-routes the datapath, and retries.
        """
        from repro.errors import PlacementError

        parsed = AppUri.parse(uri)
        if uri in self._apps:
            raise ControlPlaneError(f"app {uri!r} already deployed")
        self._last_gc_evicted = []
        attempts = 0
        detoured = False
        while True:
            attempts += 1
            new_program, changes = apply_delta(self.program, delta)
            try:
                outcome = self.transition_to(new_program, changes, consistency)
                break
            except PlacementError:
                if not detoured and attempts > max_gc_rounds:
                    raise
                if self._gc_once():
                    continue
                if allow_detour and not detoured and self._try_detour(new_program):
                    detoured = True
                    continue
                raise
        outcome.compile_iterations = attempts
        outcome.gc_evicted = list(self._last_gc_evicted)
        record = AppRecord(
            uri=parsed,
            elements=set(changes.added),
            sla=sla or AppSla(),
            deployed_at=self.loop.now,
        )
        record.refresh_footprint(outcome.result.new_plan.placement)
        self._apps[uri] = record
        return outcome

    def remove_app(
        self,
        uri: str,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
    ) -> TransitionOutcome:
        """Retire an app and release its resources."""
        record = self.app(uri)
        ops = [
            RemoveElements(pattern=element)
            for element in sorted(record.elements)
            if self.program.has_table(element)
            or self.program.has_function(element)
            or self.program.has_map(element)
        ]
        if not ops:
            raise ControlPlaneError(f"app {uri!r} has no removable elements")
        delta = Delta(name=f"remove:{record.uri.name}", ops=tuple(ops))
        new_program, changes = apply_delta(self.program, delta)
        outcome = self.transition_to(new_program, changes, consistency)
        del self._apps[uri]
        return outcome

    def scale_app(self, uri: str, factor: float) -> TransitionOutcome:
        """Elastically resize an app's tables and maps by ``factor``."""
        record = self.app(uri)
        ops = []
        for element in sorted(record.elements):
            if self.program.has_table(element):
                current = self.program.table(element).size
                ops.append(
                    SetTableSize(pattern=element, size=max(int(current * factor), 1))
                )
            elif self.program.has_map(element):
                current = self.program.map(element).max_entries
                ops.append(
                    SetMapEntries(pattern=element, max_entries=max(int(current * factor), 1))
                )
        if not ops:
            raise ControlPlaneError(f"app {uri!r} has nothing scalable")
        delta = Delta(name=f"scale:{record.uri.name}", ops=tuple(ops))
        new_program, changes = apply_delta(self.program, delta)
        outcome = self.transition_to(new_program, changes)
        record.generation += 1
        return outcome

    def migrate_app(self, uri: str, to_device: str) -> TransitionOutcome:
        """Move an app's elements to a specific device (vertical or
        horizontal migration), carrying durable state."""
        record = self.app(uri)
        if to_device not in self.devices:
            raise ControlPlaneError(f"unknown device {to_device!r}")
        if self._plan is None:
            raise ControlPlaneError("nothing deployed")
        certificate = certify(self.program)
        pins = dict(self._plan.placement)
        for element in record.elements:
            pins[element] = to_device
        new_program = self.program.bump_version()
        new_plan = self.engine.compile(new_program, certificate, self.slice(), pinned=pins)
        misplaced = [
            element
            for element in record.elements
            if new_plan.placement.get(element) != to_device
        ]
        if misplaced:
            raise ControlPlaneError(
                f"cannot host {misplaced} of app {uri!r} on {to_device!r}"
            )
        changes = ChangeSet(modified=frozenset(record.elements), apply_changed=False)
        reconfig = self.incremental.transition(self._plan, new_plan, self.slice(), changes)
        result = IncrementalResult(new_plan=new_plan, reconfig=reconfig, changes=changes)
        report = self.orchestrator.apply(reconfig, new_plan, old_plan=self._plan)
        self._program = new_program
        self._plan = new_plan
        record.generation += 1
        for app_record in self._apps.values():
            app_record.refresh_footprint(new_plan.placement)
        return TransitionOutcome(result=result, report=report)

    # -- tenants ----------------------------------------------------------------------

    def _infrastructure_view(self) -> Program:
        """The current program with every admitted tenant's namespaced
        elements and VLAN guard stripped — i.e., the live infrastructure
        program, including every delta applied since install. This keeps
        composition correct when infrastructure changes interleave with
        tenant churn."""
        import re
        from dataclasses import replace as dc_replace

        from repro.lang import ir

        program = self.program
        # Strip the composer's "+Next" suffix so the composed name is a
        # pure function of the install name and the *current* tenant
        # count — a coalesced window sequence must land on a program
        # byte-identical to serial per-delta admission, name included.
        name = re.sub(r"(\+\d+ext)+$", "", program.name)
        if not self._tenants:
            if name != program.name:
                program = dc_replace(program, name=name)
            return program
        prefixes = tuple(f"{name}__" for name in self._tenants)
        vlans = {spec.vlan_id for spec, _ in self._tenants.values()}

        def is_tenant_guard(step: ir.ApplyStep) -> bool:
            return (
                isinstance(step, ir.ApplyIf)
                and isinstance(step.condition, ir.BinOp)
                and isinstance(step.condition.left, ir.MetaRef)
                and step.condition.left.key == "vlan_id"
                and isinstance(step.condition.right, ir.Const)
                and step.condition.right.value in vlans
            )

        return dc_replace(
            program,
            name=name,
            maps=tuple(m for m in program.maps if not m.name.startswith(prefixes)),
            actions=tuple(a for a in program.actions if not a.name.startswith(prefixes)),
            tables=tuple(t for t in program.tables if not t.name.startswith(prefixes)),
            functions=tuple(
                f for f in program.functions if not f.name.startswith(prefixes)
            ),
            apply=tuple(s for s in program.apply if not is_tenant_guard(s)),
        )

    def _compose_with_tenants(
        self, tenants: dict[str, tuple[TenantSpec, Program]]
    ) -> Program:
        base = self._infrastructure_view()
        composer = Composer(base)
        for spec, extension in tenants.values():
            composer.admit(spec, extension)
        composed = composer.compose().composed
        self._composer = composer
        return _with_version(composed, self.program.version + 1)

    def admit_tenant(
        self,
        tenant: TenantSpec,
        extension: Program,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
    ) -> TransitionOutcome:
        """Validate, compose, and inject a tenant extension (§3 scenario).

        A one-element batch: FlexCloud coalesces queued tenant deltas
        into :meth:`admit_tenants_batch` windows, and the synchronous
        path goes through the same code so there is exactly one
        admission path through the controller."""
        return self.admit_tenants_batch([(tenant, extension)], (), consistency=consistency)

    def evict_tenant(
        self,
        tenant_name: str,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
    ) -> TransitionOutcome:
        """Tenant departure: trim its extension and release resources."""
        return self.admit_tenants_batch((), [tenant_name], consistency=consistency)

    def admit_tenants_batch(
        self,
        admits,
        evicts=(),
        *,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
        ops: int | None = None,
        epoch: int | None = None,
        dispatch_gate=None,
        delta_id: int | None = None,
    ) -> TransitionOutcome:
        """Fold a round's tenant churn into ONE composition and ONE
        hitless transition (FlexCloud's coalesced reconfiguration
        window).

        ``admits`` is a sequence of ``(TenantSpec, extension)`` pairs,
        ``evicts`` a sequence of tenant names; the batch is atomic —
        validation failures and composition conflicts raise before any
        tenant state mutates, so the caller can fall back to serial
        per-delta admission and attach the failure to the offending
        ticket. ``ops`` is the number of folded deltas the batch stands
        for (defaults to ``len(admits) + len(evicts)``): the composed
        program's version advances by exactly that much, so a coalesced
        window sequence lands on a program *byte-identical* to serial
        per-delta admission of the same deltas.

        ``epoch``/``dispatch_gate``/``delta_id`` thread FlexHA's fencing
        hooks down to the transition, letting a replicated admission
        queue drain through fenced windows.
        """
        admits = list(admits)
        evicts = list(evicts)
        if not admits and not evicts:
            raise ControlPlaneError("empty tenant batch")
        if admits and self._composer is None:
            raise ControlPlaneError("install infrastructure first")
        admit_names = [spec.name for spec, _ in admits]
        for name in admit_names:
            if name in self._tenants or admit_names.count(name) > 1:
                raise ControlPlaneError(f"tenant {name!r} already admitted")
        for name in evicts:
            if self._composer is None or name not in self._tenants:
                raise ControlPlaneError(f"tenant {name!r} not admitted")
        overlap = set(admit_names) & set(evicts)
        if overlap:
            raise ControlPlaneError(
                f"tenant {sorted(overlap)[0]!r} appears as both admit and "
                "evict in one batch"
            )
        new_tenants = {
            name: value for name, value in self._tenants.items() if name not in evicts
        }
        for spec, extension in admits:
            new_tenants[spec.name] = (spec, extension)
        # Compose *before* mutating tenant state so _infrastructure_view
        # still strips departing tenants, and so a CompositionError
        # leaves the controller untouched.
        composed = self._compose_with_tenants(new_tenants)
        folded = ops if ops is not None else len(admits) + len(evicts)
        composed = _with_version(composed, self.program.version + folded)
        outcome = self.transition_to(
            composed,
            consistency=consistency,
            epoch=epoch,
            dispatch_gate=dispatch_gate,
            delta_id=delta_id,
        )
        self._tenants = new_tenants
        for name in evicts:
            self._apps.pop(str(AppUri(owner=name, name="extension")), None)
        for spec, _ in admits:
            prefix = f"{spec.name}__"
            elements = {e for e in composed.element_names if e.startswith(prefix)}
            uri = AppUri(owner=spec.name, name="extension")
            record = AppRecord(uri=uri, elements=elements, deployed_at=self.loop.now)
            record.refresh_footprint(outcome.result.new_plan.placement)
            self._apps[str(uri)] = record
        return outcome

    @property
    def tenant_names(self) -> list[str]:
        return sorted(self._tenants)

    # -- routing/placement co-design ------------------------------------------------------

    def _try_detour(self, new_program: Program) -> bool:
        """Find a loop-free detour route through an off-path runtime
        programmable device on which ``new_program`` compiles; adopt it
        and return True, or leave the route untouched and return False.
        """
        from repro.errors import PlacementError, UnknownDeviceError

        if self._endpoints is None or self._plan is None:
            return False
        source, destination = self._endpoints
        certificate = certify(new_program)
        survivors = {
            element: device
            for element, device in self._plan.placement.items()
            if new_program.has_table(element)
            or new_program.has_function(element)
            or new_program.has_map(element)
        }
        for via in self.topology.runtime_programmable_devices:
            if via in self._path or via in (source, destination):
                continue
            try:
                path = self.topology.detour_path(source, destination, via)
                candidate_slice = self.topology.slice_along(path)
                self.engine.compile(
                    new_program, certificate, candidate_slice, pinned=survivors
                )
            except (PlacementError, UnknownDeviceError):
                continue
            self._set_path(path)
            return True
        return False

    # -- FlexFault: fault injection + recovery wiring ----------------------------------

    def attach_faults(
        self,
        injector,
        recovery: bool = True,
        policy=None,
        monitor: bool = False,
        resume: bool = True,
    ):
        """Wire a FlexFault injector through every hook point: the
        reconfiguration orchestrator (lost start commands, journaled
        windows), the P4Runtime hub (lossy control channel), and the
        dRPC fabric (flaky handlers).

        With ``recovery=True`` (the default) the full recovery stack is
        armed: retry-with-backoff on control and dRPC calls, a
        write-ahead journal making delta application transactional, and
        a :class:`~repro.faults.recovery.RecoveryManager` that resolves
        crash-interrupted transitions on restart (``resume=True`` rolls
        forward to the new version, ``False`` rolls back).
        ``recovery=False`` is the no-recovery baseline experiment E16
        contrasts against. ``monitor=True`` additionally starts the
        health monitor, which quarantines unresponsive devices and
        detours the datapath around them when an alternate route exists.
        Returns the recovery manager (or None for the baseline).
        """
        from repro.control.p4runtime import ControlChannel
        from repro.faults.journal import ReconfigJournal
        from repro.faults.recovery import HealthMonitor, RecoveryManager, RetryPolicy

        policy = policy or RetryPolicy()
        self.fault_injector = injector
        self.journal = ReconfigJournal()
        self.orchestrator.injector = injector
        self.orchestrator.journal = self.journal
        self.drpc.injector = injector
        self.hub.set_channel(ControlChannel(injector, retry=policy if recovery else None))
        self.recovery = None
        self.health = None
        if recovery:
            self.recovery = RecoveryManager(
                self.loop,
                self.devices,
                self.journal,
                policy,
                telemetry=self.telemetry,
                resume=resume,
            )
            self.orchestrator.recovery = self.recovery
        if monitor:
            self.health = HealthMonitor(
                self.loop,
                self.devices,
                telemetry=self.telemetry,
                on_quarantine=self._on_quarantine,
                on_release=self._on_health_release,
            )
            self.health.start()
        return self.recovery

    def _on_quarantine(self, device_name: str) -> None:
        """Health-monitor callback: detour the datapath around a
        quarantined device when the topology offers a route."""
        try:
            self.reroute_datapath(avoid={device_name})
        except ControlPlaneError:
            pass  # no alternate route — the datapath stays degraded

    def _on_health_release(self, device_name: str) -> None:
        """Health-monitor callback: a quarantined device came back. With
        FlexHA attached, the leader resyncs it — the device may have
        missed whole transition windows while unreachable, and its
        ground truth must be re-read and repaired against the committed
        log."""
        if self.ha is not None:
            self.ha.resync_device(device_name)

    def reroute_datapath(self, avoid: set[str]) -> list[str]:
        """Re-route the datapath between its endpoints, skipping the
        ``avoid`` devices; returns the new path."""
        if self._endpoints is None:
            raise ControlPlaneError("datapath endpoints not set")
        source, destination = self._endpoints
        path = self.topology.path_avoiding(source, destination, set(avoid))
        self._set_path(path)
        return path

    # -- GC hook (the compiler's fungibility loop) --------------------------------------

    def _gc_hook(self, network_slice: NetworkSlice) -> bool:
        """Compiler-facing adapter around :meth:`_gc_once` (used during
        infrastructure install, where no delta replay is needed)."""
        return self._gc_once()

    def _gc_once(self) -> bool:
        """Retire one removable app to free resources; returns True if
        any resources were reclaimed."""
        removable = [
            uri
            for uri, record in self._apps.items()
            if record.sla.removable and record.elements
        ]
        if not removable or self._plan is None:
            return False
        victim_uri = removable[0]
        record = self._apps[victim_uri]
        survivors = {
            element: device
            for element, device in self._plan.placement.items()
            if element not in record.elements
        }
        ops = [
            RemoveElements(pattern=element)
            for element in sorted(record.elements)
            if self.program.has_table(element)
            or self.program.has_function(element)
            or self.program.has_map(element)
        ]
        if not ops:
            return False
        delta = Delta(name=f"gc:{record.uri.name}", ops=tuple(ops))
        new_program, changes = apply_delta(self.program, delta)
        certificate = certify(new_program)
        new_plan = self.engine.compile(
            new_program, certificate, self.slice(), pinned=survivors
        )
        reconfig = self.incremental.transition(self._plan, new_plan, self.slice(), changes)
        self.orchestrator.apply(reconfig, new_plan, old_plan=self._plan)
        self._program = new_program
        self._certificate = certificate
        self._plan = new_plan
        del self._apps[victim_uri]
        self._last_gc_evicted.append(victim_uri)
        for app_record in self._apps.values():
            app_record.refresh_footprint(new_plan.placement)
        return True

    # -- reporting ---------------------------------------------------------------------

    def device_utilization(self) -> dict[str, float]:
        if self._plan is None:
            return {}
        usage: dict[str, float] = {}
        for spec in self.slice().devices:
            demand = self._plan.device_demand.get(spec.name)
            if demand is None:
                usage[spec.name] = 0.0
            else:
                usage[spec.name] = demand.utilization_of(spec.target.capacity)
        return usage


def _with_version(program: Program, version: int) -> Program:
    from dataclasses import replace

    return replace(program, version=version)
