"""Real-time network control: the FlexNet controller and its services."""

from repro.control.apps_api import AppRecord, AppSla, AppUri
from repro.control.consensus import (
    ControllerCluster,
    MessageBus,
    RaftNode,
    RaftSnapshot,
    Role,
)
from repro.control.controller import FlexNetController, TransitionOutcome
from repro.control.ha import FailoverRecord, FlexHA, HACommand
from repro.control.p4runtime import (
    DeviceGroundTruth,
    P4RuntimeClient,
    P4RuntimeHub,
    TableEntry,
)
from repro.control.replication import ReplicationGroup, ReplicationManager
from repro.control.scheduler import UpdateSchedule
from repro.control.telemetry import DigestRecord, TelemetryCollector
from repro.control.topology import DeviceInfo, TopologyView

__all__ = [
    "AppRecord",
    "AppSla",
    "AppUri",
    "ControllerCluster",
    "DeviceGroundTruth",
    "DeviceInfo",
    "DigestRecord",
    "FailoverRecord",
    "FlexHA",
    "FlexNetController",
    "HACommand",
    "MessageBus",
    "P4RuntimeClient",
    "P4RuntimeHub",
    "RaftNode",
    "RaftSnapshot",
    "ReplicationGroup",
    "ReplicationManager",
    "Role",
    "TableEntry",
    "TelemetryCollector",
    "TopologyView",
    "TransitionOutcome",
    "UpdateSchedule",
]
