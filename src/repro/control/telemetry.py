"""Network telemetry collection for real-time control (§1, §3.4).

The controller needs "a global view of ... traffic patterns" to make
real-time decisions (summon defenses, scale apps). Telemetry has two
feeds:

* **digests** — data plane programs push ``emit_digest`` records toward
  the controller (per-packet or sampled); the collector bins them into
  sliding-window rates keyed by the digest's first value (by convention
  the victim/afflicted address).
* **device stats** — periodic pulls of per-device counters through
  P4Runtime.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.simulator.packet import Packet


@dataclass(frozen=True)
class DigestRecord:
    time: float
    program: str
    values: tuple[int, ...]


@dataclass(frozen=True)
class HealthEvent:
    """A degraded-mode control event (crash, restart, quarantine, ...)
    fed by FlexFault's recovery layer."""

    time: float
    kind: str
    device: str
    detail: str = ""


class TelemetryCollector:
    """Sliding-window digest aggregation.

    Memory is bounded on the *ingest* path: records older than the
    window are evicted as new ones arrive (not only when a read method
    happens to run), and ``max_records`` hard-caps the buffer for
    bursts that out-pace the window. ``total_digests`` counts every
    digest ever ingested regardless of eviction.
    """

    def __init__(self, window_s: float = 0.5, max_records: int = 100_000):
        self.window_s = window_s
        self.max_records = max_records
        self._digests: deque[DigestRecord] = deque()
        self.total_digests = 0
        #: degraded-mode events (bounded like the digest buffer).
        self.events: deque[HealthEvent] = deque(maxlen=4096)
        self.total_events = 0
        #: FlexScope: set by :meth:`repro.observe.Observer.enable`;
        #: degraded-mode events are mirrored into the tracer's global
        #: event feed (``flexnet trace --events``). The per-packet digest
        #: path never touches this.
        self.observer = None

    def ingest_packet(self, packet: Packet, now: float) -> None:
        for program, values in packet.digests:
            self.ingest(DigestRecord(time=now, program=program, values=values))

    def ingest(self, record: DigestRecord) -> None:
        self._digests.append(record)
        self.total_digests += 1
        # Evict on ingest so a collector that is never queried cannot
        # grow without bound; digest times are monotone in practice
        # (they come from the event loop's clock).
        self._evict(record.time)
        while len(self._digests) > self.max_records:
            self._digests.popleft()

    def ingest_event(self, kind: str, device: str, now: float, detail: str = "") -> None:
        """Record a degraded-mode event (FlexFault recovery feed)."""
        self.events.append(HealthEvent(time=now, kind=kind, device=device, detail=detail))
        self.total_events += 1
        # Surface the record (the pre-FlexScope collector buffered these
        # and nothing ever read them back out).
        observer = self.observer
        if observer is not None:
            observer.tracer.event(kind, now, device=device, detail=detail)

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        while self._digests and self._digests[0].time < horizon:
            self._digests.popleft()

    def rate_by_key(self, now: float) -> dict[int, float]:
        """Digests/second in the window, grouped by first digest value."""
        self._evict(now)
        counts: dict[int, int] = defaultdict(int)
        for record in self._digests:
            if record.values:
                counts[record.values[0]] += 1
        return {key: count / self.window_s for key, count in counts.items()}

    def hottest_key(self, now: float) -> tuple[int, float] | None:
        rates = self.rate_by_key(now)
        if not rates:
            return None
        key = max(rates, key=lambda k: rates[k])
        return key, rates[key]

    def total_rate(self, now: float) -> float:
        self._evict(now)
        return len(self._digests) / self.window_s
