"""Raft consensus for physically distributed controllers (§3.4).

"For large networks, logically centralized controllers are realized in
physically distributed nodes, which brings classic distributed systems
concerns on consensus and availability." This module is a
self-contained Raft implementation (leader election, log replication,
majority commit) running over a simulated message bus inside the event
loop, so controller replicas can keep piloting the network across node
failures and partitions (experiment E11).

The implementation follows the Raft paper's state machine closely
enough to exhibit its safety/liveness behaviour: terms, randomized
election timeouts, AppendEntries consistency checks, and commit only of
current-term entries via majority match indexes. Log compaction via
snapshots is implemented (FlexHA uses it for fast follower catch-up):
a node whose applied suffix exceeds ``snapshot_threshold`` folds the
applied prefix into a :class:`RaftSnapshot` and truncates its log, and
a leader whose next entry for a lagging follower has already been
compacted ships the snapshot (:class:`InstallSnapshot`) instead of
replaying the log. Membership changes remain out of scope.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ConsensusError
from repro.limits import ELECTION_TIMEOUT_RANGE_S, HEARTBEAT_INTERVAL_S
from repro.simulator.engine import EventLoop
from repro.util import stable_hash

__all__ = [
    "ELECTION_TIMEOUT_RANGE_S",
    "HEARTBEAT_INTERVAL_S",
    "AppendEntries",
    "AppendReply",
    "ControllerCluster",
    "InstallSnapshot",
    "LogEntry",
    "MessageBus",
    "RaftNode",
    "RaftSnapshot",
    "RequestVote",
    "Role",
    "SnapshotReply",
    "VoteReply",
    "node_seed",
]


def node_seed(node_id: str, seed: int) -> int:
    """The RNG seed for one Raft node.

    Derived with :func:`~repro.util.stable_hash` over the node id's
    bytes — Python's builtin ``hash`` of a str is salted per process
    (PYTHONHASHSEED), which would make same-seed elections diverge
    across processes.
    """
    return stable_hash((seed, *node_id.encode())) & 0xFFFFFFFF


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    term: int
    command: object


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: str
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: str
    success: bool
    match_index: int


@dataclass(frozen=True)
class RaftSnapshot:
    """The state machine folded up to (and including) ``last_index``.

    ``commands`` is the full applied command sequence — enough for a
    fresh follower to reconstruct its state machine without replaying
    the (discarded) log prefix.
    """

    last_index: int
    last_term: int
    commands: tuple[object, ...]


@dataclass(frozen=True)
class InstallSnapshot:
    """Leader -> lagging follower: catch up from a snapshot."""

    term: int
    leader: str
    snapshot: RaftSnapshot


@dataclass(frozen=True)
class SnapshotReply:
    term: int
    follower: str
    last_index: int


class MessageBus:
    """Delivers messages between nodes with latency; supports crashes
    and partitions."""

    def __init__(self, loop: EventLoop, latency_s: float = 0.005):
        self._loop = loop
        self.latency_s = latency_s
        self._nodes: dict[str, "RaftNode"] = {}
        self._crashed: set[str] = set()
        self._partitions: list[set[str]] = []
        self.messages_sent = 0

    def attach(self, node: "RaftNode") -> None:
        self._nodes[node.node_id] = node

    def crash(self, node_id: str) -> None:
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        self._crashed.discard(node_id)
        node = self._nodes[node_id]
        node.on_recover()

    def partition(self, *groups: set[str]) -> None:
        self._partitions = [set(group) for group in groups]

    def heal(self) -> None:
        self._partitions = []

    def reachable(self, source: str, destination: str) -> bool:
        if source in self._crashed or destination in self._crashed:
            return False
        if not self._partitions:
            return True
        for group in self._partitions:
            if source in group:
                return destination in group
        return True

    def send(self, source: str, destination: str, message: object) -> None:
        self.messages_sent += 1
        if not self.reachable(source, destination):
            return
        node = self._nodes.get(destination)
        if node is None:
            return
        self._loop.schedule(
            self.latency_s, lambda: node.receive(source, message) if destination not in self._crashed else None
        )

    @property
    def now(self) -> float:
        return self._loop.now

    def schedule(self, delay: float, callback: Callable[[], None]):
        return self._loop.schedule(delay, callback)


class RaftNode:
    """One controller replica."""

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        bus: MessageBus,
        apply_callback: Callable[[object], None] | None = None,
        seed: int = 0,
        snapshot_threshold: int | None = None,
    ):
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self._bus = bus
        self._rng = random.Random(node_seed(node_id, seed))
        self._apply = apply_callback

        self.role = Role.FOLLOWER
        self.current_term = 0
        self.voted_for: str | None = None
        self.log: list[LogEntry] = []
        self.commit_index = 0  # 1-based; 0 == nothing committed
        self.last_applied = 0
        self.applied_commands: list[object] = []
        #: log compaction: entries 1..log_offset live in ``snapshot``;
        #: ``log[i]`` holds entry index ``log_offset + i + 1``.
        self.log_offset = 0
        self.snapshot: RaftSnapshot | None = None
        #: compact once more than this many applied entries are in the
        #: log (None disables compaction).
        self.snapshot_threshold = snapshot_threshold
        self.snapshots_taken = 0
        self.snapshots_installed = 0

        self._votes: set[str] = set()
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._election_deadline = 0.0
        self._crashed = False

        bus.attach(self)
        self._reset_election_timer()
        self._tick()

    # -- helpers --------------------------------------------------------------

    @property
    def last_log_index(self) -> int:
        return self.log_offset + len(self.log)

    @property
    def last_log_term(self) -> int:
        if self.log:
            return self.log[-1].term
        return self.snapshot.last_term if self.snapshot is not None else 0

    def _term_at(self, index: int) -> int:
        if index == 0:
            return 0
        if index == self.log_offset:
            return self.snapshot.last_term if self.snapshot is not None else 0
        return self.log[index - self.log_offset - 1].term

    def _reset_election_timer(self) -> None:
        timeout = self._rng.uniform(*ELECTION_TIMEOUT_RANGE_S)
        self._election_deadline = self._bus.now + timeout

    def on_recover(self) -> None:
        self._crashed = False
        self.role = Role.FOLLOWER
        self._reset_election_timer()

    def _tick(self) -> None:
        self._bus.schedule(HEARTBEAT_INTERVAL_S / 2, self._on_tick)

    def _on_tick(self) -> None:
        if not self._bus.reachable(self.node_id, self.node_id):
            self._crashed = True
        else:
            self._crashed = False
            if self.role is Role.LEADER:
                self._broadcast_append()
            elif self._bus.now >= self._election_deadline:
                self._start_election()
        self._tick()

    # -- elections ---------------------------------------------------------------

    def _start_election(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self._reset_election_timer()
        request = RequestVote(
            term=self.current_term,
            candidate=self.node_id,
            last_log_index=self.last_log_index,
            last_log_term=self.last_log_term,
        )
        for peer in self.peers:
            self._bus.send(self.node_id, peer, request)
        self._maybe_win()

    def _maybe_win(self) -> None:
        majority = (len(self.peers) + 1) // 2 + 1
        if self.role is Role.CANDIDATE and len(self._votes) >= majority:
            self.role = Role.LEADER
            self._next_index = {p: self.last_log_index + 1 for p in self.peers}
            self._match_index = {p: 0 for p in self.peers}
            self._broadcast_append()

    # -- log replication --------------------------------------------------------------

    def propose(self, command: object) -> int:
        """Leader-only: append a command; returns its log index."""
        if self.role is not Role.LEADER:
            raise ConsensusError(f"{self.node_id} is not the leader")
        self.log.append(LogEntry(term=self.current_term, command=command))
        self._broadcast_append()
        self._advance_commit()
        return self.last_log_index

    def _broadcast_append(self) -> None:
        for peer in self.peers:
            next_index = self._next_index.get(peer, self.last_log_index + 1)
            if self.snapshot is not None and next_index <= self.log_offset:
                # The entries this follower needs were compacted away:
                # ship the snapshot instead of replaying the log.
                self._bus.send(
                    self.node_id,
                    peer,
                    InstallSnapshot(
                        term=self.current_term,
                        leader=self.node_id,
                        snapshot=self.snapshot,
                    ),
                )
                continue
            prev_index = next_index - 1
            entries = tuple(self.log[prev_index - self.log_offset:])
            message = AppendEntries(
                term=self.current_term,
                leader=self.node_id,
                prev_log_index=prev_index,
                prev_log_term=self._term_at(prev_index),
                entries=entries,
                leader_commit=self.commit_index,
            )
            self._bus.send(self.node_id, peer, message)

    # -- message handling ---------------------------------------------------------------

    def receive(self, source: str, message: object) -> None:
        if self._crashed:
            return
        if isinstance(message, RequestVote):
            self._on_request_vote(message)
        elif isinstance(message, VoteReply):
            self._on_vote_reply(message)
        elif isinstance(message, AppendEntries):
            self._on_append(message)
        elif isinstance(message, AppendReply):
            self._on_append_reply(message)
        elif isinstance(message, InstallSnapshot):
            self._on_install_snapshot(message)
        elif isinstance(message, SnapshotReply):
            self._on_snapshot_reply(message)

    def _observe_term(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.role = Role.FOLLOWER
            self.voted_for = None

    def _on_request_vote(self, message: RequestVote) -> None:
        self._observe_term(message.term)
        up_to_date = (message.last_log_term, message.last_log_index) >= (
            self.last_log_term,
            self.last_log_index,
        )
        granted = (
            message.term == self.current_term
            and self.voted_for in (None, message.candidate)
            and up_to_date
        )
        if granted:
            self.voted_for = message.candidate
            self._reset_election_timer()
        self._bus.send(
            self.node_id,
            message.candidate,
            VoteReply(term=self.current_term, voter=self.node_id, granted=granted),
        )

    def _on_vote_reply(self, message: VoteReply) -> None:
        self._observe_term(message.term)
        if self.role is Role.CANDIDATE and message.granted and message.term == self.current_term:
            self._votes.add(message.voter)
            self._maybe_win()

    def _on_append(self, message: AppendEntries) -> None:
        self._observe_term(message.term)
        if message.term < self.current_term:
            self._bus.send(
                self.node_id,
                message.leader,
                AppendReply(
                    term=self.current_term,
                    follower=self.node_id,
                    success=False,
                    match_index=0,
                ),
            )
            return
        self.role = Role.FOLLOWER
        self._reset_election_timer()
        # Entries at or below our snapshot point are committed by
        # definition; skip the overlapping prefix instead of failing the
        # consistency check against compacted indexes.
        prev_index = message.prev_log_index
        entries = message.entries
        if prev_index < self.log_offset:
            skip = self.log_offset - prev_index
            entries = entries[skip:] if skip < len(entries) else ()
            prev_index = self.log_offset
        # Consistency check.
        if prev_index > self.last_log_index or (
            self._term_at(prev_index) != message.prev_log_term
        ):
            self._bus.send(
                self.node_id,
                message.leader,
                AppendReply(
                    term=self.current_term,
                    follower=self.node_id,
                    success=False,
                    match_index=0,
                ),
            )
            return
        # Append, truncating conflicts.
        index = prev_index
        for entry in entries:
            local = index - self.log_offset
            if index < self.last_log_index and self.log[local].term != entry.term:
                del self.log[local:]
            if index >= self.last_log_index:
                self.log.append(entry)
            index += 1
        if message.leader_commit > self.commit_index:
            self.commit_index = min(message.leader_commit, self.last_log_index)
            self._apply_committed()
        self._bus.send(
            self.node_id,
            message.leader,
            AppendReply(
                term=self.current_term,
                follower=self.node_id,
                success=True,
                match_index=message.prev_log_index + len(message.entries),
            ),
        )

    def _on_install_snapshot(self, message: InstallSnapshot) -> None:
        self._observe_term(message.term)
        if message.term < self.current_term:
            return
        self.role = Role.FOLLOWER
        self._reset_election_timer()
        snap = message.snapshot
        if snap.last_index > self.log_offset:
            if (
                snap.last_index <= self.last_log_index
                and self._term_at(snap.last_index) == snap.last_term
            ):
                # Our log already contains the snapshot point: keep the
                # suffix, discard the covered prefix.
                del self.log[: snap.last_index - self.log_offset]
            else:
                # Diverged or too short: the snapshot replaces the log.
                self.log = []
            self.log_offset = snap.last_index
            self.snapshot = snap
            # State-machine catch-up: apply the snapshot commands we had
            # not yet applied (snapshot commands are 1..last_index).
            for command in snap.commands[self.last_applied:]:
                self.applied_commands.append(command)
                if self._apply is not None:
                    self._apply(command)
            self.last_applied = max(self.last_applied, snap.last_index)
            self.commit_index = max(self.commit_index, snap.last_index)
            self.snapshots_installed += 1
        self._bus.send(
            self.node_id,
            message.leader,
            SnapshotReply(
                term=self.current_term,
                follower=self.node_id,
                last_index=self.log_offset,
            ),
        )

    def _on_snapshot_reply(self, message: SnapshotReply) -> None:
        self._observe_term(message.term)
        if self.role is not Role.LEADER or message.term != self.current_term:
            return
        self._match_index[message.follower] = max(
            self._match_index.get(message.follower, 0), message.last_index
        )
        self._next_index[message.follower] = self._match_index[message.follower] + 1

    def _on_append_reply(self, message: AppendReply) -> None:
        self._observe_term(message.term)
        if self.role is not Role.LEADER or message.term != self.current_term:
            return
        if message.success:
            self._match_index[message.follower] = max(
                self._match_index.get(message.follower, 0), message.match_index
            )
            self._next_index[message.follower] = self._match_index[message.follower] + 1
            self._advance_commit()
        else:
            self._next_index[message.follower] = max(
                1, self._next_index.get(message.follower, 1) - 1
            )

    def _advance_commit(self) -> None:
        majority = (len(self.peers) + 1) // 2 + 1
        for index in range(self.last_log_index, self.commit_index, -1):
            if self._term_at(index) != self.current_term:
                continue
            votes = 1 + sum(
                1 for match in self._match_index.values() if match >= index
            )
            if votes >= majority:
                self.commit_index = index
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            command = self.log[self.last_applied - 1 - self.log_offset].command
            self.applied_commands.append(command)
            if self._apply is not None:
                self._apply(command)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self.snapshot_threshold is None:
            return
        applied_in_log = self.last_applied - self.log_offset
        if applied_in_log < self.snapshot_threshold:
            return
        last_index = self.last_applied
        self.snapshot = RaftSnapshot(
            last_index=last_index,
            last_term=self._term_at(last_index),
            commands=tuple(self.applied_commands),
        )
        del self.log[: last_index - self.log_offset]
        self.log_offset = last_index
        self.snapshots_taken += 1


class ControllerCluster:
    """A replicated controller: N Raft nodes piloting one network.

    Commands proposed through :meth:`submit` are linearized by Raft and
    applied on every replica; :meth:`leader` finds the current leader
    (None during elections).
    """

    def __init__(
        self,
        loop: EventLoop,
        node_count: int = 3,
        apply_callback: Callable[[object], None] | None = None,
        latency_s: float = 0.005,
        seed: int = 0,
        apply_factory: Callable[[str], Callable[[object], None]] | None = None,
        snapshot_threshold: int | None = None,
    ):
        if node_count < 1:
            raise ConsensusError("need at least one controller node")
        self.loop = loop
        self.bus = MessageBus(loop, latency_s=latency_s)
        node_ids = [f"ctl{i}" for i in range(node_count)]
        self.nodes = {
            node_id: RaftNode(
                node_id,
                node_ids,
                self.bus,
                apply_factory(node_id) if apply_factory is not None else apply_callback,
                seed=seed,
                snapshot_threshold=snapshot_threshold,
            )
            for node_id in node_ids
        }

    def leader(self) -> RaftNode | None:
        leaders = [
            node
            for node in self.nodes.values()
            if node.role is Role.LEADER and self.bus.reachable(node.node_id, node.node_id)
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term)

    def submit(self, command: object) -> bool:
        """Propose via the current leader; False if no leader is known."""
        node = self.leader()
        if node is None:
            return False
        try:
            node.propose(command)
        except ConsensusError:
            return False
        return True

    def committed_commands(self) -> list[object]:
        """Commands applied on a majority-visible node (the leader's
        applied list, or the longest applied list if no leader)."""
        node = self.leader()
        if node is not None:
            return list(node.applied_commands)
        longest = max(self.nodes.values(), key=lambda n: len(n.applied_commands))
        return list(longest.applied_commands)
