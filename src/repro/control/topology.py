"""The controller's global topology view (§1, §3.4).

"The network is piloted by a central controller that maintains a global
view of the topology and traffic patterns, as well as the locations and
resource requirements of the network apps."

Built on networkx: vertices are devices (with their target models and
tiers), edges carry link latency. The view answers the two questions
placement needs: *which path* connects two endpoints, and *what slice*
(ordered DeviceSpec list) lies along it. It also tracks mixed
deployments — runtime programmable, compile-time programmable, and
non-programmable elements — which §3.4 says network control must be
aware of.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.compiler.plan import DeviceSpec
from repro.compiler.placement import NetworkSlice
from repro.errors import UnknownDeviceError
from repro.targets.base import Target
from repro.targets.resources import ResourceVector


@dataclass
class DeviceInfo:
    name: str
    target: Target | None  # None == non-programmable element
    #: resources committed across all deployed datapaths.
    used: ResourceVector

    @property
    def programmable(self) -> bool:
        return self.target is not None

    @property
    def runtime_programmable(self) -> bool:
        return self.target is not None and self.target.reconfig.hitless


class TopologyView:
    """Mutable global topology + resource ledger."""

    def __init__(self):
        self._graph = nx.Graph()
        self._devices: dict[str, DeviceInfo] = {}

    # -- construction ---------------------------------------------------------

    def add_device(self, name: str, target: Target | None) -> None:
        if name in self._devices:
            raise UnknownDeviceError(f"device {name!r} already exists")
        self._devices[name] = DeviceInfo(name=name, target=target, used=ResourceVector())
        self._graph.add_node(name)

    def add_link(self, a: str, b: str, latency_s: float = 1e-6) -> None:
        self.device(a)
        self.device(b)
        self._graph.add_edge(a, b, latency_s=latency_s)

    def remove_device(self, name: str) -> None:
        self.device(name)
        self._graph.remove_node(name)
        del self._devices[name]

    # -- queries --------------------------------------------------------------

    def device(self, name: str) -> DeviceInfo:
        if name not in self._devices:
            raise UnknownDeviceError(f"unknown device {name!r}")
        return self._devices[name]

    @property
    def device_names(self) -> list[str]:
        return sorted(self._devices)

    @property
    def runtime_programmable_devices(self) -> list[str]:
        return sorted(n for n, d in self._devices.items() if d.runtime_programmable)

    @property
    def legacy_devices(self) -> list[str]:
        """Compile-time-only or non-programmable elements in the mix."""
        return sorted(n for n, d in self._devices.items() if not d.runtime_programmable)

    def link_latency(self, a: str, b: str) -> float:
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise UnknownDeviceError(f"no link {a!r} -- {b!r}")
        return data["latency_s"]

    def shortest_path(self, source: str, destination: str) -> list[str]:
        self.device(source)
        self.device(destination)
        try:
            return nx.shortest_path(
                self._graph, source, destination, weight="latency_s"
            )
        except nx.NetworkXNoPath as exc:
            raise UnknownDeviceError(f"no path {source!r} -> {destination!r}") from exc

    def path_avoiding(self, source: str, destination: str, avoid: set[str]) -> list[str]:
        """Shortest path that skips the ``avoid`` devices entirely —
        the health monitor's quarantine detour. Raises when no such
        route exists (the network stays degraded instead)."""
        self.device(source)
        self.device(destination)
        if source in avoid or destination in avoid:
            raise UnknownDeviceError(
                f"cannot route around an endpoint ({sorted(avoid & {source, destination})})"
            )
        view = nx.restricted_view(self._graph, avoid & set(self._graph.nodes), set())
        try:
            return nx.shortest_path(view, source, destination, weight="latency_s")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise UnknownDeviceError(
                f"no path {source!r} -> {destination!r} avoiding {sorted(avoid)}"
            ) from exc

    def detour_path(self, source: str, destination: str, via: str) -> list[str]:
        """Shortest path forced through ``via`` (§3.3: "routing detours
        to a program component"). Raises if the two legs would revisit a
        node (loops are not routable)."""
        self.device(via)
        first_leg = self.shortest_path(source, via)
        second_leg = self.shortest_path(via, destination)
        revisited = (set(first_leg) & set(second_leg)) - {via}
        if revisited:
            raise UnknownDeviceError(
                f"detour via {via!r} revisits {sorted(revisited)}; no loop-free route"
            )
        return first_leg + second_leg[1:]

    def programmable_path(self, source: str, destination: str) -> list[str]:
        """Shortest path preferring programmable hops: non-programmable
        devices get a heavy weight so detours through programmable
        elements win when they exist (the paper's routing co-design)."""

        def weight(u: str, v: str, data: dict) -> float:
            penalty = 0.0
            if not self._devices[v].programmable:
                penalty += 1.0  # 1 virtual second ~ "avoid if possible"
            return data["latency_s"] + penalty

        return nx.shortest_path(self._graph, source, destination, weight=weight)

    # -- slices ----------------------------------------------------------------

    def slice_along(self, path: list[str]) -> NetworkSlice:
        """Build the compiler's NetworkSlice for a concrete path,
        skipping non-programmable hops (they forward but host nothing)."""
        specs: list[DeviceSpec] = []
        previous: str | None = None
        for name in path:
            info = self.device(name)
            if info.target is None:
                previous = name
                continue
            ingress = self.link_latency(previous, name) * 1e9 if previous is not None else 0.0
            specs.append(
                DeviceSpec(
                    name=name,
                    target=info.target,
                    used=info.used,
                    ingress_link_ns=ingress,
                )
            )
            previous = name
        return NetworkSlice(devices=specs)

    def slice_between(self, source: str, destination: str) -> tuple[list[str], NetworkSlice]:
        path = self.shortest_path(source, destination)
        return path, self.slice_along(path)

    # -- resource ledger ---------------------------------------------------------

    def commit(self, device_name: str, demand: ResourceVector) -> None:
        info = self.device(device_name)
        info.used = info.used + demand

    def release(self, device_name: str, demand: ResourceVector) -> None:
        info = self.device(device_name)
        info.used = info.used - demand

    def utilization(self, device_name: str) -> float:
        info = self.device(device_name)
        if info.target is None:
            return 0.0
        return info.used.utilization_of(info.target.capacity)
