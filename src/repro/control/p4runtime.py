"""Element-level control plane bindings, P4Runtime style (§3.4).

"The P4Runtime standard has a set of control plane API to manage and
interact with P4-capable devices, but they operate at the data plane
element level, e.g., manipulating counters, meters, and table rules."

This module is that level: a per-device client exposing table-entry
CRUD, counter/register reads, and map (register/stateful-table) writes
against a live :class:`~repro.runtime.device.DeviceRuntime`. The
app-level abstractions of :mod:`repro.control.apps_api` translate to
these calls — automatically, as the paper requires.

The wire protocol is modelled as an in-process call with a
control-channel latency budget, which the controller accumulates so
experiments can compare control-plane vs data-plane execution costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ControlPlaneError
from repro.lang.ir import ActionCall
from repro.runtime.device import DeviceRuntime
from repro.simulator.tables import MatchSpec, Rule

#: One control-channel round trip (switch gRPC, in seconds).
WRITE_RTT_S = 1e-3
READ_RTT_S = 1e-3


@dataclass
class P4RuntimeStats:
    writes: int = 0
    reads: int = 0
    control_time_s: float = 0.0


@dataclass
class TableEntry:
    """The P4Runtime view of one rule."""

    table: str
    matches: tuple[MatchSpec, ...]
    action: str
    action_args: tuple[int, ...] = ()
    priority: int = 0

    def to_rule(self) -> Rule:
        return Rule(
            matches=self.matches,
            action=ActionCall(action=self.action, args=self.action_args),
            priority=self.priority,
        )


class P4RuntimeClient:
    """Element-level client bound to one device."""

    def __init__(self, device: DeviceRuntime):
        self._device = device
        self.stats = P4RuntimeStats()

    @property
    def device_name(self) -> str:
        return self._device.name

    def _instance(self):
        instance = self._device.active_instance
        if instance is None:
            raise ControlPlaneError(f"device {self._device.name!r} has no program")
        return instance

    # -- table entries -----------------------------------------------------

    def insert_entry(self, entry: TableEntry) -> None:
        instance = self._instance()
        if entry.table not in instance.rules:
            raise ControlPlaneError(
                f"device {self._device.name!r} has no table {entry.table!r}"
            )
        instance.rules[entry.table].insert(entry.to_rule())
        self.stats.writes += 1
        self.stats.control_time_s += WRITE_RTT_S

    def delete_entry(self, entry: TableEntry) -> bool:
        instance = self._instance()
        if entry.table not in instance.rules:
            raise ControlPlaneError(
                f"device {self._device.name!r} has no table {entry.table!r}"
            )
        removed = instance.rules[entry.table].remove(entry.to_rule())
        self.stats.writes += 1
        self.stats.control_time_s += WRITE_RTT_S
        return removed

    def table_size(self, table: str) -> int:
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        self.stats.reads += 1
        self.stats.control_time_s += READ_RTT_S
        return len(instance.rules[table])

    # -- counters ---------------------------------------------------------------

    def read_counters(self, table: str) -> tuple[list[int], int]:
        """(per-rule hit counts, miss count) — P4 direct counters."""
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        rules = instance.rules[table]
        self.stats.reads += 1
        self.stats.control_time_s += READ_RTT_S
        return list(rules.hit_counts), rules.miss_count

    # -- meters -------------------------------------------------------------------

    def set_meter(self, table: str, rate_pps: float, burst_packets: float) -> None:
        """Attach (or reconfigure) a rate meter on a table."""
        from repro.simulator.meters import Meter, MeterConfig

        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        instance.rules[table].meter = Meter(
            MeterConfig(rate_pps=rate_pps, burst_packets=burst_packets)
        )
        self.stats.writes += 1
        self.stats.control_time_s += WRITE_RTT_S

    def clear_meter(self, table: str) -> None:
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        instance.rules[table].meter = None
        self.stats.writes += 1
        self.stats.control_time_s += WRITE_RTT_S

    def read_meter(self, table: str) -> tuple[int, int]:
        """(green_count, red_count) for a table's meter."""
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        meter = instance.rules[table].meter
        self.stats.reads += 1
        self.stats.control_time_s += READ_RTT_S
        if meter is None:
            return (0, 0)
        return (meter.green_count, meter.red_count)

    # -- registers / stateful state -----------------------------------------------

    def read_map(self, map_name: str) -> dict[tuple[int, ...], int]:
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        self.stats.reads += 1
        self.stats.control_time_s += READ_RTT_S
        return dict(instance.maps.state(map_name).items())

    def read_map_entry(self, map_name: str, key: tuple[int, ...]) -> int:
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        self.stats.reads += 1
        self.stats.control_time_s += READ_RTT_S
        return instance.maps.state(map_name).get(key)

    def write_map_entry(self, map_name: str, key: tuple[int, ...], value: int) -> None:
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        instance.maps.state(map_name).put(key, value)
        self.stats.writes += 1
        self.stats.control_time_s += WRITE_RTT_S


@dataclass
class P4RuntimeHub:
    """Client pool: one binding per device, created on demand."""

    clients: dict[str, P4RuntimeClient] = field(default_factory=dict)

    def bind(self, device: DeviceRuntime) -> P4RuntimeClient:
        client = self.clients.get(device.name)
        if client is None:
            client = P4RuntimeClient(device)
            self.clients[device.name] = client
        return client

    def client(self, device_name: str) -> P4RuntimeClient:
        if device_name not in self.clients:
            raise ControlPlaneError(f"no P4Runtime binding for {device_name!r}")
        return self.clients[device_name]

    @property
    def total_control_time_s(self) -> float:
        return sum(c.stats.control_time_s for c in self.clients.values())
