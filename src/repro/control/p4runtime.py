"""Element-level control plane bindings, P4Runtime style (§3.4).

"The P4Runtime standard has a set of control plane API to manage and
interact with P4-capable devices, but they operate at the data plane
element level, e.g., manipulating counters, meters, and table rules."

This module is that level: a per-device client exposing table-entry
CRUD, counter/register reads, and map (register/stateful-table) writes
against a live :class:`~repro.runtime.device.DeviceRuntime`. The
app-level abstractions of :mod:`repro.control.apps_api` translate to
these calls — automatically, as the paper requires.

The wire protocol is modelled as an in-process call with a
control-channel latency budget, which the controller accumulates so
experiments can compare control-plane vs data-plane execution costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChannelError, ControlPlaneError, StaleEpochError
from repro.lang.ir import ActionCall
from repro.limits import READ_RTT_S, WRITE_RTT_S
from repro.runtime.device import DeviceRuntime
from repro.simulator.tables import MatchSpec, Rule

__all__ = [
    "READ_RTT_S",
    "WRITE_RTT_S",
    "ControlChannel",
    "DeviceGroundTruth",
    "P4RuntimeClient",
    "P4RuntimeHub",
    "P4RuntimeStats",
    "TableEntry",
]


@dataclass
class P4RuntimeStats:
    writes: int = 0
    reads: int = 0
    control_time_s: float = 0.0


class ControlChannel:
    """A lossy/slow controller<->device channel (FlexFault hook).

    Each P4Runtime operation transits the channel once. A
    :class:`~repro.faults.plan.FaultInjector` decides per message
    whether it is dropped or delayed; with a
    :class:`~repro.faults.recovery.RetryPolicy` attached, dropped
    messages are retried with exponential backoff (the time spent is
    charged to the caller's control-time budget). Without a retry
    policy a drop raises :class:`~repro.errors.ChannelError`
    immediately — the no-recovery baseline.
    """

    def __init__(self, injector=None, retry=None):
        self.injector = injector
        self.retry = retry
        self.drops = 0
        self.retries = 0
        self.delays = 0
        self.failures = 0

    def transmit(self, device: str, base_rtt_s: float) -> float:
        """Cost one message exchange; returns the channel time spent.
        Raises :class:`ChannelError` when the message is lost and the
        retry budget (if any) is exhausted."""
        if self.injector is None:
            return base_rtt_s
        attempts = self.retry.max_attempts if self.retry is not None else 1
        spent = 0.0
        for attempt in range(1, attempts + 1):
            dropped, delay = self.injector.channel_outcome(device)
            spent += base_rtt_s + delay
            if delay:
                self.delays += 1
            if not dropped:
                return spent
            self.drops += 1
            if attempt < attempts:
                backoff = self.retry.backoff_s(attempt)
                self.retries += 1
                spent += backoff
        self.failures += 1
        raise ChannelError(
            f"control message to {device!r} lost "
            f"({attempts} attempt{'s' if attempts != 1 else ''})"
        )


@dataclass
class TableEntry:
    """The P4Runtime view of one rule."""

    table: str
    matches: tuple[MatchSpec, ...]
    action: str
    action_args: tuple[int, ...] = ()
    priority: int = 0

    def to_rule(self) -> Rule:
        return Rule(
            matches=self.matches,
            action=ActionCall(action=self.action, args=self.action_args),
            priority=self.priority,
        )


@dataclass(frozen=True)
class DeviceGroundTruth:
    """What a device actually holds, read back over P4Runtime.

    FlexHA's resync sweep reads this after a leader fail-over to diff a
    device's real state against the committed Raft log: a device whose
    ``version`` lags the intended program (a window the deposed leader
    never opened) gets re-driven; a ``stranded`` device gets resolved.
    """

    device: str
    version: int | None
    #: table name -> installed entry count.
    tables: dict[str, int]
    #: map name -> populated entry count.
    maps: dict[str, int]
    #: parser state: header names the active version understands.
    headers: tuple[str, ...]
    in_transition: bool
    stranded: bool
    #: highest fencing epoch the device has admitted.
    fencing_epoch: int

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "version": self.version,
            "tables": dict(sorted(self.tables.items())),
            "maps": dict(sorted(self.maps.items())),
            "headers": list(self.headers),
            "in_transition": self.in_transition,
            "stranded": self.stranded,
            "fencing_epoch": self.fencing_epoch,
        }


class P4RuntimeClient:
    """Element-level client bound to one device."""

    def __init__(self, device: DeviceRuntime, channel: ControlChannel | None = None):
        self._device = device
        self.stats = P4RuntimeStats()
        #: optional lossy-channel model (FlexFault); None == ideal channel.
        self.channel = channel
        #: FlexHA fencing epoch stamped on every mutation (None == an
        #: unfenced single controller; devices admit unconditionally).
        self.epoch: int | None = None

    @property
    def device_name(self) -> str:
        return self._device.name

    # -- channel accounting ------------------------------------------------

    def _transmit(self, base_rtt_s: float) -> float:
        if self.channel is None:
            return base_rtt_s
        return self.channel.transmit(self._device.name, base_rtt_s)

    def _write(self) -> None:
        """Cost one write round trip (before mutating device state, so a
        lost write leaves the device untouched); then fence: a stale
        epoch is rejected by the device and the mutation never lands."""
        self.stats.control_time_s += self._transmit(WRITE_RTT_S)
        self.stats.writes += 1
        if not self._device.admit_epoch(self.epoch):
            raise StaleEpochError(
                f"device {self._device.name!r} rejected write with stale epoch "
                f"{self.epoch} (device fenced at {self._device.fencing_epoch})"
            )

    def _read(self) -> None:
        self.stats.control_time_s += self._transmit(READ_RTT_S)
        self.stats.reads += 1

    def _instance(self):
        instance = self._device.active_instance
        if instance is None:
            raise ControlPlaneError(f"device {self._device.name!r} has no program")
        return instance

    # -- table entries -----------------------------------------------------

    def insert_entry(self, entry: TableEntry) -> None:
        instance = self._instance()
        if entry.table not in instance.rules:
            raise ControlPlaneError(
                f"device {self._device.name!r} has no table {entry.table!r}"
            )
        self._write()
        instance.rules[entry.table].insert(entry.to_rule())

    def delete_entry(self, entry: TableEntry) -> bool:
        instance = self._instance()
        if entry.table not in instance.rules:
            raise ControlPlaneError(
                f"device {self._device.name!r} has no table {entry.table!r}"
            )
        self._write()
        removed = instance.rules[entry.table].remove(entry.to_rule())
        return removed

    def table_size(self, table: str) -> int:
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        self._read()
        return len(instance.rules[table])

    # -- counters ---------------------------------------------------------------

    def read_counters(self, table: str) -> tuple[list[int], int]:
        """(per-rule hit counts, miss count) — P4 direct counters."""
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        rules = instance.rules[table]
        self._read()
        return list(rules.hit_counts), rules.miss_count

    # -- meters -------------------------------------------------------------------

    def set_meter(self, table: str, rate_pps: float, burst_packets: float) -> None:
        """Attach (or reconfigure) a rate meter on a table."""
        from repro.simulator.meters import Meter, MeterConfig

        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        self._write()
        instance.rules[table].meter = Meter(
            MeterConfig(rate_pps=rate_pps, burst_packets=burst_packets)
        )

    def clear_meter(self, table: str) -> None:
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        self._write()
        instance.rules[table].meter = None

    def read_meter(self, table: str) -> tuple[int, int]:
        """(green_count, red_count) for a table's meter."""
        instance = self._instance()
        if table not in instance.rules:
            raise ControlPlaneError(f"no table {table!r}")
        meter = instance.rules[table].meter
        self._read()
        if meter is None:
            return (0, 0)
        return (meter.green_count, meter.red_count)

    # -- registers / stateful state -----------------------------------------------

    def read_map(self, map_name: str) -> dict[tuple[int, ...], int]:
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        self._read()
        return dict(instance.maps.state(map_name).items())

    def read_map_entry(self, map_name: str, key: tuple[int, ...]) -> int:
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        self._read()
        return instance.maps.state(map_name).get(key)

    def write_map_entry(self, map_name: str, key: tuple[int, ...], value: int) -> None:
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        self._write()
        instance.maps.state(map_name).put(key, value)

    def write_map_entries(
        self, map_name: str, entries: dict[tuple[int, ...], int]
    ) -> int:
        """One batched WriteRequest: all ``entries`` land in a single
        write round trip (P4Runtime batches updates in one RPC). This is
        FlexCloud's per-device reconfiguration window primitive — the
        coalescer folds a round's admits/evicts for a device into one of
        these, so the control-channel cost scales with *windows*, not
        tenants. A value of 0 deletes the key (maps default to 0, so an
        explicit zero and an absent key are indistinguishable to the
        datapath; deleting keeps occupancy counts honest). Returns the
        number of entries applied. Atomic against channel loss: a
        dropped batch leaves the device untouched.
        """
        instance = self._instance()
        if map_name not in instance.maps:
            raise ControlPlaneError(f"no map {map_name!r}")
        if not entries:
            return 0
        self._write()
        state = instance.maps.state(map_name)
        for key, value in entries.items():
            if value == 0:
                state.delete(key)
            else:
                state.put(key, value)
        return len(entries)

    # -- ground truth (FlexHA resync) ----------------------------------------------

    def read_ground_truth(self) -> DeviceGroundTruth:
        """One read round trip returning the device's actual state —
        program version, table/map occupancy, parser headers, transition
        status — for the new leader's resync diff."""
        self._read()
        device = self._device
        instance = device.active_instance
        if instance is None:
            return DeviceGroundTruth(
                device=device.name,
                version=None,
                tables={},
                maps={},
                headers=(),
                in_transition=device.in_transition,
                stranded=device.stranded,
                fencing_epoch=device.fencing_epoch,
            )
        return DeviceGroundTruth(
            device=device.name,
            version=instance.program.version,
            tables={name: len(rules) for name, rules in instance.rules.items()},
            maps={
                map_def.name: len(dict(instance.maps.state(map_def.name).items()))
                for map_def in instance.program.maps
                if map_def.name in instance.maps
            },
            headers=tuple(header.name for header in instance.program.headers),
            in_transition=device.in_transition,
            stranded=device.stranded,
            fencing_epoch=device.fencing_epoch,
        )


@dataclass
class P4RuntimeHub:
    """Client pool: one binding per device, created on demand."""

    clients: dict[str, P4RuntimeClient] = field(default_factory=dict)
    #: shared channel model applied to all bindings (None == ideal).
    channel: ControlChannel | None = None
    #: FlexHA fencing epoch stamped on every binding (None == unfenced).
    epoch: int | None = None

    def bind(self, device: DeviceRuntime) -> P4RuntimeClient:
        client = self.clients.get(device.name)
        if client is None:
            client = P4RuntimeClient(device, channel=self.channel)
            client.epoch = self.epoch
            self.clients[device.name] = client
        return client

    def set_channel(self, channel: ControlChannel | None) -> None:
        """Install a channel model on every current and future binding."""
        self.channel = channel
        for client in self.clients.values():
            client.channel = channel

    def set_epoch(self, epoch: int | None) -> None:
        """Stamp a fencing epoch (the leader's Raft term) on every
        current and future binding; devices reject older epochs."""
        self.epoch = epoch
        for client in self.clients.values():
            client.epoch = epoch

    def client(self, device_name: str) -> P4RuntimeClient:
        if device_name not in self.clients:
            raise ControlPlaneError(f"no P4Runtime binding for {device_name!r}")
        return self.clients[device_name]

    @property
    def total_control_time_s(self) -> float:
        return sum(c.stats.control_time_s for c in self.clients.values())
