"""Command-line interface for the FlexNet toolchain.

Usage (also ``python -m repro.cli``)::

    flexnet certify  program.fbpf [--json]        # admission certification
    flexnet check    program.fbpf [--patch patch.delta] [--arch drmt] [--json]
    flexnet check    --builtin                    # FlexCheck all bundled programs
    flexnet vet      program.fbpf [--json]        # FlexVet parallelism classes
    flexnet vet      --builtin                    # FlexVet all bundled programs
    flexnet vet      --self [--update-baseline]   # determinism self-audit
    flexnet compile  program.fbpf [--arch drmt] [--objective latency|energy] [--json]
    flexnet delta    program.fbpf patch.delta [--json]  # apply a patch, show changes
    flexnet simulate program.fbpf [--rate 1000] [--duration 1.0]
                                  [--patch patch.delta --at 0.5] [--json]
    flexnet bench    [program.fbpf] [--fastpath] [--packets 2000] [--json]
    flexnet chaos    [program.fbpf] [--patch patch.delta] [--trace]
                     [--crash sw1@5.2] [--drop 0.01] [--no-recovery] [--json]
    flexnet chaos    --controller [--partition] [--nodes 3] [--no-fencing]
    flexnet chaos    --scale [--shards 4] [--worker-crash 0@4] [--handoff-drop 0.2]
    flexnet ha       status [--nodes 3] [--failover] [--json]
    flexnet scale    [--shards 2] [--backend process|inline] [--pods 4]
                     [--packets 2000] [--rate 20000] [--differential] [--json]
    flexnet cloud    [--scenario flash-crowd] [--tenants 2000] [--seed 2026]
                     [--racks 4] [--shards 1] [--drop 0.0] [--no-coalesce] [--json]
    flexnet trace    program.fbpf [--patch patch.delta --at 0.5]
                     [--sample-every 64] [--events] [--sink spans.jsonl] [--json]
    flexnet metrics  program.fbpf [--patch patch.delta --at 0.5] [--json]
    flexnet profile  program.fbpf [--patch patch.delta --at 0.5] [--json]

Programs are FlexBPF source files; patches use the delta DSL (§3.2).
Everything runs against the standard host-NIC-switch-NIC-host slice.
``chaos`` runs a seeded FlexFault scenario (defaults: bundled base
infrastructure + firewall delta) and reports consistency, convergence,
and the write-ahead journal; with ``--controller`` the faults hit the
replicated control plane instead (FlexHA: Raft leader crash, or a
leader partition with ``--partition``); with ``--scale`` they hit the
sharded process backend instead (FlexMend: seeded worker crashes and
handoff drops/dups absorbed by checkpointed restart, differentially
byte-compared against a fault-free run). ``ha status`` stands up the
replicated controller, drives one committed update (optionally through
a ``--failover``), and prints the FlexHA status. ``trace``/``metrics``/``profile`` run the
same scenario as ``simulate`` with FlexScope enabled and render the
span tree, the Prometheus-text metric export, or the per-phase profile
table. ``scale`` partitions the E20 pod fabric across worker processes
(FlexScale) and, with ``--differential``, byte-compares the sharded
traffic report against the single-process engine. ``cloud`` runs a
seeded FlexCloud tenant-churn scenario (flash crowd, diurnal cycle,
DDoS defense, canary rollout) through the batched admission engine and
exits nonzero on any isolation violation.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.flexnet import FlexNet
from repro.errors import FlexNetError
from repro.lang.analyzer import certify
from repro.lang.delta import apply_delta, parse_delta
from repro.lang.parser import parse_program


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def cmd_certify(args: argparse.Namespace) -> int:
    import json as json_module

    program = parse_program(_read(args.program))
    certificate = certify(program)
    if args.json:
        print(json_module.dumps({
            "program": program.name,
            "version": program.version,
            "certified": True,
            "max_packet_ops": certificate.max_packet_ops,
            "total_map_entries": certificate.total_map_entries,
            "is_stateful": certificate.is_stateful,
            "recirculates": certificate.recirculates,
            "elements": {
                name: {
                    "kind": profile.kind,
                    "max_ops": profile.max_ops,
                    "table_entries": profile.table_entries,
                }
                for name, profile in sorted(certificate.profiles.items())
            },
        }, indent=2))
        return 0
    print(f"program {program.name!r} (version {program.version}): CERTIFIED")
    print(f"  worst-case packet cost : {certificate.max_packet_ops} ops")
    print(f"  declared map entries   : {certificate.total_map_entries}")
    print(f"  stateful               : {certificate.is_stateful}")
    print(f"  recirculates           : {certificate.recirculates}")
    print(f"  elements ({len(certificate.profiles)}):")
    for name in sorted(certificate.profiles):
        profile = certificate.profiles[name]
        print(
            f"    {name:24s} {profile.kind:8s} ops={profile.max_ops:<5d} "
            f"entries={profile.table_entries}"
        )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run FlexCheck: data-flow lints, reconfiguration races (--patch),
    and per-target overcommit. Exit 0 when no ERROR finding, 1 otherwise."""
    import json as json_module

    from repro import analysis
    from repro.targets import drmt_switch, rmt_switch, tiled_switch

    target_factories = {
        "drmt": drmt_switch,
        "rmt": lambda name: rmt_switch(name, runtime_capable=True),
        "tiles": tiled_switch,
    }

    if args.builtin:
        from repro.analysis.corpus import bundled_programs

        subjects = bundled_programs()
        deltas = {}
    else:
        if not args.program:
            print("error: provide a program file or --builtin", file=sys.stderr)
            return 2
        program = parse_program(_read(args.program))
        subjects = [(program.name, program)]
        deltas = (
            {program.name: parse_delta(_read(args.patch))} if args.patch else {}
        )

    target = target_factories[args.arch]("check_target") if args.arch else None

    reports = []
    worst = 0
    for label, program in subjects:
        report = analysis.check(program, delta=deltas.get(label), target=target)
        reports.append((label, report))
        if not report.ok:
            worst = 1
    if args.json:
        payload = [dict(label=label, **report.to_dict()) for label, report in reports]
        print(json_module.dumps(payload if len(payload) > 1 else payload[0], indent=2))
    else:
        for label, report in reports:
            prefix = f"[{label}] " if len(reports) > 1 else ""
            print(prefix + report.render())
    return worst


def cmd_vet(args: argparse.Namespace) -> int:
    """Run FlexVet. With a program (or --builtin), print the parallelism
    classification; with --self, audit the source tree for
    nondeterminism and exit 1 on findings missing from the baseline."""
    import json as json_module
    from pathlib import Path

    from repro.observe.report import emit

    if args.self_audit:
        from repro.analysis.selfcheck import (
            default_baseline_path,
            run_selfcheck,
            write_baseline,
        )

        baseline = Path(args.baseline) if args.baseline else default_baseline_path()
        report = run_selfcheck(baseline_path=baseline)
        if args.update_baseline:
            write_baseline(baseline, list(report.findings))
            print(
                f"baseline updated: {len(report.findings)} finding(s) "
                f"pinned to {baseline}"
            )
            return 0
        emit(report, as_json=args.json)
        return 0 if report.clean else 1

    from repro import analysis

    if args.builtin:
        from repro.analysis.corpus import bundled_programs

        subjects = bundled_programs()
    else:
        if not args.program:
            print(
                "error: provide a program file, --builtin, or --self",
                file=sys.stderr,
            )
            return 2
        program = parse_program(_read(args.program))
        subjects = [(program.name, program)]

    reports = [(label, analysis.vet(program)) for label, program in subjects]
    if args.json:
        payload = [dict(label=label, **report.to_dict()) for label, report in reports]
        print(json_module.dumps(payload if len(payload) > 1 else payload[0], indent=2))
    else:
        for label, report in reports:
            prefix = f"[{label}] " if len(reports) > 1 else ""
            print(prefix + report.summary())
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.slo import Slo

    program = parse_program(_read(args.program))
    net = FlexNet.standard(switch_arch=args.arch)
    if args.objective == "energy":
        net.build_datapath("h1", "h2", slo=Slo(prefer_energy=True))
    elif args.objective == "latency":
        net.build_datapath("h1", "h2", slo=Slo(max_latency_ns=1e9))
    plan = net.install(program)
    if args.json:
        import json as json_module

        print(json_module.dumps(plan.to_dict(), indent=2))
        return 0
    print(f"compiled {program.name!r} onto h1-nic1-sw1({args.arch})-nic2-h2:")
    for element, device in sorted(plan.placement.items()):
        encoding = plan.encodings.get(element)
        suffix = f"  [{encoding.value}]" if encoding else ""
        print(f"  {element:24s} -> {device}{suffix}")
    print(f"estimated latency : {plan.estimated_latency_ns / 1000:.1f} us/packet")
    print(f"estimated energy  : {plan.estimated_energy_nj:.1f} nJ/packet dynamic, "
          f"{plan.estimated_idle_power_w:.0f} W idle")
    if plan.stage_plans:
        for device, stage_plan in plan.stage_plans.items():
            print(f"stage plan ({device}): {stage_plan.assignments}")
    return 0


def cmd_delta(args: argparse.Namespace) -> int:
    program = parse_program(_read(args.program))
    delta = parse_delta(_read(args.patch))
    new_program, changes = apply_delta(program, delta)
    if args.json:
        import json as json_module

        certificate = certify(new_program)
        print(json_module.dumps({
            "delta": delta.name,
            "old_version": program.version,
            "new_version": new_program.version,
            "added": sorted(changes.added),
            "removed": sorted(changes.removed),
            "modified": sorted(changes.modified),
            "apply_changed": changes.apply_changed,
            "max_packet_ops": certificate.max_packet_ops,
        }, indent=2))
        return 0
    print(f"delta {delta.name!r} applied: version {program.version} -> {new_program.version}")
    for label, names in (
        ("added", changes.added),
        ("removed", changes.removed),
        ("modified", changes.modified),
    ):
        if names:
            print(f"  {label:8s}: {', '.join(sorted(names))}")
    if changes.apply_changed:
        print("  apply/parser control flow changed")
    certificate = certify(new_program)
    print(f"  new worst-case packet cost: {certificate.max_packet_ops} ops")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Parse, optionally patch, and emit normalized FlexBPF source."""
    from repro.lang.printer import print_program

    program = parse_program(_read(args.program))
    if args.patch:
        delta = parse_delta(_read(args.patch))
        program, _ = apply_delta(program, delta)
    if args.json:
        import json as json_module

        print(json_module.dumps({
            "program": program.name,
            "version": program.version,
            "source": print_program(program),
        }, indent=2))
        return 0
    sys.stdout.write(print_program(program))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    program = parse_program(_read(args.program))
    net = FlexNet.standard(switch_arch=args.arch)
    net.install(program)
    if args.patch:
        delta = parse_delta(_read(args.patch))
        net.schedule(args.at, lambda: net.update(delta))
        print(f"scheduled delta {delta.name!r} at t={args.at}s")
    report = net.run_traffic(rate_pps=args.rate, duration_s=args.duration,
                             extra_time_s=2.0)
    if args.json:
        from repro.observe.report import emit

        emit(report, as_json=True)
        return 0
    metrics = report.metrics
    print(f"sent      : {metrics.sent}")
    print(f"delivered : {metrics.delivered}")
    print(f"dropped   : {metrics.dropped_by_program} (by program)")
    print(f"lost      : {metrics.lost_by_infrastructure} (infrastructure)")
    if metrics.latency.count:
        print(f"latency   : mean {metrics.latency.mean * 1e6:.1f} us, "
              f"p99 {metrics.latency.percentile(0.99) * 1e6:.1f} us")
    for device in ("sw1",):
        versions = metrics.versions_on(device)
        if versions:
            print(f"versions on {device}: {versions}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark the data-plane executor on one program: interpreted
    packets/second, and with ``--fastpath`` the FlexPath compiled rate
    plus a differential check that compiled outcomes are byte-identical.
    Exits 1 if the differential check finds any divergence."""
    import copy
    import json as json_module
    import time

    from repro.simulator import fastpath
    from repro.simulator.pipeline_exec import ProgramInstance

    if args.program:
        program = parse_program(_read(args.program))
    elif args.batch:
        # The default bench program (base + firewall) is deliberately
        # NOT batch-safe (the firewall is cross-flow); --batch defaults
        # to the batch-safe base program so the verb exercises the
        # batched tiers rather than the fallback.
        from repro.apps import base_infrastructure

        program = base_infrastructure()
    else:
        from repro.apps import base_infrastructure, firewall_delta

        base, _ = apply_delta(base_infrastructure(), firewall_delta())
        program = base

    packets = fastpath.seeded_corpus(args.packets, seed=args.seed)

    def setup(instance: ProgramInstance) -> None:
        fastpath.seeded_rules(program, instance, seed=args.seed)

    def measure(enable: bool) -> float:
        instance = ProgramInstance(program)
        setup(instance)
        if enable:
            instance.enable_fastpath()
        work = [copy.deepcopy(p) for p in packets]
        instance.process(copy.deepcopy(packets[0]), 0.0)  # warm up
        start = time.perf_counter()
        for i, packet in enumerate(work):
            instance.process(packet, i * 1e-4)
        # Clamp: a tiny corpus on a fast machine can make the delta 0
        # at timer resolution, and pps must stay finite.
        return len(work) / max(time.perf_counter() - start, 1e-9)

    interp_pps = measure(False)
    results = {"program": program.name, "packets": len(packets),
               "interpreted_pps": interp_pps}
    divergences = []
    if args.fastpath or args.batch:
        report = fastpath.differential_check(program, packets, setup=setup)
        divergences = list(report.divergences)
        compiled_pps = measure(True)
        results["compiled_pps"] = compiled_pps
        results["speedup"] = compiled_pps / interp_pps
        results["divergences"] = len(divergences)
    if args.batch:
        from repro.simulator.batch import PacketBatch, batched_differential

        batch_report = batched_differential(
            program, packets, setup=setup, batch_size=args.batch_size
        )
        divergences.extend(batch_report.divergences)
        instance = ProgramInstance(program)
        setup(instance)
        instance.enable_batching()
        instance.process_batch([copy.deepcopy(packets[0])])  # warm up
        work = [copy.deepcopy(p) for p in packets]
        size = args.batch_size
        start = time.perf_counter()
        for offset in range(0, len(work), size):
            chunk = work[offset : offset + size]
            instance.process_batch(PacketBatch(
                chunk, times=[(offset + i) * 1e-4 for i in range(len(chunk))]
            ))
        batched_pps = len(work) / max(time.perf_counter() - start, 1e-9)
        executor = instance.batch_executor()
        results["batched_pps"] = batched_pps
        results["batch_speedup"] = batched_pps / results["compiled_pps"]
        results["batch_size"] = size
        results["batch_admitted"] = executor.admission().admitted
        results["batch_stats"] = executor.stats.to_dict()
        results["divergences"] = len(divergences)

    if args.json:
        print(json_module.dumps(results, indent=2))
    else:
        print(f"program     : {program.name!r} ({len(packets)} packets)")
        print(f"interpreted : {interp_pps:,.0f} pps")
        if args.fastpath or args.batch:
            print(f"compiled    : {results['compiled_pps']:,.0f} pps "
                  f"({results['speedup']:.2f}x)")
        if args.batch:
            admitted = "admitted" if results["batch_admitted"] else "refused"
            print(f"batched     : {results['batched_pps']:,.0f} pps "
                  f"({results['batch_speedup']:.2f}x compiled, "
                  f"batch={results['batch_size']}, gate {admitted})")
            print(f"  {instance.batch_executor().stats.summary()}")
        if args.fastpath or args.batch:
            print(f"divergences : {len(divergences)}")
            for divergence in divergences:
                print(f"  {divergence}")
    return 1 if divergences else 0


def _cmd_chaos_scale(args: argparse.Namespace) -> int:
    """FlexMend: chaos-armed sharded run differentially compared against
    a fault-free sharded run and the single-process reference; exit 0
    iff all three ``traffic`` sections are byte-identical."""
    import json as json_module

    from repro.apps import base_infrastructure
    from repro.faults.plan import FaultPlan, HandoffDrop, HandoffDup, WorkerCrash
    from repro.scale import pod_fabric, e20_workload, run_scale_chaos

    crash_specs = (
        args.worker_crash if args.worker_crash is not None else ["0@4", "1@6"]
    )
    worker_crashes = []
    for spec in crash_specs:
        if spec == "none":
            continue
        shard, _, window = spec.partition("@")
        try:
            worker_crashes.append(
                WorkerCrash(shard=int(shard), window=int(window))
            )
        except ValueError:
            print(
                f"error: --worker-crash expects SHARD@WINDOW, got {spec!r}",
                file=sys.stderr,
            )
            return 2
    handoff_drops = tuple(
        HandoffDrop(shard=shard, probability=args.handoff_drop)
        for shard in range(args.shards)
    ) if args.handoff_drop else ()
    handoff_dups = tuple(
        HandoffDup(shard=shard, probability=args.handoff_dup)
        for shard in range(args.shards)
    ) if args.handoff_dup else ()
    plan = FaultPlan(
        seed=args.seed,
        worker_crashes=tuple(worker_crashes),
        handoff_drops=handoff_drops,
        handoff_dups=handoff_dups,
    )

    def make_net():
        net = pod_fabric(args.pods)
        net.install(base_infrastructure())
        return net

    rate = args.rate if args.rate is not None else 20_000.0

    def make_workload():
        return e20_workload(args.packets, rate_pps=rate, seed=args.seed)

    report = run_scale_chaos(
        make_net,
        make_workload,
        args.shards,
        plan,
        seed=args.plan_seed,
        drain_s=args.drain,
        checkpoint_every=args.checkpoint_every,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if report.divergences else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a seeded FlexFault chaos scenario; exit 0 iff the network
    converged with zero consistency violations."""
    import json as json_module

    from repro.faults import ChannelFault, DeviceCrash, FaultPlan, run_chaos

    if getattr(args, "scale", False):
        return _cmd_chaos_scale(args)
    if args.rate is None:
        args.rate = 1000.0

    if args.program:
        program = parse_program(_read(args.program))
    else:
        from repro.apps import base_infrastructure

        program = base_infrastructure()
    if args.patch:
        delta = parse_delta(_read(args.patch))
    else:
        from repro.apps import firewall_delta

        delta = firewall_delta()

    if args.controller:
        from repro.faults import (
            ControllerCrash,
            FaultPlan,
            LeaderPartition,
            run_controller_chaos,
        )

        fault_at = args.fault_at if args.fault_at is not None else args.at + 0.02
        if args.partition:
            plan = FaultPlan(
                seed=args.seed,
                partitions=(
                    LeaderPartition(at_s=fault_at, heal_after_s=args.heal_after),
                ),
            )
        else:
            plan = FaultPlan(
                seed=args.seed,
                controller_crashes=(
                    ControllerCrash(
                        node="leader",
                        at_s=fault_at,
                        restart_after_s=args.restart_after,
                    ),
                ),
            )
        report = run_controller_chaos(
            program,
            delta,
            plan,
            node_count=args.nodes,
            fencing=not args.no_fencing,
            rate_pps=args.rate,
            duration_s=args.duration,
            update_at_s=args.at,
            observe=args.trace,
            observe_sample_every=args.sample_every,
        )
        ok = (
            report.converged
            and report.violations == 0
            and report.stale_writes_applied == 0
        )
        if args.json:
            print(json_module.dumps(report.to_dict(), indent=2))
            return 0 if ok else 1
        print("fault plan:")
        for line in report.fault_plan:
            print(f"  {line}")
        print(report.summary())
        if report.events:
            print("events:")
            for event in report.events:
                detail = f" ({event['detail']})" if event["detail"] else ""
                print(f"  t={event['time']:<8g} {event['kind']:10s} "
                      f"{event['device']}{detail}")
        if args.trace and report.spans:
            from repro.observe.trace import render_span_tree

            print("trace:")
            print(render_span_tree(report.spans))
        return 0 if ok else 1

    crash_specs = args.crash if args.crash is not None else ["sw1@5.2"]
    crashes = []
    for spec in crash_specs:
        if spec == "none":
            continue
        device, _, at_s = spec.partition("@")
        if not device or not at_s:
            print(f"error: --crash expects DEVICE@TIME, got {spec!r}", file=sys.stderr)
            return 2
        crashes.append(
            DeviceCrash(device=device, at_s=float(at_s), restart_after_s=args.restart_after)
        )
    channel = None
    if args.drop or args.delay_probability:
        channel = ChannelFault(
            drop_probability=args.drop,
            delay_probability=args.delay_probability,
            delay_s=args.delay,
        )
    plan = FaultPlan(seed=args.seed, crashes=tuple(crashes), channel=channel)

    setup = None
    if args.spread:
        from repro.apps.nat import nat_delta

        def setup(net) -> None:
            net.controller.deploy_app("flexnet://infra/nat", nat_delta(size=512))
            net.controller.migrate_app("flexnet://infra/nat", "nic1")

    report = run_chaos(
        program,
        delta,
        plan,
        recovery=not args.no_recovery,
        resume=not args.rollback,
        monitor=args.monitor,
        rate_pps=args.rate,
        duration_s=args.duration,
        update_at_s=args.at,
        setup=setup,
        observe=args.trace,
        observe_sample_every=args.sample_every,
    )
    ok = report.converged and report.violations == 0
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
        return 0 if ok else 1

    print("fault plan:")
    for line in report.fault_plan:
        print(f"  {line}")
    print(report.summary())
    print(f"  control: {report.transition['commands_dropped']} command(s) dropped, "
          f"{report.transition['command_retries']} retried")
    if report.journal:
        print("journal:")
        for entry in report.journal:
            print(f"  txn {entry['txn']}: {entry['device']} "
                  f"v{entry['old_version']}->v{entry['new_version']} "
                  f"[{entry['state']}{', ' + entry['resolution'] if entry['resolution'] else ''}]")
    if report.events:
        print("events:")
        for event in report.events:
            detail = f" ({event['detail']})" if event["detail"] else ""
            print(f"  t={event['time']:<8g} {event['kind']:10s} {event['device']}{detail}")
    if args.trace and report.spans:
        from repro.observe.trace import render_span_tree

        print("trace:")
        print(render_span_tree(report.spans))
    return 0 if ok else 1


def cmd_ha(args: argparse.Namespace) -> int:
    """Stand up the replicated controller, drive one committed update
    (optionally through a leader fail-over), and print FlexHA status;
    exit 0 iff a leader is live and every update executed cleanly."""
    import json as json_module

    from repro.apps import base_infrastructure, firewall_delta
    from repro.control.ha import FlexHA
    from repro.limits import HEARTBEAT_INTERVAL_S
    from repro.runtime.consistency import ConsistencyLevel
    from repro.simulator.packet import reset_packet_ids

    reset_packet_ids()
    net = FlexNet.standard("drmt")
    net.install(base_infrastructure())
    controller = net.controller
    ha = FlexHA(controller, node_count=args.nodes, seed=args.seed)
    loop = controller.loop

    def submit() -> None:
        delta = firewall_delta()
        if ha.submit_update(delta, consistency=ConsistencyLevel.PER_PACKET_PATH) is None:
            loop.schedule(HEARTBEAT_INTERVAL_S, submit)

    loop.schedule_at(2.0, submit)
    if args.failover:

        def kill_leader() -> None:
            leader = ha.leader_id
            if leader is None:
                return
            ha.cluster.bus.crash(leader)
            loop.schedule(2.0, lambda: ha.cluster.bus.recover(leader))

        loop.schedule_at(2.02, kill_leader)
    loop.run_until(8.0)
    for device in controller.devices.values():
        device.settle(loop.now)

    ok = (
        ha.leader_id is not None
        and ha.executed_updates >= 1
        and not ha.update_errors
    )
    if args.json:
        print(json_module.dumps(ha.status(), indent=2))
    else:
        print(ha.summary())
    return 0 if ok else 1


def cmd_scale(args: argparse.Namespace) -> int:
    """Run the E20 pod-fabric workload sharded across worker processes
    (FlexScale). With ``--differential`` also run the single-process
    reference on an identical fresh net/workload and byte-compare the
    traffic reports; exit 1 on any divergence."""
    import json as json_module

    from repro.scale import e20_net, e20_workload, reference_run, run_sharded
    from repro.simulator.packet import reset_packet_ids

    def fresh_arm():
        # Same seeds + a packet-id reset give both arms byte-identical
        # inputs; each arm gets its own net because runs mutate state.
        reset_packet_ids()
        net = e20_net(pods=args.pods)
        workload = e20_workload(args.packets, rate_pps=args.rate, seed=args.seed)
        return net, workload

    net, workload = fresh_arm()
    if args.batch:
        net.engine(batch=True)
    report = run_sharded(
        net,
        workload,
        args.shards,
        backend=args.backend,
        seed=args.plan_seed,
        drain_s=args.drain,
    )
    divergences = None
    if args.differential:
        ref_net, ref_workload = fresh_arm()
        if args.batch:
            # Batch the reference arm too: per-packet bit-exactness makes
            # the comparison check sharding, not batching — and E21's
            # differential gate already pins batched == interpreter.
            ref_net.engine(batch=True)
        reference = reference_run(ref_net, ref_workload, drain_s=args.drain)
        identical = json_module.dumps(
            reference.to_dict(), sort_keys=True
        ) == json_module.dumps(report.traffic_dict(), sort_keys=True)
        divergences = 0 if identical else 1

    if args.json:
        payload = report.to_dict()
        if divergences is not None:
            payload["differential"] = {"divergences": divergences}
        print(json_module.dumps(payload, indent=2))
    else:
        print(report.summary())
        if divergences is not None:
            verdict = "byte-identical" if divergences == 0 else "DIVERGED"
            print(f"  differential vs single-process: {verdict}")
    return 1 if divergences else 0


def cmd_cloud(args: argparse.Namespace) -> int:
    """Run a FlexCloud tenant-churn scenario over the rack fabric and
    report admission/coalescing/isolation. Exit 0 when the scenario
    converged with zero isolation violations and zero terminal
    failures, 1 otherwise."""
    import json as json_module

    from repro.cloud import SCENARIOS, run_scenario

    generator = SCENARIOS[args.scenario]
    kwargs = {"seed": args.seed}
    if args.tenants is not None:
        kwargs["tenants"] = args.tenants
    events = generator(**kwargs)

    chaos = None
    if args.drop:
        from repro.faults.plan import ChannelFault, FaultPlan

        chaos = FaultPlan(
            seed=args.seed, channel=ChannelFault(drop_probability=args.drop)
        )
    report = run_scenario(
        events,
        scenario=args.scenario,
        seed=args.seed,
        racks=args.racks,
        coalesce=not args.no_coalesce,
        shards=args.shards,
        probes=args.probes,
        chaos=chaos,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return 1 if (report.violations or report.failed) else 0


def _observed_run(args: argparse.Namespace, sink=None) -> FlexNet:
    """Run the ``simulate`` scenario with FlexScope enabled; shared by
    the ``trace``/``metrics``/``profile`` verbs."""
    program = parse_program(_read(args.program))
    net = FlexNet.standard(switch_arch=args.arch)
    net.observe.enable(sample_every=args.sample_every, sink=sink)
    net.install(program)
    if args.patch:
        delta = parse_delta(_read(args.patch))
        net.schedule(args.at, lambda: net.update(delta))
    net.run_traffic(rate_pps=args.rate, duration_s=args.duration, extra_time_s=2.0)
    return net


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the scenario with tracing on and render the span tree
    (``--events`` adds the global event feed: faults, journal commits,
    telemetry events)."""
    import json as json_module

    sink = open(args.sink, "w", encoding="utf-8") if args.sink else None
    try:
        net = _observed_run(args, sink=sink)
    finally:
        if sink is not None:
            sink.close()
    tracer = net.observe.tracer
    if args.json:
        print(json_module.dumps(tracer.to_dict(), indent=2))
        return 0
    print(f"{tracer.total_spans} span(s), {tracer.total_events} event(s) "
          f"(sampling 1/{net.observe.sample_every})")
    tree = tracer.render_tree()
    if tree:
        print(tree)
    if args.events:
        print("events:")
        for event in tracer.events:
            attrs = " ".join(f"{k}={event.attrs[k]}" for k in sorted(event.attrs))
            print(f"  t={event.time:<10.6f} {event.name}"
                  + (f" {attrs}" if attrs else ""))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the scenario with FlexScope on and export the metric registry
    (Prometheus text format, or JSON with ``--json``)."""
    net = _observed_run(args)
    registry = net.observe.metrics
    if args.json:
        print(registry.to_json())
    else:
        sys.stdout.write(registry.to_prometheus())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run the scenario with FlexScope on and print the per-phase
    profile (compile, placement, binpack, install, transition)."""
    import json as json_module

    net = _observed_run(args)
    profiler = net.observe.profiler
    if args.json:
        print(json_module.dumps(profiler.to_dict(include_wall=False), indent=2))
    else:
        print(profiler.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexnet", description="FlexNet runtime programmable network toolchain"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared by every verb: one definition, one help string, uniform
    # machine-readable output across the whole toolchain.
    json_parent = argparse.ArgumentParser(add_help=False)
    json_parent.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")

    certify_parser = subparsers.add_parser("certify", help="certify a FlexBPF program", parents=[json_parent])
    certify_parser.add_argument("program")
    certify_parser.set_defaults(func=cmd_certify)

    check_parser = subparsers.add_parser(
        "check", help="run FlexCheck static analysis (lints, races, overcommit)",
        parents=[json_parent],
    )
    check_parser.add_argument("program", nargs="?", default=None)
    check_parser.add_argument("--patch", default=None,
                              help="delta file to race-check against the program")
    check_parser.add_argument("--arch", default=None,
                              choices=["drmt", "rmt", "tiles"],
                              help="also run the overcommit pass against this target")
    check_parser.add_argument("--builtin", action="store_true",
                              help="check every bundled app/example program")
    check_parser.set_defaults(func=cmd_check)

    vet_parser = subparsers.add_parser(
        "vet",
        help="run FlexVet: parallelism classification, or --self determinism audit",
        parents=[json_parent],
    )
    vet_parser.add_argument("program", nargs="?", default=None)
    vet_parser.add_argument("--builtin", action="store_true",
                            help="vet every bundled app/example program")
    vet_parser.add_argument("--self", dest="self_audit", action="store_true",
                            help="audit the repro source tree for nondeterminism")
    vet_parser.add_argument("--baseline", default=None,
                            help="baseline file for --self (default: the committed one)")
    vet_parser.add_argument("--update-baseline", action="store_true",
                            help="with --self: pin current findings as the new baseline")
    vet_parser.set_defaults(func=cmd_vet)

    compile_parser = subparsers.add_parser("compile", help="compile onto the standard slice", parents=[json_parent])
    compile_parser.add_argument("program")
    compile_parser.add_argument("--arch", default="drmt",
                                choices=["drmt", "rmt", "rmt_static", "tiles"])
    compile_parser.add_argument("--objective", default="balanced",
                                choices=["balanced", "latency", "energy"])
    compile_parser.set_defaults(func=cmd_compile)

    delta_parser = subparsers.add_parser("delta", help="apply a runtime patch", parents=[json_parent])
    delta_parser.add_argument("program")
    delta_parser.add_argument("patch")
    delta_parser.set_defaults(func=cmd_delta)

    export_parser = subparsers.add_parser(
        "export", help="emit normalized (optionally patched) FlexBPF source",
        parents=[json_parent],
    )
    export_parser.add_argument("program")
    export_parser.add_argument("--patch", default=None)
    export_parser.set_defaults(func=cmd_export)

    simulate_parser = subparsers.add_parser("simulate", help="run traffic through the program", parents=[json_parent])
    simulate_parser.add_argument("program")
    simulate_parser.add_argument("--arch", default="drmt",
                                 choices=["drmt", "rmt", "rmt_static", "tiles"])
    simulate_parser.add_argument("--rate", type=float, default=1000.0)
    simulate_parser.add_argument("--duration", type=float, default=1.0)
    simulate_parser.add_argument("--patch", default=None,
                                 help="delta file to apply mid-run")
    simulate_parser.add_argument("--at", type=float, default=0.5,
                                 help="virtual time to apply the patch")
    simulate_parser.set_defaults(func=cmd_simulate)

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark the data-plane executor (FlexPath)",
        parents=[json_parent],
    )
    bench_parser.add_argument("program", nargs="?", default=None,
                              help="FlexBPF program (default: base + firewall delta)")
    bench_parser.add_argument("--fastpath", action="store_true",
                              help="also run FlexPath compiled and diff the outcomes")
    bench_parser.add_argument("--batch", action="store_true",
                              help="also run the FlexBatch batched backend and diff "
                                   "the outcomes (default program: batch-safe base)")
    bench_parser.add_argument("--batch-size", type=int, default=64)
    bench_parser.add_argument("--packets", type=int, default=2000)
    bench_parser.add_argument("--seed", type=int, default=2024)
    bench_parser.set_defaults(func=cmd_bench)

    chaos_parser = subparsers.add_parser(
        "chaos", help="run a seeded fault-injection scenario (FlexFault)",
        parents=[json_parent],
    )
    chaos_parser.add_argument("program", nargs="?", default=None,
                              help="FlexBPF program (default: bundled base infrastructure)")
    chaos_parser.add_argument("--patch", default=None,
                              help="delta applied mid-run (default: bundled firewall)")
    chaos_parser.add_argument("--seed", type=int, default=11,
                              help="fault plan seed (reports are reproducible per seed)")
    chaos_parser.add_argument("--crash", action="append", default=None,
                              metavar="DEVICE@TIME",
                              help="crash DEVICE at virtual TIME (repeatable; "
                                   "default sw1@5.2, 'none' to disable)")
    chaos_parser.add_argument("--restart-after", type=float, default=1.0,
                              help="seconds until a crashed device restarts")
    chaos_parser.add_argument("--drop", type=float, default=0.01,
                              help="control-channel drop probability")
    chaos_parser.add_argument("--delay-probability", type=float, default=0.0,
                              help="control-channel delay probability")
    chaos_parser.add_argument("--delay", type=float, default=0.005,
                              help="control-channel delay seconds (with --delay-probability)")
    chaos_parser.add_argument("--rate", type=float, default=None,
                              help="traffic rate in pps (default 1000; "
                                   "20000 with --scale)")
    chaos_parser.add_argument("--duration", type=float, default=10.0)
    chaos_parser.add_argument("--at", type=float, default=5.0,
                              help="virtual time to apply the patch")
    chaos_parser.add_argument("--no-recovery", action="store_true",
                              help="baseline: no retries, no journal resolution")
    chaos_parser.add_argument("--rollback", action="store_true",
                              help="resolve interrupted transitions by rollback, not resume")
    chaos_parser.add_argument("--monitor", action="store_true",
                              help="arm the health monitor (quarantine + detour)")
    chaos_parser.add_argument("--spread", action="store_true",
                              help="host elements on nic1 too (migrated NAT app), so "
                                   "path-level inconsistency is observable")
    chaos_parser.add_argument("--trace", action="store_true",
                              help="enable FlexScope and render the span tree "
                                   "(windows, migrations, faults)")
    chaos_parser.add_argument("--sample-every", type=int, default=64,
                              help="with --trace, sample one packet in N")
    chaos_parser.add_argument("--controller", action="store_true",
                              help="fault the replicated control plane instead "
                                   "(FlexHA: leader crash, or --partition)")
    chaos_parser.add_argument("--partition", action="store_true",
                              help="with --controller: partition the leader away "
                                   "instead of crashing it")
    chaos_parser.add_argument("--nodes", type=int, default=3,
                              help="with --controller: Raft replica count")
    chaos_parser.add_argument("--no-fencing", action="store_true",
                              help="with --controller: disable fencing epochs "
                                   "(the unfenced baseline)")
    chaos_parser.add_argument("--fault-at", type=float, default=None,
                              help="with --controller: when the leader fault "
                                   "fires (default: update time + 0.02s)")
    chaos_parser.add_argument("--heal-after", type=float, default=3.0,
                              help="with --controller --partition: partition "
                                   "duration in seconds")
    chaos_parser.add_argument("--scale", action="store_true",
                              help="fault the sharded process backend instead "
                                   "(FlexMend: worker crashes + handoff "
                                   "drops/dups, differential vs fault-free)")
    chaos_parser.add_argument("--shards", type=int, default=4,
                              help="with --scale: worker shard count")
    chaos_parser.add_argument("--pods", type=int, default=4,
                              help="with --scale: pods in the E20 fabric")
    chaos_parser.add_argument("--packets", type=int, default=600,
                              help="with --scale: workload packet count")
    chaos_parser.add_argument("--worker-crash", action="append", default=None,
                              metavar="SHARD@WINDOW",
                              help="with --scale: kill SHARD's worker at "
                                   "protocol WINDOW (repeatable; default "
                                   "0@4 and 1@6, 'none' to disable)")
    chaos_parser.add_argument("--handoff-drop", type=float, default=0.0,
                              help="with --scale: per-batch handoff drop "
                                   "probability on every shard")
    chaos_parser.add_argument("--handoff-dup", type=float, default=0.0,
                              help="with --scale: per-batch handoff "
                                   "duplication probability on every shard")
    chaos_parser.add_argument("--plan-seed", type=int, default=11,
                              help="with --scale: shard-plan seed")
    chaos_parser.add_argument("--drain", type=float, default=0.05,
                              help="with --scale: quiet horizon after the "
                                   "last injection (s)")
    chaos_parser.add_argument("--checkpoint-every", type=int, default=None,
                              help="with --scale: checkpoint cadence in "
                                   "protocol rounds (default: limits policy)")
    chaos_parser.set_defaults(func=cmd_chaos)

    ha_parser = subparsers.add_parser(
        "ha", help="controller high-availability status (FlexHA)",
        parents=[json_parent],
    )
    ha_parser.add_argument("action", choices=["status"],
                           help="'status': run a replicated-controller scenario "
                                "and print the FlexHA state")
    ha_parser.add_argument("--nodes", type=int, default=3,
                           help="Raft replica count")
    ha_parser.add_argument("--seed", type=int, default=11)
    ha_parser.add_argument("--failover", action="store_true",
                           help="crash the leader mid-update to demonstrate "
                                "fail-over")
    ha_parser.set_defaults(func=cmd_ha)

    scale_parser = subparsers.add_parser(
        "scale", help="run the sharded multi-process simulation (FlexScale)",
        parents=[json_parent],
    )
    scale_parser.add_argument("--shards", type=int, default=2,
                              help="worker shard count")
    scale_parser.add_argument("--backend", default="process",
                              choices=["process", "inline"],
                              help="'process': forked OS workers; "
                                   "'inline': same protocol, one process")
    scale_parser.add_argument("--pods", type=int, default=4,
                              help="pods in the E20 fabric")
    scale_parser.add_argument("--packets", type=int, default=2000)
    scale_parser.add_argument("--rate", type=float, default=20000.0,
                              help="workload Poisson rate (pps)")
    scale_parser.add_argument("--seed", type=int, default=2024,
                              help="workload seed")
    scale_parser.add_argument("--plan-seed", type=int, default=11,
                              help="shard-plan seed")
    scale_parser.add_argument("--drain", type=float, default=0.5,
                              help="quiet horizon after the last injection (s)")
    scale_parser.add_argument("--differential", action="store_true",
                              help="byte-compare against the single-process "
                                   "engine (exit 1 on divergence)")
    scale_parser.add_argument("--batch", action="store_true",
                              help="enable FlexBatch on the devices (both arms "
                                   "under --differential)")
    scale_parser.set_defaults(func=cmd_scale)

    cloud_parser = subparsers.add_parser(
        "cloud",
        help="run a FlexCloud tenant-churn scenario (batched admission)",
        parents=[json_parent],
    )
    cloud_parser.add_argument("--scenario", default="flash-crowd",
                              choices=["flash-crowd", "diurnal",
                                       "ddos-defense", "canary-rollout"],
                              help="seeded churn shape to generate")
    cloud_parser.add_argument("--tenants", type=int, default=2000,
                              help="tenant population size")
    cloud_parser.add_argument("--seed", type=int, default=2026,
                              help="scenario seed (reports are byte-identical per seed)")
    cloud_parser.add_argument("--racks", type=int, default=4,
                              help="racks in the pod fabric")
    cloud_parser.add_argument("--shards", type=int, default=1,
                              help="cell-partition the per-round device sweep "
                                   "(the report must not change)")
    cloud_parser.add_argument("--probes", type=int, default=32,
                              help="datapath gate probes per home device after "
                                   "convergence")
    cloud_parser.add_argument("--drop", type=float, default=0.0,
                              help="chaos: control-channel drop probability")
    cloud_parser.add_argument("--no-coalesce", action="store_true",
                              help="naive baseline: one reconfiguration window "
                                   "per delta")
    cloud_parser.set_defaults(func=cmd_cloud)

    def scenario_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("program")
        sub.add_argument("--arch", default="drmt",
                         choices=["drmt", "rmt", "rmt_static", "tiles"])
        sub.add_argument("--rate", type=float, default=1000.0)
        sub.add_argument("--duration", type=float, default=1.0)
        sub.add_argument("--patch", default=None, help="delta file to apply mid-run")
        sub.add_argument("--at", type=float, default=0.5,
                         help="virtual time to apply the patch")
        sub.add_argument("--sample-every", type=int, default=64,
                         help="sample one packet in N into the tracer")

    trace_parser = subparsers.add_parser(
        "trace", help="run with FlexScope tracing and render the span tree",
        parents=[json_parent],
    )
    scenario_args(trace_parser)
    trace_parser.add_argument("--events", action="store_true",
                              help="also print the global event feed")
    trace_parser.add_argument("--sink", default=None, metavar="FILE",
                              help="mirror closed spans to FILE as JSONL")
    trace_parser.set_defaults(func=cmd_trace)

    metrics_parser = subparsers.add_parser(
        "metrics", help="run with FlexScope and export the metric registry",
        parents=[json_parent],
    )
    scenario_args(metrics_parser)
    metrics_parser.set_defaults(func=cmd_metrics)

    profile_parser = subparsers.add_parser(
        "profile", help="run with FlexScope and print the per-phase profile",
        parents=[json_parent],
    )
    scenario_args(profile_parser)
    profile_parser.set_defaults(func=cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FlexNetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
