"""Pretty-printer: serialize a Program back to FlexBPF source.

``parse_program(print_program(p))`` reproduces ``p`` exactly (modulo
constant-width annotations, which the surface syntax does not carry) —
property-tested in ``tests/property/test_prop_printer.py``. Used by the
CLI and by operators exporting the live composed program for review.
"""

from __future__ import annotations

from repro.errors import FlexNetError
from repro.lang import ir

_INDENT = "  "


def print_expr(expr: ir.Expr) -> str:
    if isinstance(expr, ir.Const):
        return str(expr.value)
    if isinstance(expr, ir.VarRef):
        return expr.name
    if isinstance(expr, ir.FieldRef):
        return f"{expr.header}.{expr.field}"
    if isinstance(expr, ir.MetaRef):
        return f"meta.{expr.key}"
    if isinstance(expr, ir.MapGet):
        parts = ", ".join(print_expr(k) for k in expr.key)
        return f"map_get({expr.map_name}, {parts})"
    if isinstance(expr, ir.HashExpr):
        parts = ", ".join(print_expr(a) for a in expr.args)
        return f"(hash({parts}) % {expr.modulus})"
    if isinstance(expr, ir.UnOp):
        return f"{expr.op}({print_expr(expr.operand)})"
    if isinstance(expr, ir.BinOp):
        return f"({print_expr(expr.left)} {expr.kind.value} {print_expr(expr.right)})"
    raise FlexNetError(f"cannot print expression {expr!r}")


def _print_stmt(stmt: ir.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, ir.Let):
        return [f"{pad}let {stmt.name}: u{stmt.value_type.width} = {print_expr(stmt.value)};"]
    if isinstance(stmt, ir.Assign):
        return [f"{pad}{print_expr(stmt.target)} = {print_expr(stmt.value)};"]
    if isinstance(stmt, ir.MapPut):
        parts = ", ".join(print_expr(k) for k in stmt.key)
        return [f"{pad}map_put({stmt.map_name}, {parts}, {print_expr(stmt.value)});"]
    if isinstance(stmt, ir.MapDelete):
        parts = ", ".join(print_expr(k) for k in stmt.key)
        return [f"{pad}map_delete({stmt.map_name}, {parts});"]
    if isinstance(stmt, ir.If):
        lines = [f"{pad}if ({print_expr(stmt.condition)}) {{"]
        for inner in stmt.then_body:
            lines.extend(_print_stmt(inner, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(_print_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ir.Repeat):
        lines = [f"{pad}repeat {stmt.count} {{"]
        for inner in stmt.body:
            lines.extend(_print_stmt(inner, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ir.PrimitiveCall):
        args = ", ".join(print_expr(a) for a in stmt.args)
        return [f"{pad}{stmt.name}({args});"]
    raise FlexNetError(f"cannot print statement {stmt!r}")


def _print_apply_step(step: ir.ApplyStep, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(step, ir.ApplyTable):
        return [f"{pad}{step.table};"]
    if isinstance(step, ir.ApplyFunction):
        return [f"{pad}{step.function}();"]
    lines = [f"{pad}if ({print_expr(step.condition)}) {{"]
    for inner in step.then_steps:
        lines.extend(_print_apply_step(inner, depth + 1))
    if step.else_steps:
        lines.append(f"{pad}}} else {{")
        for inner in step.else_steps:
            lines.extend(_print_apply_step(inner, depth + 1))
    lines.append(f"{pad}}}")
    return lines


def print_program(program: ir.Program) -> str:
    """Serialize a validated program to FlexBPF source text."""
    lines: list[str] = [f"program {program.name} {{"]

    for header in program.headers:
        fields = " ".join(f"{name}:{width};" for name, width in header.fields)
        lines.append(f"{_INDENT}header {header.name} {{ {fields} }}")

    if program.parser is not None:
        lines.append(f"{_INDENT}parser {{")
        lines.append(f"{_INDENT * 2}start {program.parser.start_header};")
        for transition in program.parser.transitions:
            if transition.select_field is not None:
                lines.append(
                    f"{_INDENT * 2}on {transition.select_field.header}."
                    f"{transition.select_field.field} == {transition.select_value} "
                    f"extract {transition.next_header};"
                )
            else:
                lines.append(f"{_INDENT * 2}extract {transition.next_header};")
        lines.append(f"{_INDENT}}}")

    for map_def in program.maps:
        keys = ", ".join(str(ref) for ref in map_def.key_fields)
        lines.append(f"{_INDENT}map {map_def.name} {{")
        lines.append(f"{_INDENT * 2}key: {keys};")
        lines.append(f"{_INDENT * 2}value: u{map_def.value_type.width};")
        lines.append(f"{_INDENT * 2}max_entries: {map_def.max_entries};")
        lines.append(f"{_INDENT * 2}persistence: {map_def.persistence.value};")
        lines.append(f"{_INDENT}}}")

    for action in program.actions:
        params = ", ".join(f"{name}: u{t.width}" for name, t in action.params)
        lines.append(f"{_INDENT}action {action.name}({params}) {{")
        for stmt in action.body:
            lines.extend(_print_stmt(stmt, 2))
        lines.append(f"{_INDENT}}}")

    for table in program.tables:
        lines.append(f"{_INDENT}table {table.name} {{")
        if table.keys:
            keys = ", ".join(
                f"{key.field} {key.match_kind.value}" for key in table.keys
            )
            lines.append(f"{_INDENT * 2}key: {keys};")
        lines.append(f"{_INDENT * 2}actions: {', '.join(table.actions)};")
        lines.append(f"{_INDENT * 2}size: {table.size};")
        if table.default_action is not None:
            args = ", ".join(str(a) for a in table.default_action.args)
            suffix = f"({args})" if table.default_action.args else ""
            lines.append(f"{_INDENT * 2}default: {table.default_action.action}{suffix};")
        lines.append(f"{_INDENT}}}")

    for function in program.functions:
        lines.append(f"{_INDENT}func {function.name}() {{")
        for stmt in function.body:
            lines.extend(_print_stmt(stmt, 2))
        lines.append(f"{_INDENT}}}")

    if program.apply:
        lines.append(f"{_INDENT}apply {{")
        for step in program.apply:
            lines.extend(_print_apply_step(step, 2))
        lines.append(f"{_INDENT}}}")

    lines.append("}")
    return "\n".join(lines) + "\n"
