"""Runtime state for FlexBPF key/value maps.

A :class:`MapState` is the *logical* representation of one map's
contents — the representation in which state travels during migration
(§3.1: "Program migration carries its state in this logical
representation"). Devices hold :class:`MapState` objects behind their
chosen physical encoding; encodings affect capacity/performance
modelling, not the logical contents.

Eviction: when a map is full, inserts follow the policy the Spectrum
stateful-table mechanism uses — reject by default, or LRU-evict when
the map is declared ephemeral.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import FlexNetError
from repro.lang.ir import MapDef, Persistence

Key = tuple[int, ...]


class MapFullError(FlexNetError):
    """Raised when inserting into a full durable map."""


@dataclass(frozen=True)
class MapSnapshot:
    """An immutable, logical snapshot of one map — the unit of state
    migration and replication."""

    map_name: str
    entries: tuple[tuple[Key, int], ...]
    version: int

    def __len__(self) -> int:
        return len(self.entries)

    def as_dict(self) -> dict[Key, int]:
        return dict(self.entries)


class MapState:
    """Mutable per-device contents of one logical map."""

    def __init__(self, definition: MapDef):
        self.definition = definition
        self._entries: OrderedDict[Key, int] = OrderedDict()
        self._version = 0
        #: Monotonic count of mutations, used by migration protocols to
        #: detect concurrent writes during a copy phase.
        self.mutation_count = 0

    @property
    def name(self) -> str:
        return self.definition.name

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Key) -> bool:
        return tuple(key) in self._entries

    def items(self) -> Iterator[tuple[Key, int]]:
        return iter(list(self._entries.items()))

    def get(self, key: Key, default: int = 0) -> int:
        """Read a value; absent keys read as ``default`` (0), matching
        eBPF map semantics where lookups return zero-initialized state."""
        return self._entries.get(tuple(key), default)

    def put(self, key: Key, value: int) -> None:
        key = tuple(key)
        truncated = self.definition.value_type.truncate(value)
        if key not in self._entries and len(self._entries) >= self.definition.max_entries:
            if self.definition.persistence is Persistence.EPHEMERAL:
                self._entries.popitem(last=False)  # LRU eviction
            else:
                raise MapFullError(
                    f"map {self.name!r} is full ({self.definition.max_entries} entries)"
                )
        self._entries[key] = truncated
        self._entries.move_to_end(key)
        self.mutation_count += 1

    def delete(self, key: Key) -> bool:
        removed = self._entries.pop(tuple(key), None) is not None
        if removed:
            self.mutation_count += 1
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self.mutation_count += 1

    # -- migration support ---------------------------------------------------

    def snapshot(self) -> MapSnapshot:
        self._version += 1
        return MapSnapshot(
            map_name=self.name,
            entries=tuple(self._entries.items()),
            version=self._version,
        )

    def restore(self, snapshot: MapSnapshot) -> None:
        if snapshot.map_name != self.name:
            raise FlexNetError(
                f"snapshot of map {snapshot.map_name!r} cannot restore into {self.name!r}"
            )
        self._entries = OrderedDict(snapshot.entries)
        self.mutation_count += 1

    def merge(self, snapshot: MapSnapshot, combine: str = "last_writer") -> None:
        """Merge a snapshot into live state.

        ``combine='last_writer'`` overwrites existing keys;
        ``combine='sum'`` adds values (correct for counter-style maps such
        as sketches, where both halves observed disjoint packets).
        """
        for key, value in snapshot.entries:
            if combine == "sum":
                self.put(key, self.get(key) + value)
            else:
                self.put(key, value)


class MapSet:
    """All map states for one installed program on one device."""

    def __init__(self, definitions: tuple[MapDef, ...]):
        self._states = {definition.name: MapState(definition) for definition in definitions}

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __iter__(self) -> Iterator[MapState]:
        return iter(self._states.values())

    def state(self, name: str) -> MapState:
        if name not in self._states:
            raise FlexNetError(f"no such map {name!r}")
        return self._states[name]

    def names(self) -> list[str]:
        return sorted(self._states)

    def snapshot_all(self, durable_only: bool = False) -> list[MapSnapshot]:
        return [
            state.snapshot()
            for state in self._states.values()
            if not durable_only or state.definition.persistence is Persistence.DURABLE
        ]

    def adopt(self, other: "MapSet") -> None:
        """Carry state over from a previous program version: any map with
        the same name and compatible definition keeps its contents across
        a runtime reconfiguration (the paper's hitless-update semantics)."""
        for name, old_state in other._states.items():
            if name in self._states:
                new_state = self._states[name]
                same_keys = (
                    new_state.definition.key_fields == old_state.definition.key_fields
                )
                if same_keys:
                    for key, value in old_state.items():
                        if len(new_state._entries) >= new_state.definition.max_entries:
                            break
                        new_state.put(key, value)
