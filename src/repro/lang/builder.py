"""Fluent programmatic construction of FlexBPF programs.

The surface language (:mod:`repro.lang.parser`) is convenient for
operators; library code (the apps in :mod:`repro.apps`, tests, and the
delta engine) builds programs with :class:`ProgramBuilder` instead::

    builder = ProgramBuilder("infra")
    builder.header("ipv4", src=32, dst=32, proto=8, ttl=8)
    builder.table("acl", keys=[("ipv4.src", "ternary")], actions=["drop"], size=512)
    program = builder.build()

Field references may be written as ``"header.field"`` strings anywhere
an expression is expected; integers become constants.
"""

from __future__ import annotations

from repro.errors import TypeCheckError
from repro.lang import ir
from repro.lang.types import parse_type


def expr(value) -> ir.Expr:
    """Coerce a Python value into a FlexBPF expression.

    ``int`` -> :class:`Const`; ``"hdr.field"`` -> :class:`FieldRef`;
    ``"meta.key"`` -> :class:`MetaRef`; bare names -> :class:`VarRef`;
    IR expressions pass through.
    """
    if isinstance(
        value, (ir.FieldRef, ir.VarRef, ir.Const, ir.MetaRef, ir.BinOp, ir.UnOp, ir.MapGet, ir.HashExpr)
    ):
        return value
    if isinstance(value, bool):
        raise TypeCheckError("FlexBPF has no boolean literals; use comparisons")
    if isinstance(value, int):
        return ir.Const(value=value)
    if isinstance(value, str):
        if "." in value:
            prefix, _, suffix = value.partition(".")
            if prefix == "meta":
                return ir.MetaRef(key=suffix)
            return ir.FieldRef(header=prefix, field=suffix)
        return ir.VarRef(name=value)
    raise TypeCheckError(f"cannot convert {value!r} to a FlexBPF expression")


def binop(op: str, left, right) -> ir.BinOp:
    return ir.BinOp(kind=ir.BinOpKind(op), left=expr(left), right=expr(right))


def field(name: str) -> ir.FieldRef:
    header, _, field_name = name.partition(".")
    return ir.FieldRef(header=header, field=field_name)


def let(name: str, type_name: str, value) -> ir.Let:
    return ir.Let(name=name, value_type=parse_type(type_name), value=expr(value))


def assign(target, value) -> ir.Assign:
    resolved = expr(target)
    if not isinstance(resolved, (ir.VarRef, ir.FieldRef, ir.MetaRef)):
        raise TypeCheckError(f"{target!r} is not assignable")
    return ir.Assign(target=resolved, value=expr(value))


def map_get(map_name: str, *key) -> ir.MapGet:
    return ir.MapGet(map_name=map_name, key=tuple(expr(part) for part in key))


def map_put(map_name: str, *key_and_value) -> ir.MapPut:
    if len(key_and_value) < 2:
        raise TypeCheckError("map_put needs at least one key part and a value")
    parts = tuple(expr(part) for part in key_and_value)
    return ir.MapPut(map_name=map_name, key=parts[:-1], value=parts[-1])


def map_delete(map_name: str, *key) -> ir.MapDelete:
    return ir.MapDelete(map_name=map_name, key=tuple(expr(part) for part in key))


def if_(condition, then_body: list, else_body: list | None = None) -> ir.If:
    return ir.If(
        condition=expr(condition),
        then_body=tuple(then_body),
        else_body=tuple(else_body or ()),
    )


def repeat(count: int, body: list) -> ir.Repeat:
    return ir.Repeat(count=count, body=tuple(body))


def call(primitive: str, *args) -> ir.PrimitiveCall:
    return ir.PrimitiveCall(name=primitive, args=tuple(expr(a) for a in args))


def hash_of(*args, modulus: int) -> ir.HashExpr:
    return ir.HashExpr(args=tuple(expr(a) for a in args), modulus=modulus)


class ProgramBuilder:
    """Accumulates declarations and produces a validated Program."""

    def __init__(self, name: str, owner: str = "infrastructure"):
        self._name = name
        self._owner = owner
        self._headers: list[ir.HeaderDef] = []
        self._parser: ir.ParserDef | None = None
        self._maps: list[ir.MapDef] = []
        self._actions: list[ir.ActionDef] = []
        self._tables: list[ir.TableDef] = []
        self._functions: list[ir.FunctionDef] = []
        self._apply: list[ir.ApplyStep] = []

    def header(self, name: str, **fields: int) -> "ProgramBuilder":
        self._headers.append(ir.HeaderDef(name=name, fields=tuple(fields.items())))
        return self

    def parser(self, start: str, *transitions) -> "ProgramBuilder":
        """Transitions are ``(field, value, next_header)`` triples or bare
        header names for unconditional extraction."""
        resolved: list[ir.ParserTransition] = []
        for transition in transitions:
            if isinstance(transition, str):
                resolved.append(ir.ParserTransition(next_header=transition))
            else:
                select_field, select_value, next_header = transition
                resolved.append(
                    ir.ParserTransition(
                        next_header=next_header,
                        select_field=field(select_field),
                        select_value=select_value,
                    )
                )
        self._parser = ir.ParserDef(start_header=start, transitions=tuple(resolved))
        return self

    def map(
        self,
        name: str,
        keys: list[str],
        value_type: str = "u64",
        max_entries: int = 1024,
        persistence: str = "durable",
    ) -> "ProgramBuilder":
        self._maps.append(
            ir.MapDef(
                name=name,
                key_fields=tuple(field(k) for k in keys),
                value_type=parse_type(value_type),
                max_entries=max_entries,
                persistence=ir.Persistence(persistence),
            )
        )
        return self

    def action(
        self, name: str, body: list[ir.Stmt], params: list[tuple[str, str]] | None = None
    ) -> "ProgramBuilder":
        resolved_params = tuple(
            (param_name, parse_type(type_name)) for param_name, type_name in (params or [])
        )
        self._actions.append(ir.ActionDef(name=name, params=resolved_params, body=tuple(body)))
        return self

    def table(
        self,
        name: str,
        keys: list[tuple[str, str]] | list[str],
        actions: list[str],
        size: int,
        default: tuple[str, tuple[int, ...]] | str | None = None,
    ) -> "ProgramBuilder":
        resolved_keys = []
        for key in keys:
            if isinstance(key, str):
                resolved_keys.append(ir.TableKey(field=field(key), match_kind=ir.MatchKind.EXACT))
            else:
                key_field, kind = key
                resolved_keys.append(
                    ir.TableKey(field=field(key_field), match_kind=ir.MatchKind(kind))
                )
        default_call = None
        if isinstance(default, str):
            default_call = ir.ActionCall(action=default)
        elif default is not None:
            default_call = ir.ActionCall(action=default[0], args=tuple(default[1]))
        self._tables.append(
            ir.TableDef(
                name=name,
                keys=tuple(resolved_keys),
                actions=tuple(actions),
                size=size,
                default_action=default_call,
            )
        )
        return self

    def function(self, name: str, body: list[ir.Stmt]) -> "ProgramBuilder":
        self._functions.append(ir.FunctionDef(name=name, body=tuple(body)))
        return self

    def apply(self, *steps) -> "ProgramBuilder":
        """Steps are element names (resolved to table/function applies),
        or :class:`ir.ApplyIf` built via :func:`apply_if`."""
        for step in steps:
            if isinstance(step, (ir.ApplyTable, ir.ApplyFunction, ir.ApplyIf)):
                self._apply.append(step)
            elif isinstance(step, str):
                self._apply.append(self._resolve_step(step))
            else:
                raise TypeCheckError(f"cannot interpret apply step {step!r}")
        return self

    def apply_if(self, condition, then_steps: list, else_steps: list | None = None) -> ir.ApplyIf:
        return ir.ApplyIf(
            condition=expr(condition),
            then_steps=tuple(
                self._resolve_step(s) if isinstance(s, str) else s for s in then_steps
            ),
            else_steps=tuple(
                self._resolve_step(s) if isinstance(s, str) else s for s in (else_steps or [])
            ),
        )

    def _resolve_step(self, name: str) -> ir.ApplyStep:
        if any(t.name == name for t in self._tables):
            return ir.ApplyTable(table=name)
        if any(f.name == name for f in self._functions):
            return ir.ApplyFunction(function=name)
        raise TypeCheckError(f"apply step {name!r} matches no declared table or function")

    def build(self, version: int = 1, validate: bool = True) -> ir.Program:
        """Assemble the program; ``validate=False`` defers validation for
        tenant extensions that reference base-program maps or headers —
        the composer validates those against the joint namespace at
        admission time."""
        program = ir.Program(
            name=self._name,
            headers=tuple(self._headers),
            parser=self._parser,
            maps=tuple(self._maps),
            actions=tuple(self._actions),
            tables=tuple(self._tables),
            functions=tuple(self._functions),
            apply=tuple(self._apply),
            version=version,
            owner=self._owner,
        )
        return program.validate() if validate else program


__all__ = [
    "ProgramBuilder",
    "expr",
    "binop",
    "field",
    "let",
    "assign",
    "map_get",
    "map_put",
    "map_delete",
    "if_",
    "repeat",
    "call",
    "hash_of",
]
