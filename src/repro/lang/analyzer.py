"""Static certification of FlexBPF programs.

The paper requires FlexBPF programs to be "analyzable to certify
bounded execution, well-behavedness, and to enable automated
compilation to constrained targets" (§3.1). This module implements that
certification:

* **Bounded execution** — every function/action body has a statically
  computable worst-case operation count (possible because the only loop
  form is ``repeat <const>``); the per-packet bound is the sum over the
  apply block.
* **Well-behavedness** — no writes to parser-select fields after
  parsing, drop decisions are final, map footprints are declared, and
  recirculation depth is bounded.
* **Resource profile** — per-element statistics (operation counts, map
  footprints, table sizes) that the compiler turns into per-target
  demand vectors.

The analyzer returns a :class:`Certificate` — an immutable report that
the admission pipeline (:class:`repro.core.flexnet.FlexNet`) checks
before a program or extension enters the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.lang import ir

# Certification limits live in repro.limits so the runtime interpreter
# imports the exact same values; re-exported here for compatibility.
from repro.limits import MAX_MAP_ENTRIES, MAX_PACKET_OPS, RECIRCULATION_CAP

#: Per-statement/expression base costs in abstract "ops". These are
#: deliberately coarse — they exist so relative costs order correctly
#: (a sketch update is pricier than a header rewrite), not to model
#: cycle-accurate hardware.
_EXPR_COST = {
    ir.Const: 0,
    ir.VarRef: 0,
    ir.FieldRef: 1,
    ir.MetaRef: 1,
    ir.MapGet: 4,
    ir.HashExpr: 3,
}

__all__ = [
    "Analyzer",
    "Certificate",
    "ElementProfile",
    "MAX_MAP_ENTRIES",
    "MAX_PACKET_OPS",
    "RECIRCULATION_CAP",
    "certify",
]


@dataclass(frozen=True)
class ElementProfile:
    """Static statistics for one placeable element."""

    name: str
    kind: str  # "table" | "function" | "map" | "action"
    max_ops: int = 0
    map_reads: tuple[str, ...] = ()
    map_writes: tuple[str, ...] = ()
    table_entries: int = 0
    key_bits: int = 0
    is_ternary: bool = False
    is_stateful: bool = False


@dataclass(frozen=True)
class Certificate:
    """The analyzer's output: proof-carrying metadata for a program.

    ``max_packet_ops`` bounds the work any single packet can trigger;
    ``profiles`` gives per-element statistics used for placement.
    """

    program_name: str
    program_version: int
    max_packet_ops: int
    total_map_entries: int
    recirculates: bool
    profiles: dict[str, ElementProfile] = field(default_factory=dict)

    @property
    def is_stateful(self) -> bool:
        return any(p.is_stateful for p in self.profiles.values())

    def profile(self, name: str) -> ElementProfile:
        if name not in self.profiles:
            raise AnalysisError(f"no profile for element {name!r}")
        return self.profiles[name]


class Analyzer:
    """Walks a validated program and produces its :class:`Certificate`.

    Raises :class:`AnalysisError` when a bound cannot be certified or a
    well-behavedness rule is violated — such programs are refused
    admission to the network.
    """

    def __init__(self, max_packet_ops: int = MAX_PACKET_OPS, max_map_entries: int = MAX_MAP_ENTRIES):
        self._max_packet_ops = max_packet_ops
        self._max_map_entries = max_map_entries

    def certify(self, program: ir.Program) -> Certificate:
        profiles: dict[str, ElementProfile] = {}

        for map_def in program.maps:
            profiles[map_def.name] = ElementProfile(
                name=map_def.name,
                kind="map",
                table_entries=map_def.max_entries,
                key_bits=program.map_key_bits(map_def),
                is_stateful=True,
            )

        for action in program.actions:
            ops, reads, writes = self._body_cost(program, action.body)
            profiles[action.name] = ElementProfile(
                name=action.name,
                kind="action",
                max_ops=ops,
                map_reads=tuple(sorted(reads)),
                map_writes=tuple(sorted(writes)),
                is_stateful=bool(reads or writes),
            )

        for table in program.tables:
            action_ops = max(
                (profiles[a].max_ops for a in table.actions), default=0
            )
            profiles[table.name] = ElementProfile(
                name=table.name,
                kind="table",
                max_ops=1 + action_ops,  # one lookup + worst action
                table_entries=table.size,
                key_bits=program.table_key_bits(table),
                is_ternary=table.is_ternary,
                is_stateful=any(profiles[a].is_stateful for a in table.actions),
                map_reads=tuple(
                    sorted({m for a in table.actions for m in profiles[a].map_reads})
                ),
                map_writes=tuple(
                    sorted({m for a in table.actions for m in profiles[a].map_writes})
                ),
            )

        for function in program.functions:
            ops, reads, writes = self._body_cost(program, function.body)
            profiles[function.name] = ElementProfile(
                name=function.name,
                kind="function",
                max_ops=ops,
                map_reads=tuple(sorted(reads)),
                map_writes=tuple(sorted(writes)),
                is_stateful=bool(reads or writes),
            )

        max_packet_ops, recirculates = self._apply_cost(program, program.apply, profiles)
        if program.parser is not None:
            max_packet_ops += program.parser.state_count
        if recirculates:
            # A recirculating packet reruns parse + apply up to the
            # recirculation cap; the certified bound covers every rerun.
            max_packet_ops *= 1 + RECIRCULATION_CAP

        if max_packet_ops > self._max_packet_ops:
            raise AnalysisError(
                f"program {program.name!r} worst-case packet cost {max_packet_ops} ops "
                f"exceeds admission bound {self._max_packet_ops}"
            )

        total_entries = sum(m.max_entries for m in program.maps)
        if total_entries > self._max_map_entries:
            raise AnalysisError(
                f"program {program.name!r} declares {total_entries} map entries, "
                f"over the {self._max_map_entries} admission bound"
            )

        self._check_well_behaved(program)

        return Certificate(
            program_name=program.name,
            program_version=program.version,
            max_packet_ops=max_packet_ops,
            total_map_entries=total_entries,
            recirculates=recirculates,
            profiles=profiles,
        )

    # -- cost computation ----------------------------------------------------

    def _apply_cost(
        self,
        program: ir.Program,
        steps: tuple[ir.ApplyStep, ...],
        profiles: dict[str, ElementProfile],
    ) -> tuple[int, bool]:
        total = 0
        recirculates = False
        for step in steps:
            if isinstance(step, ir.ApplyTable):
                total += profiles[step.table].max_ops
                recirculates |= self._table_recirculates(program, step.table)
            elif isinstance(step, ir.ApplyFunction):
                total += profiles[step.function].max_ops
                recirculates |= _body_recirculates(program.function(step.function).body)
            else:
                then_cost, then_recirc = self._apply_cost(program, step.then_steps, profiles)
                else_cost, else_recirc = self._apply_cost(program, step.else_steps, profiles)
                total += 1 + max(then_cost, else_cost)
                recirculates |= then_recirc or else_recirc
        return total, recirculates

    def _table_recirculates(self, program: ir.Program, table_name: str) -> bool:
        table = program.table(table_name)
        return any(_body_recirculates(program.action(a).body) for a in table.actions)

    def _body_cost(
        self, program: ir.Program, body: tuple[ir.Stmt, ...]
    ) -> tuple[int, set[str], set[str]]:
        """Worst-case op count plus the map read/write sets of a body."""
        total = 0
        reads: set[str] = set()
        writes: set[str] = set()
        for stmt in body:
            cost, stmt_reads, stmt_writes = self._stmt_cost(program, stmt)
            total += cost
            reads |= stmt_reads
            writes |= stmt_writes
        return total, reads, writes

    def _stmt_cost(self, program: ir.Program, stmt: ir.Stmt) -> tuple[int, set[str], set[str]]:
        if isinstance(stmt, ir.Let):
            cost, reads = self._expr_cost(stmt.value)
            return 1 + cost, reads, set()
        if isinstance(stmt, ir.Assign):
            cost, reads = self._expr_cost(stmt.value)
            return 1 + cost, reads, set()
        if isinstance(stmt, ir.MapPut):
            cost = 4
            reads: set[str] = set()
            for part in (*stmt.key, stmt.value):
                part_cost, part_reads = self._expr_cost(part)
                cost += part_cost
                reads |= part_reads
            return cost, reads, {stmt.map_name}
        if isinstance(stmt, ir.MapDelete):
            cost = 4
            reads = set()
            for part in stmt.key:
                part_cost, part_reads = self._expr_cost(part)
                cost += part_cost
                reads |= part_reads
            return cost, reads, {stmt.map_name}
        if isinstance(stmt, ir.If):
            cond_cost, cond_reads = self._expr_cost(stmt.condition)
            then_cost, then_reads, then_writes = self._body_cost(program, stmt.then_body)
            else_cost, else_reads, else_writes = self._body_cost(program, stmt.else_body)
            return (
                1 + cond_cost + max(then_cost, else_cost),
                cond_reads | then_reads | else_reads,
                then_writes | else_writes,
            )
        if isinstance(stmt, ir.Repeat):
            body_cost, reads, writes = self._body_cost(program, stmt.body)
            return 1 + stmt.count * body_cost, reads, writes
        if isinstance(stmt, ir.PrimitiveCall):
            cost = 2
            reads = set()
            for arg in stmt.args:
                arg_cost, arg_reads = self._expr_cost(arg)
                cost += arg_cost
                reads |= arg_reads
            return cost, reads, set()
        raise AnalysisError(f"cannot cost statement {stmt!r}")  # pragma: no cover

    def _expr_cost(self, expr: ir.Expr) -> tuple[int, set[str]]:
        if isinstance(expr, ir.BinOp):
            left_cost, left_reads = self._expr_cost(expr.left)
            right_cost, right_reads = self._expr_cost(expr.right)
            return 1 + left_cost + right_cost, left_reads | right_reads
        if isinstance(expr, ir.UnOp):
            cost, reads = self._expr_cost(expr.operand)
            return 1 + cost, reads
        if isinstance(expr, ir.MapGet):
            cost = _EXPR_COST[ir.MapGet]
            reads = {expr.map_name}
            for part in expr.key:
                part_cost, part_reads = self._expr_cost(part)
                cost += part_cost
                reads |= part_reads
            return cost, reads
        if isinstance(expr, ir.HashExpr):
            cost = _EXPR_COST[ir.HashExpr]
            reads: set[str] = set()
            for arg in expr.args:
                arg_cost, arg_reads = self._expr_cost(arg)
                cost += arg_cost
                reads |= arg_reads
            return cost, reads
        return _EXPR_COST.get(type(expr), 1), set()

    # -- well-behavedness ------------------------------------------------------

    def _check_well_behaved(self, program: ir.Program) -> None:
        if program.parser is None:
            return
        select_fields = {
            transition.select_field
            for transition in program.parser.transitions
            if transition.select_field is not None
        }
        if not select_fields:
            return
        for action in program.actions:
            _forbid_select_writes(action.body, select_fields, f"action {action.name!r}")
        for function in program.functions:
            _forbid_select_writes(function.body, select_fields, f"function {function.name!r}")


def _forbid_select_writes(
    body: tuple[ir.Stmt, ...], select_fields: set[ir.FieldRef], context: str
) -> None:
    for stmt in body:
        if isinstance(stmt, ir.Assign) and isinstance(stmt.target, ir.FieldRef):
            if stmt.target in select_fields:
                raise AnalysisError(
                    f"{context} writes parser-select field {stmt.target}; this would "
                    "desynchronize reparsing on recirculation"
                )
        elif isinstance(stmt, ir.If):
            _forbid_select_writes(stmt.then_body, select_fields, context)
            _forbid_select_writes(stmt.else_body, select_fields, context)
        elif isinstance(stmt, ir.Repeat):
            _forbid_select_writes(stmt.body, select_fields, context)


def _body_recirculates(body: tuple[ir.Stmt, ...]) -> bool:
    for stmt in body:
        if isinstance(stmt, ir.PrimitiveCall) and stmt.name == "recirculate":
            return True
        if isinstance(stmt, ir.If) and (
            _body_recirculates(stmt.then_body) or _body_recirculates(stmt.else_body)
        ):
            return True
        if isinstance(stmt, ir.Repeat) and _body_recirculates(stmt.body):
            return True
    return False


def certify(program: ir.Program) -> Certificate:
    """Convenience wrapper: certify with default admission bounds."""
    return Analyzer().certify(program)
