"""Tokenizer for FlexBPF source text."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ParseError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


#: Multi-character punctuation, longest first so the scanner is greedy.
_PUNCTUATION = [
    "==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
    "{", "}", "(", ")", ";", ":", ",", ".", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "!", "~",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"0x[0-9a-fA-F]+|0b[01]+|[0-9]+")
_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def tokenize(source: str) -> list[Token]:
    """Split FlexBPF source into tokens; ``//`` and ``/* */`` comments
    and whitespace are discarded.

    Raises :class:`ParseError` on any character outside the language.
    """
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0

    def advance_position(new_position: int) -> None:
        nonlocal position, line, line_start
        chunk = source[position:new_position]
        newlines = chunk.count("\n")
        if newlines:
            line += newlines
            line_start = position + chunk.rfind("\n") + 1
        position = new_position

    while position < len(source):
        char = source[position]
        if char in " \t\r\n":
            advance_position(position + 1)
            continue
        comment = _COMMENT_RE.match(source, position)
        if comment:
            advance_position(comment.end())
            continue
        column = position - line_start + 1
        number = _NUMBER_RE.match(source, position)
        if number:
            tokens.append(Token(TokenKind.NUMBER, number.group(), line, column))
            advance_position(number.end())
            continue
        ident = _IDENT_RE.match(source, position)
        if ident:
            tokens.append(Token(TokenKind.IDENT, ident.group(), line, column))
            advance_position(ident.end())
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, position):
                tokens.append(Token(TokenKind.PUNCT, punct, line, column))
                advance_position(position + len(punct))
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, position - line_start + 1))
    return tokens


def parse_int(text: str) -> int:
    """Parse a FlexBPF numeric literal (decimal, 0x..., 0b...)."""
    if text.startswith("0x"):
        return int(text, 16)
    if text.startswith("0b"):
        return int(text, 2)
    return int(text)
