"""Recursive-descent parser for FlexBPF source text.

The grammar (informally)::

    program   := "program" NAME "{" decl* "}"
    decl      := header | parser | map | action | table | func | apply
    header    := "header" NAME "{" (field ":" WIDTH ";")* "}"
    parser    := "parser" "{" "start" NAME ";"
                   ("on" field "==" NUM "extract" NAME ";"
                    | "extract" NAME ";")* "}"
    map       := "map" NAME "{" "key" ":" fieldref,+ ";" "value" ":" TYPE ";"
                   "max_entries" ":" NUM ";" ["persistence" ":" KIND ";"] "}"
    action    := "action" NAME "(" [param,*] ")" "{" stmt* "}"
    table     := "table" NAME "{" ["key" ":" tkey,+ ";"]
                   "actions" ":" NAME,+ ";" "size" ":" NUM ";"
                   ["default" ":" NAME "(" [NUM,*] ")" ";"] "}"
    func      := "func" NAME "(" ")" "{" stmt* "}"
    apply     := "apply" "{" step* "}"

Statements and expressions follow C-like syntax with ``let``,
bounded ``repeat N { }`` loops, ``map_get``/``map_put``/``map_delete``
map operations, and a fixed set of datapath primitives.

Use :func:`parse_program` for a full validated :class:`~repro.lang.ir.Program`.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ir
from repro.lang.lexer import Token, TokenKind, parse_int, tokenize
from repro.lang.types import BitsType, parse_type

# Binary operator precedence, lowest binds loosest.
_PRECEDENCE: list[set[str]] = [
    {"||"},
    {"&&"},
    {"|"},
    {"^"},
    {"&"},
    {"==", "!="},
    {"<", "<=", ">", ">="},
    {"<<", ">>"},
    {"+", "-"},
    {"*", "/", "%"},
]

_BINOPS = {kind.value: kind for kind in ir.BinOpKind}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek_text(self, offset: int = 0) -> str:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index].text

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._current
        if token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line, token.column)
        self._advance()
        return token.text

    def _expect_number(self) -> int:
        token = self._current
        if token.kind is not TokenKind.NUMBER:
            raise ParseError(f"expected number, found {token.text!r}", token.line, token.column)
        self._advance()
        return parse_int(token.text)

    def _accept(self, text: str) -> bool:
        if self._current.text == text and self._current.kind is not TokenKind.EOF:
            self._advance()
            return True
        return False

    # -- program -----------------------------------------------------------

    def parse_program(self) -> ir.Program:
        self._expect("program")
        name = self._expect_ident()
        self._expect("{")
        headers: list[ir.HeaderDef] = []
        parser_def: ir.ParserDef | None = None
        maps: list[ir.MapDef] = []
        actions: list[ir.ActionDef] = []
        tables: list[ir.TableDef] = []
        functions: list[ir.FunctionDef] = []
        apply_names: list = []
        while not self._accept("}"):
            keyword = self._current.text
            if keyword == "header":
                headers.append(self._parse_header())
            elif keyword == "parser":
                if parser_def is not None:
                    raise ParseError("duplicate parser block", self._current.line)
                parser_def = self._parse_parser()
            elif keyword == "map":
                maps.append(self._parse_map())
            elif keyword == "action":
                actions.append(self._parse_action())
            elif keyword == "table":
                tables.append(self._parse_table())
            elif keyword == "func":
                functions.append(self._parse_function())
            elif keyword == "apply":
                apply_names = self._parse_apply()
            else:
                raise ParseError(
                    f"unexpected declaration {keyword!r}", self._current.line, self._current.column
                )
        token = self._current
        if token.kind is not TokenKind.EOF:
            raise ParseError(f"trailing input {token.text!r}", token.line, token.column)

        table_names = {t.name for t in tables}
        function_names = {f.name for f in functions}
        apply_steps = _resolve_apply(apply_names, table_names, function_names)
        return ir.Program(
            name=name,
            headers=tuple(headers),
            parser=parser_def,
            maps=tuple(maps),
            actions=tuple(actions),
            tables=tuple(tables),
            functions=tuple(functions),
            apply=apply_steps,
        )

    # -- declarations --------------------------------------------------------

    def _parse_header(self) -> ir.HeaderDef:
        self._expect("header")
        name = self._expect_ident()
        self._expect("{")
        fields: list[tuple[str, int]] = []
        while not self._accept("}"):
            field_name = self._expect_ident()
            self._expect(":")
            width = self._expect_number()
            self._expect(";")
            fields.append((field_name, width))
        return ir.HeaderDef(name=name, fields=tuple(fields))

    def _parse_parser(self) -> ir.ParserDef:
        self._expect("parser")
        self._expect("{")
        self._expect("start")
        start = self._expect_ident()
        self._expect(";")
        transitions: list[ir.ParserTransition] = []
        while not self._accept("}"):
            if self._accept("on"):
                field = self._parse_field_ref()
                self._expect("==")
                value = self._expect_number()
                self._expect("extract")
                next_header = self._expect_ident()
                self._expect(";")
                transitions.append(
                    ir.ParserTransition(
                        next_header=next_header, select_field=field, select_value=value
                    )
                )
            else:
                self._expect("extract")
                next_header = self._expect_ident()
                self._expect(";")
                transitions.append(ir.ParserTransition(next_header=next_header))
        return ir.ParserDef(start_header=start, transitions=tuple(transitions))

    def _parse_map(self) -> ir.MapDef:
        self._expect("map")
        name = self._expect_ident()
        self._expect("{")
        key_fields: list[ir.FieldRef] = []
        value_type: BitsType | None = None
        max_entries: int | None = None
        persistence = ir.Persistence.DURABLE
        while not self._accept("}"):
            attr = self._expect_ident()
            self._expect(":")
            if attr == "key":
                key_fields.append(self._parse_field_ref())
                while self._accept(","):
                    key_fields.append(self._parse_field_ref())
            elif attr == "value":
                value_type = parse_type(self._expect_ident())
            elif attr == "max_entries":
                max_entries = self._expect_number()
            elif attr == "persistence":
                persistence = ir.Persistence(self._expect_ident())
            else:
                raise ParseError(f"unknown map attribute {attr!r}", self._current.line)
            self._expect(";")
        if value_type is None or max_entries is None or not key_fields:
            raise ParseError(f"map {name!r} needs key, value and max_entries")
        return ir.MapDef(
            name=name,
            key_fields=tuple(key_fields),
            value_type=value_type,
            max_entries=max_entries,
            persistence=persistence,
        )

    def _parse_action(self) -> ir.ActionDef:
        self._expect("action")
        name = self._expect_ident()
        self._expect("(")
        params: list[tuple[str, BitsType]] = []
        if not self._accept(")"):
            while True:
                param_name = self._expect_ident()
                self._expect(":")
                params.append((param_name, parse_type(self._expect_ident())))
                if not self._accept(","):
                    break
            self._expect(")")
        body = self._parse_block()
        return ir.ActionDef(name=name, params=tuple(params), body=tuple(body))

    def _parse_table(self) -> ir.TableDef:
        self._expect("table")
        name = self._expect_ident()
        self._expect("{")
        keys: list[ir.TableKey] = []
        actions: list[str] = []
        size: int | None = None
        default: ir.ActionCall | None = None
        while not self._accept("}"):
            attr = self._expect_ident()
            self._expect(":")
            if attr == "key":
                keys.append(self._parse_table_key())
                while self._accept(","):
                    keys.append(self._parse_table_key())
            elif attr == "actions":
                actions.append(self._expect_ident())
                while self._accept(","):
                    actions.append(self._expect_ident())
            elif attr == "size":
                size = self._expect_number()
            elif attr == "default":
                action_name = self._expect_ident()
                args: list[int] = []
                if self._accept("("):
                    if not self._accept(")"):
                        args.append(self._expect_number())
                        while self._accept(","):
                            args.append(self._expect_number())
                        self._expect(")")
                default = ir.ActionCall(action=action_name, args=tuple(args))
            else:
                raise ParseError(f"unknown table attribute {attr!r}", self._current.line)
            self._expect(";")
        if size is None or not actions:
            raise ParseError(f"table {name!r} needs actions and size")
        return ir.TableDef(
            name=name, keys=tuple(keys), actions=tuple(actions), size=size, default_action=default
        )

    def _parse_table_key(self) -> ir.TableKey:
        field = self._parse_field_ref()
        kind = ir.MatchKind.EXACT
        if self._current.kind is TokenKind.IDENT and self._current.text in (
            "exact",
            "lpm",
            "ternary",
            "range",
        ):
            kind = ir.MatchKind(self._advance().text)
        return ir.TableKey(field=field, match_kind=kind)

    def _parse_function(self) -> ir.FunctionDef:
        self._expect("func")
        name = self._expect_ident()
        self._expect("(")
        self._expect(")")
        body = self._parse_block()
        return ir.FunctionDef(name=name, body=tuple(body))

    def _parse_apply(self) -> list:
        self._expect("apply")
        self._expect("{")
        return self._parse_apply_steps()

    def _parse_apply_steps(self) -> list:
        steps: list = []
        while not self._accept("}"):
            if self._accept("if"):
                self._expect("(")
                condition = self._parse_expr()
                self._expect(")")
                self._expect("{")
                then_steps = self._parse_apply_steps()
                else_steps: list = []
                if self._accept("else"):
                    self._expect("{")
                    else_steps = self._parse_apply_steps()
                steps.append(("if", condition, then_steps, else_steps))
            else:
                name = self._expect_ident()
                if self._accept("("):
                    self._expect(")")
                self._expect(";")
                steps.append(("call", name))
        return steps

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> list[ir.Stmt]:
        self._expect("{")
        body: list[ir.Stmt] = []
        while not self._accept("}"):
            body.append(self._parse_stmt())
        return body

    def _parse_stmt(self) -> ir.Stmt:
        token = self._current
        if self._accept("let"):
            name = self._expect_ident()
            self._expect(":")
            value_type = parse_type(self._expect_ident())
            self._expect("=")
            value = self._parse_expr()
            self._expect(";")
            return ir.Let(name=name, value_type=value_type, value=value)
        if self._accept("if"):
            self._expect("(")
            condition = self._parse_expr()
            self._expect(")")
            then_body = tuple(self._parse_block())
            else_body: tuple[ir.Stmt, ...] = ()
            if self._accept("else"):
                else_body = tuple(self._parse_block())
            return ir.If(condition=condition, then_body=then_body, else_body=else_body)
        if self._accept("repeat"):
            count = self._expect_number()
            body = tuple(self._parse_block())
            return ir.Repeat(count=count, body=body)
        if token.text == "map_put":
            self._advance()
            self._expect("(")
            map_name = self._expect_ident()
            parts: list[ir.Expr] = []
            while self._accept(","):
                parts.append(self._parse_expr())
            self._expect(")")
            self._expect(";")
            if len(parts) < 2:
                raise ParseError("map_put needs at least one key part and a value", token.line)
            return ir.MapPut(map_name=map_name, key=tuple(parts[:-1]), value=parts[-1])
        if token.text == "map_delete":
            self._advance()
            self._expect("(")
            map_name = self._expect_ident()
            parts = []
            while self._accept(","):
                parts.append(self._parse_expr())
            self._expect(")")
            self._expect(";")
            return ir.MapDelete(map_name=map_name, key=tuple(parts))
        if token.kind is TokenKind.IDENT and token.text in ir.PRIMITIVES:
            name = self._advance().text
            self._expect("(")
            args: list[ir.Expr] = []
            if not self._accept(")"):
                args.append(self._parse_expr())
                while self._accept(","):
                    args.append(self._parse_expr())
                self._expect(")")
            self._expect(";")
            return ir.PrimitiveCall(name=name, args=tuple(args))
        # Fallback: assignment to var / field / meta.
        target = self._parse_lvalue()
        self._expect("=")
        value = self._parse_expr()
        self._expect(";")
        return ir.Assign(target=target, value=value)

    def _parse_lvalue(self) -> ir.VarRef | ir.FieldRef | ir.MetaRef:
        name = self._expect_ident()
        if name == "meta" and self._accept("."):
            return ir.MetaRef(key=self._expect_ident())
        if self._accept("."):
            return ir.FieldRef(header=name, field=self._expect_ident())
        return ir.VarRef(name=name)

    def _parse_field_ref(self) -> ir.FieldRef:
        header = self._expect_ident()
        self._expect(".")
        field = self._expect_ident()
        return ir.FieldRef(header=header, field=field)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self, level: int = 0) -> ir.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_expr(level + 1)
        while self._current.text in _PRECEDENCE[level] and self._current.kind is TokenKind.PUNCT:
            op = self._advance().text
            right = self._parse_expr(level + 1)
            left = ir.BinOp(kind=_BINOPS[op], left=left, right=right)
        return left

    def _parse_unary(self) -> ir.Expr:
        if self._current.text in ("!", "~") and self._current.kind is TokenKind.PUNCT:
            op = self._advance().text
            return ir.UnOp(op=op, operand=self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> ir.Expr:
        token = self._current
        if self._accept("("):
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ir.Const(value=parse_int(token.text))
        if token.kind is TokenKind.IDENT:
            if token.text == "map_get":
                self._advance()
                self._expect("(")
                map_name = self._expect_ident()
                key: list[ir.Expr] = []
                while self._accept(","):
                    key.append(self._parse_expr())
                self._expect(")")
                return ir.MapGet(map_name=map_name, key=tuple(key))
            if token.text == "hash":
                self._advance()
                self._expect("(")
                args = [self._parse_expr()]
                while self._accept(","):
                    args.append(self._parse_expr())
                self._expect(")")
                self._expect("%")
                modulus = self._expect_number()
                return ir.HashExpr(args=tuple(args), modulus=modulus)
            name = self._advance().text
            if name == "meta" and self._accept("."):
                return ir.MetaRef(key=self._expect_ident())
            if self._accept("."):
                return ir.FieldRef(header=name, field=self._expect_ident())
            return ir.VarRef(name=name)
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)


def _resolve_apply(raw_steps: list, table_names: set[str], function_names: set[str]):
    steps: list[ir.ApplyStep] = []
    for step in raw_steps:
        if step[0] == "call":
            name = step[1]
            if name in table_names:
                steps.append(ir.ApplyTable(table=name))
            elif name in function_names:
                steps.append(ir.ApplyFunction(function=name))
            else:
                raise ParseError(f"apply references unknown table/function {name!r}")
        else:
            _, condition, then_raw, else_raw = step
            steps.append(
                ir.ApplyIf(
                    condition=condition,
                    then_steps=_resolve_apply(then_raw, table_names, function_names),
                    else_steps=_resolve_apply(else_raw, table_names, function_names),
                )
            )
    return tuple(steps)


def parse_program(source: str) -> ir.Program:
    """Parse and validate FlexBPF source text into a :class:`Program`."""
    tokens = tokenize(source)
    program = _Parser(tokens).parse_program()
    return program.validate()
