"""The FlexNet incremental-change DSL (§3.2 of the paper).

Runtime changes "are simply additions, deletions, or changes to the
existing programs" and should be expressible "without having to
re-specify the entire stacks all over again". This module provides:

* A set of delta *operations* (:class:`AddTable`, :class:`RemoveElements`,
  :class:`SetTableSize`, :class:`InsertApply`, ...), each of which
  transforms an immutable :class:`~repro.lang.ir.Program` into a new one.
* **Name-pattern selectors** (``fw_*``-style globs) so deltas can
  "programmatically select and modify the firewall- or CC-related
  functions in the base program" without knowing exact names.
* A textual surface syntax (:func:`parse_delta`) reusing FlexBPF
  declaration syntax for added elements.
* Joint analysis with the base program: applying a delta re-validates
  and re-certifies the result, so an ill-typed or unbounded patch is
  rejected atomically (the base program is untouched).

The output of application is ``(new_program, ChangeSet)``; the
:class:`ChangeSet` names exactly which elements changed, which is what
the incremental compiler (:mod:`repro.compiler.incremental`) minimizes
against.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, replace

from repro.errors import CompositionError, ParseError, TypeCheckError
from repro.lang import ir
from repro.lang.lexer import TokenKind, tokenize
from repro.lang.parser import _Parser


@dataclass(frozen=True)
class ChangeSet:
    """Names of elements touched by a delta, per category.

    ``apply_changed`` flags control-flow edits that may require
    re-sequencing even when no element was added or removed.
    """

    added: frozenset[str] = frozenset()
    removed: frozenset[str] = frozenset()
    modified: frozenset[str] = frozenset()
    apply_changed: bool = False

    def merge(self, other: "ChangeSet") -> "ChangeSet":
        return ChangeSet(
            added=(self.added | other.added) - other.removed,
            removed=(self.removed | other.removed) - other.added,
            modified=self.modified | other.modified,
            apply_changed=self.apply_changed or other.apply_changed,
        )

    @property
    def touched(self) -> frozenset[str]:
        return self.added | self.removed | self.modified

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.modified or self.apply_changed)


def match_elements(program: ir.Program, pattern: str, kind: str | None = None) -> list[str]:
    """Glob-match element names in a program.

    ``kind`` restricts the search to ``"table"``, ``"function"``,
    ``"map"``, or ``"action"``; None searches all placeable kinds.
    """
    pools: dict[str, list[str]] = {
        "table": [t.name for t in program.tables],
        "function": [f.name for f in program.functions],
        "map": [m.name for m in program.maps],
        "action": [a.name for a in program.actions],
    }
    if kind is not None:
        if kind not in pools:
            raise CompositionError(f"unknown element kind {kind!r}")
        names = pools[kind]
    else:
        names = [name for pool in pools.values() for name in pool]
    return sorted(name for name in names if fnmatch.fnmatchcase(name, pattern))


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------


class DeltaOp:
    """Base class: one atomic edit. Subclasses implement ``apply``."""

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        raise NotImplementedError


@dataclass(frozen=True)
class AddHeader(DeltaOp):
    header: ir.HeaderDef

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if any(h.name == self.header.name for h in program.headers):
            raise CompositionError(f"header {self.header.name!r} already exists")
        new = replace(program, headers=program.headers + (self.header,))
        return new, ChangeSet()


@dataclass(frozen=True)
class AddMap(DeltaOp):
    map_def: ir.MapDef

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.has_map(self.map_def.name):
            raise CompositionError(f"map {self.map_def.name!r} already exists")
        new = replace(program, maps=program.maps + (self.map_def,))
        return new, ChangeSet(added=frozenset({self.map_def.name}))


@dataclass(frozen=True)
class AddAction(DeltaOp):
    action: ir.ActionDef

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.has_action(self.action.name):
            raise CompositionError(f"action {self.action.name!r} already exists")
        new = replace(program, actions=program.actions + (self.action,))
        return new, ChangeSet()


@dataclass(frozen=True)
class AddTable(DeltaOp):
    table: ir.TableDef

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.has_table(self.table.name):
            raise CompositionError(f"table {self.table.name!r} already exists")
        new = replace(program, tables=program.tables + (self.table,))
        return new, ChangeSet(added=frozenset({self.table.name}))


@dataclass(frozen=True)
class AddFunction(DeltaOp):
    function: ir.FunctionDef

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.has_function(self.function.name):
            raise CompositionError(f"function {self.function.name!r} already exists")
        new = replace(program, functions=program.functions + (self.function,))
        return new, ChangeSet(added=frozenset({self.function.name}))


@dataclass(frozen=True)
class AddParserTransition(DeltaOp):
    transition: ir.ParserTransition

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.parser is None:
            raise CompositionError("program has no parser to extend")
        parser = replace(
            program.parser, transitions=program.parser.transitions + (self.transition,)
        )
        return replace(program, parser=parser), ChangeSet(apply_changed=True)


@dataclass(frozen=True)
class RemoveParserTransition(DeltaOp):
    next_header: str

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.parser is None:
            raise CompositionError("program has no parser")
        remaining = tuple(
            t for t in program.parser.transitions if t.next_header != self.next_header
        )
        if len(remaining) == len(program.parser.transitions):
            raise CompositionError(f"no parser transition extracts {self.next_header!r}")
        parser = replace(program.parser, transitions=remaining)
        return replace(program, parser=parser), ChangeSet(apply_changed=True)


@dataclass(frozen=True)
class RemoveElements(DeltaOp):
    """Remove every table/function/map matching a glob pattern, and prune
    apply-steps referencing removed elements. Actions referenced only by
    removed tables are garbage collected."""

    pattern: str
    kind: str | None = None

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        victims = set(match_elements(program, self.pattern, self.kind))
        victims -= {a.name for a in program.actions}  # actions handled by GC below
        if not victims:
            raise CompositionError(
                f"pattern {self.pattern!r} matches no removable element"
            )
        tables = tuple(t for t in program.tables if t.name not in victims)
        functions = tuple(f for f in program.functions if f.name not in victims)
        maps = tuple(m for m in program.maps if m.name not in victims)

        still_referenced = {a for t in tables for a in t.actions}
        removed_table_actions = {
            a for t in program.tables if t.name in victims for a in t.actions
        }
        orphaned = removed_table_actions - still_referenced
        actions = tuple(a for a in program.actions if a.name not in orphaned)

        new_apply = _prune_apply(program.apply, victims)
        new = replace(
            program,
            tables=tables,
            functions=functions,
            maps=maps,
            actions=actions,
            apply=new_apply,
        )
        return new, ChangeSet(removed=frozenset(victims), apply_changed=True)


@dataclass(frozen=True)
class SetTableSize(DeltaOp):
    """Resize tables matching a pattern (elastic scale up/down)."""

    pattern: str
    size: int

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        names = match_elements(program, self.pattern, "table")
        if not names:
            raise CompositionError(f"pattern {self.pattern!r} matches no table")
        tables = tuple(
            replace(t, size=self.size) if t.name in names else t for t in program.tables
        )
        return replace(program, tables=tables), ChangeSet(modified=frozenset(names))


@dataclass(frozen=True)
class SetMapEntries(DeltaOp):
    """Resize maps matching a pattern."""

    pattern: str
    max_entries: int

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        names = match_elements(program, self.pattern, "map")
        if not names:
            raise CompositionError(f"pattern {self.pattern!r} matches no map")
        maps = tuple(
            replace(m, max_entries=self.max_entries) if m.name in names else m
            for m in program.maps
        )
        return replace(program, maps=maps), ChangeSet(modified=frozenset(names))


@dataclass(frozen=True)
class AddTableActions(DeltaOp):
    """Attach extra actions to tables matching a pattern."""

    pattern: str
    actions: tuple[str, ...]

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        names = match_elements(program, self.pattern, "table")
        if not names:
            raise CompositionError(f"pattern {self.pattern!r} matches no table")
        tables = tuple(
            replace(t, actions=t.actions + tuple(a for a in self.actions if a not in t.actions))
            if t.name in names
            else t
            for t in program.tables
        )
        return replace(program, tables=tables), ChangeSet(modified=frozenset(names))


@dataclass(frozen=True)
class InsertApply(DeltaOp):
    """Insert an apply-step for an element, anchored relative to another.

    ``anchor=None`` appends at the end of the apply block.
    """

    element: str
    position: str = "after"  # "before" | "after"
    anchor: str | None = None

    def apply(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        if program.has_table(self.element):
            step: ir.ApplyStep = ir.ApplyTable(table=self.element)
        elif program.has_function(self.element):
            step = ir.ApplyFunction(function=self.element)
        else:
            raise CompositionError(f"apply insert: unknown element {self.element!r}")
        if self.anchor is None:
            new_apply = program.apply + (step,)
        else:
            new_apply, inserted = _insert_near(program.apply, step, self.anchor, self.position)
            if not inserted:
                raise CompositionError(f"apply insert: anchor {self.anchor!r} not found")
        return replace(program, apply=new_apply), ChangeSet(apply_changed=True)


@dataclass(frozen=True)
class Delta:
    """A named, ordered bundle of operations applied atomically."""

    name: str
    ops: tuple[DeltaOp, ...]
    owner: str = "infrastructure"

    def apply_to(self, program: ir.Program) -> tuple[ir.Program, ChangeSet]:
        """Apply all ops; validate the result; bump the version.

        On any failure (bad op, type error in the joint program) the
        original program is returned untouched via the raised exception —
        callers never observe a half-applied delta.
        """
        current = program
        changes = ChangeSet()
        for op in self.ops:
            current, op_changes = op.apply(current)
            changes = changes.merge(op_changes)
        current = current.bump_version().validate()
        return current, changes


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _step_name(step: ir.ApplyStep) -> str | None:
    if isinstance(step, ir.ApplyTable):
        return step.table
    if isinstance(step, ir.ApplyFunction):
        return step.function
    return None


def _prune_apply(
    steps: tuple[ir.ApplyStep, ...], victims: set[str]
) -> tuple[ir.ApplyStep, ...]:
    pruned: list[ir.ApplyStep] = []
    for step in steps:
        if isinstance(step, ir.ApplyIf):
            pruned.append(
                ir.ApplyIf(
                    condition=step.condition,
                    then_steps=_prune_apply(step.then_steps, victims),
                    else_steps=_prune_apply(step.else_steps, victims),
                )
            )
        elif _step_name(step) not in victims:
            pruned.append(step)
    return tuple(pruned)


def _insert_near(
    steps: tuple[ir.ApplyStep, ...], new_step: ir.ApplyStep, anchor: str, position: str
) -> tuple[tuple[ir.ApplyStep, ...], bool]:
    result: list[ir.ApplyStep] = []
    inserted = False
    for step in steps:
        if isinstance(step, ir.ApplyIf) and not inserted:
            then_steps, then_inserted = _insert_near(step.then_steps, new_step, anchor, position)
            else_steps, else_inserted = (
                _insert_near(step.else_steps, new_step, anchor, position)
                if not then_inserted
                else (step.else_steps, False)
            )
            if then_inserted or else_inserted:
                inserted = True
                step = ir.ApplyIf(
                    condition=step.condition, then_steps=then_steps, else_steps=else_steps
                )
            result.append(step)
            continue
        if not inserted and _step_name(step) == anchor:
            if position == "before":
                result.extend([new_step, step])
            else:
                result.extend([step, new_step])
            inserted = True
        else:
            result.append(step)
    return tuple(result), inserted


# ---------------------------------------------------------------------------
# Textual surface syntax
# ---------------------------------------------------------------------------


class _DeltaParser(_Parser):
    """Parses the textual delta DSL::

        delta add_ddos {
          add map syn_counts { key: ipv4.src; value: u32; max_entries: 4096; }
          add action drop2() { mark_drop(); }
          add table syn_filter { key: ipv4.src; actions: drop2; size: 512; }
          insert syn_filter before acl;
          remove table old_*;
          resize table acl 2048;
          resize map flow_counts 131072;
          attach drop2 to fw_*;
        }

    Added elements reuse the FlexBPF declaration grammar verbatim.
    """

    def parse_delta(self) -> Delta:
        self._expect("delta")
        name = self._expect_ident()
        self._expect("{")
        ops: list[DeltaOp] = []
        while not self._accept("}"):
            keyword = self._expect_ident()
            if keyword == "add":
                ops.append(self._parse_add())
            elif keyword == "remove":
                ops.append(self._parse_remove())
            elif keyword == "insert":
                ops.append(self._parse_insert())
            elif keyword == "resize":
                ops.append(self._parse_resize())
            elif keyword == "attach":
                ops.append(self._parse_attach())
            else:
                raise ParseError(f"unknown delta operation {keyword!r}", self._current.line)
        return Delta(name=name, ops=tuple(ops))

    def _parse_add(self) -> DeltaOp:
        kind = self._current.text
        if kind == "header":
            return AddHeader(self._parse_header())
        if kind == "map":
            return AddMap(self._parse_map())
        if kind == "action":
            return AddAction(self._parse_action())
        if kind == "table":
            return AddTable(self._parse_table())
        if kind == "func":
            return AddFunction(self._parse_function())
        if kind == "transition":
            self._advance()
            self._expect("on")
            select = self._parse_field_ref()
            self._expect("==")
            value = self._expect_number()
            self._expect("extract")
            next_header = self._expect_ident()
            self._expect(";")
            return AddParserTransition(
                ir.ParserTransition(
                    next_header=next_header, select_field=select, select_value=value
                )
            )
        raise ParseError(f"cannot add a {kind!r}", self._current.line)

    def _parse_pattern(self) -> str:
        # A pattern is an identifier possibly containing '*' punctuation.
        parts = [self._expect_ident() if self._current.kind is TokenKind.IDENT else ""]
        if not parts[0]:
            self._expect("*")
            parts[0] = "*"
        while self._current.text == "*":
            self._advance()
            parts.append("*")
            if self._current.kind is TokenKind.IDENT:
                parts.append(self._expect_ident())
        return "".join(parts)

    def _parse_remove(self) -> DeltaOp:
        kind = self._expect_ident()
        if kind == "transition":
            next_header = self._expect_ident()
            self._expect(";")
            return RemoveParserTransition(next_header=next_header)
        if kind not in ("table", "func", "map"):
            raise ParseError(f"cannot remove a {kind!r}", self._current.line)
        pattern = self._parse_pattern()
        self._expect(";")
        kind_name = "function" if kind == "func" else kind
        return RemoveElements(pattern=pattern, kind=kind_name)

    def _parse_insert(self) -> DeltaOp:
        element = self._expect_ident()
        position = "after"
        anchor = None
        if self._current.text in ("before", "after"):
            position = self._advance().text
            anchor = self._expect_ident()
        self._expect(";")
        return InsertApply(element=element, position=position, anchor=anchor)

    def _parse_resize(self) -> DeltaOp:
        kind = self._expect_ident()
        pattern = self._parse_pattern()
        size = self._expect_number()
        self._expect(";")
        if kind == "table":
            return SetTableSize(pattern=pattern, size=size)
        if kind == "map":
            return SetMapEntries(pattern=pattern, max_entries=size)
        raise ParseError(f"cannot resize a {kind!r}", self._current.line)

    def _parse_attach(self) -> DeltaOp:
        action = self._expect_ident()
        self._expect("to")
        pattern = self._parse_pattern()
        self._expect(";")
        return AddTableActions(pattern=pattern, actions=(action,))


def parse_delta(source: str) -> Delta:
    """Parse textual delta DSL into a :class:`Delta`."""
    return _DeltaParser(tokenize(source)).parse_delta()


def apply_delta(program: ir.Program, delta: Delta) -> tuple[ir.Program, ChangeSet]:
    """Apply a delta atomically, returning the new program and change set."""
    try:
        return delta.apply_to(program)
    except TypeCheckError as exc:
        raise CompositionError(
            f"delta {delta.name!r} produces an ill-typed program: {exc}"
        ) from exc
