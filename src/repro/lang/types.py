"""Value types for FlexBPF.

FlexBPF is deliberately small: all values are fixed-width unsigned
integers (as in P4 and eBPF map values), so the type system reduces to
bit widths plus booleans produced by comparisons. Keeping widths
explicit is what lets the compiler pick per-target state encodings and
size match/action tables (key width x entries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TypeCheckError


@dataclass(frozen=True)
class BitsType:
    """An unsigned integer of ``width`` bits (P4's ``bit<W>``)."""

    width: int

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 128:
            raise TypeCheckError(f"unsupported bit width {self.width}; must be in [1, 128]")

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    def truncate(self, value: int) -> int:
        """Wrap ``value`` into this type's range (hardware wraparound)."""
        return value & self.max_value

    def __repr__(self) -> str:
        return f"u{self.width}"


@dataclass(frozen=True)
class BoolType:
    """The type of comparison results; not storable in maps or headers."""

    def __repr__(self) -> str:
        return "bool"


ValueType = BitsType | BoolType

#: Common aliases usable in source text (``u8`` .. ``u128``).
NAMED_TYPES: dict[str, BitsType] = {
    f"u{width}": BitsType(width) for width in (1, 8, 16, 32, 48, 64, 128)
}


def parse_type(name: str) -> BitsType:
    """Resolve a source-level type name like ``u32`` or ``bit<9>``."""
    if name in NAMED_TYPES:
        return NAMED_TYPES[name]
    if name.startswith("bit<") and name.endswith(">"):
        try:
            width = int(name[4:-1])
        except ValueError as exc:
            raise TypeCheckError(f"malformed type {name!r}") from exc
        return BitsType(width)
    if name.startswith("u"):
        try:
            return BitsType(int(name[1:]))
        except (ValueError, TypeCheckError):
            pass
    raise TypeCheckError(f"unknown type {name!r}")


def unify(left: ValueType, right: ValueType, context: str) -> ValueType:
    """Unify two operand types for a binary operation.

    Widths may differ (narrower operands are implicitly zero-extended,
    as P4 compilers and eBPF verifiers both permit for unsigned
    arithmetic); booleans only unify with booleans.
    """
    if isinstance(left, BoolType) and isinstance(right, BoolType):
        return BoolType()
    if isinstance(left, BitsType) and isinstance(right, BitsType):
        return BitsType(max(left.width, right.width))
    raise TypeCheckError(f"type mismatch in {context}: {left!r} vs {right!r}")


def require_bits(value_type: ValueType, context: str) -> BitsType:
    if not isinstance(value_type, BitsType):
        raise TypeCheckError(f"{context} requires an integer type, got {value_type!r}")
    return value_type


def require_bool(value_type: ValueType, context: str) -> BoolType:
    if not isinstance(value_type, BoolType):
        raise TypeCheckError(f"{context} requires a boolean condition, got {value_type!r}")
    return value_type
