"""FlexBPF: the FlexNet programming language (§3.1-§3.2 of the paper).

Public surface:

* :func:`repro.lang.parser.parse_program` — parse FlexBPF source.
* :class:`repro.lang.builder.ProgramBuilder` — programmatic construction.
* :func:`repro.lang.analyzer.certify` — bounded-execution certification.
* :func:`repro.lang.delta.parse_delta` / :func:`repro.lang.delta.apply_delta`
  — the incremental change DSL.
* :class:`repro.lang.composition.Composer` — tenant datapath composition.
"""

from repro.lang.analyzer import Analyzer, Certificate, certify
from repro.lang.builder import ProgramBuilder
from repro.lang.delta import ChangeSet, Delta, apply_delta, parse_delta
from repro.lang.composition import Composer, Permission, TenantSpec
from repro.lang.ir import Program
from repro.lang.parser import parse_program
from repro.lang.printer import print_program

__all__ = [
    "Analyzer",
    "Certificate",
    "ChangeSet",
    "Composer",
    "Delta",
    "Permission",
    "Program",
    "ProgramBuilder",
    "TenantSpec",
    "apply_delta",
    "certify",
    "parse_delta",
    "parse_program",
    "print_program",
]
