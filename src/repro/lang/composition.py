"""Datapath composition: layering tenant extensions over the base (§3.2).

The paper's deployment scenario: the operator maintains a trusted
"infrastructure" program; tenants inject "extension" programs that are
admitted after access-control validation and isolated from each other
(VLAN-based isolation). This module implements:

* **Namespacing** — tenant elements are renamed ``<tenant>__<name>``
  so independent extensions never collide; all intra-program references
  (map ops, table actions, apply steps) are rewritten consistently.
* **VLAN isolation** — each extension's apply block is guarded by
  ``meta.vlan_id == <tenant vlan>`` so a tenant's logic only ever sees
  its own traffic.
* **Access control** — a :class:`Permission` limits which base-program
  elements a tenant may reference, which primitives it may invoke, and
  how much state it may declare; violations raise
  :class:`~repro.errors.AccessControlError` at admission time.
* **Shared-code detection** — structurally identical functions across
  tenants are reported as dedup candidates (the optimization opportunity
  the paper calls out).
* **Conflict detection** — two extensions writing the same header field
  of shared headers is flagged; the composer refuses unless an explicit
  priority order resolves it.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field, replace

from repro.errors import AccessControlError, CompositionError
from repro.lang import ir


@dataclass(frozen=True)
class Permission:
    """What a tenant extension is allowed to do."""

    #: Glob patterns of base-program maps the tenant may read.
    readable_base_maps: tuple[str, ...] = ()
    #: Primitives the tenant may invoke (default: forwarding-safe subset).
    allowed_primitives: frozenset[str] = frozenset(
        {"mark_drop", "set_port", "no_op", "emit_digest", "set_queue"}
    )
    #: Cap on total declared map entries across the extension.
    max_map_entries: int = 100_000
    #: Cap on total declared table entries.
    max_table_entries: int = 100_000
    #: May the extension parse new header types?
    may_extend_parser: bool = False
    #: Glob patterns of shared header fields (``"ipv4.ttl"``-style) the
    #: tenant may write. ``None`` means legacy-unrestricted (any field);
    #: an empty tuple means the tenant may write no base field at all.
    writable_fields: tuple[str, ...] | None = None


@dataclass(frozen=True)
class TenantSpec:
    """Identity and isolation parameters of one tenant."""

    name: str
    vlan_id: int
    permission: Permission = field(default_factory=Permission)


@dataclass(frozen=True)
class SharedCode:
    """A dedup candidate: structurally identical functions in >= 2 tenants."""

    canonical: str
    duplicates: tuple[str, ...]


@dataclass(frozen=True)
class FieldConflict:
    """Two extensions write the same shared header field."""

    field_ref: ir.FieldRef
    writers: tuple[str, ...]


@dataclass(frozen=True)
class CompositionReport:
    composed: ir.Program
    tenants: tuple[str, ...]
    shared_code: tuple[SharedCode, ...]
    conflicts: tuple[FieldConflict, ...]


def _touches_maps(body: tuple[ir.Stmt, ...]) -> bool:
    """True if the body reads or writes any map."""

    def expr_touches(expression: ir.Expr) -> bool:
        if isinstance(expression, ir.MapGet):
            return True
        if isinstance(expression, ir.BinOp):
            return expr_touches(expression.left) or expr_touches(expression.right)
        if isinstance(expression, ir.UnOp):
            return expr_touches(expression.operand)
        if isinstance(expression, ir.HashExpr):
            return any(expr_touches(a) for a in expression.args)
        return False

    for statement in body:
        if isinstance(statement, (ir.MapPut, ir.MapDelete)):
            return True
        if isinstance(statement, (ir.Let, ir.Assign)) and expr_touches(statement.value):
            return True
        if isinstance(statement, ir.If):
            if expr_touches(statement.condition):
                return True
            if _touches_maps(statement.then_body) or _touches_maps(statement.else_body):
                return True
        if isinstance(statement, ir.Repeat) and _touches_maps(statement.body):
            return True
        if isinstance(statement, ir.PrimitiveCall) and any(
            expr_touches(a) for a in statement.args
        ):
            return True
    return False


def _dedupe_functions(
    functions: list[ir.FunctionDef],
    apply_steps: list[ir.ApplyStep],
    shared: tuple[SharedCode, ...],
    base_function_names: set[str],
) -> tuple[list[ir.FunctionDef], list[ir.ApplyStep]]:
    """Drop duplicate function bodies and rewrite apply references to the
    canonical copy."""
    alias: dict[str, str] = {}
    for group in shared:
        for duplicate in group.duplicates:
            alias[duplicate] = group.canonical
    kept = [f for f in functions if f.name not in alias]

    def rewrite(step: ir.ApplyStep) -> ir.ApplyStep:
        if isinstance(step, ir.ApplyFunction) and step.function in alias:
            return ir.ApplyFunction(function=alias[step.function])
        if isinstance(step, ir.ApplyIf):
            return ir.ApplyIf(
                condition=step.condition,
                then_steps=tuple(rewrite(s) for s in step.then_steps),
                else_steps=tuple(rewrite(s) for s in step.else_steps),
            )
        return step

    return kept, [rewrite(step) for step in apply_steps]


# ---------------------------------------------------------------------------
# Renaming machinery
# ---------------------------------------------------------------------------


def _ns(tenant: str, name: str) -> str:
    return f"{tenant}__{name}"


class _Renamer:
    """Rewrites element references inside an extension to the namespaced
    names; base-program names pass through untouched."""

    def __init__(self, tenant: str, local_names: set[str]):
        self._tenant = tenant
        self._local = local_names

    def name(self, name: str) -> str:
        return _ns(self._tenant, name) if name in self._local else name

    def expr(self, expression: ir.Expr) -> ir.Expr:
        if isinstance(expression, ir.MapGet):
            return ir.MapGet(
                map_name=self.name(expression.map_name),
                key=tuple(self.expr(k) for k in expression.key),
            )
        if isinstance(expression, ir.BinOp):
            return ir.BinOp(
                kind=expression.kind, left=self.expr(expression.left), right=self.expr(expression.right)
            )
        if isinstance(expression, ir.UnOp):
            return ir.UnOp(op=expression.op, operand=self.expr(expression.operand))
        if isinstance(expression, ir.HashExpr):
            return ir.HashExpr(
                args=tuple(self.expr(a) for a in expression.args), modulus=expression.modulus
            )
        return expression

    def stmt(self, statement: ir.Stmt) -> ir.Stmt:
        if isinstance(statement, ir.Let):
            return replace(statement, value=self.expr(statement.value))
        if isinstance(statement, ir.Assign):
            return replace(statement, value=self.expr(statement.value))
        if isinstance(statement, ir.MapPut):
            return ir.MapPut(
                map_name=self.name(statement.map_name),
                key=tuple(self.expr(k) for k in statement.key),
                value=self.expr(statement.value),
            )
        if isinstance(statement, ir.MapDelete):
            return ir.MapDelete(
                map_name=self.name(statement.map_name),
                key=tuple(self.expr(k) for k in statement.key),
            )
        if isinstance(statement, ir.If):
            return ir.If(
                condition=self.expr(statement.condition),
                then_body=tuple(self.stmt(s) for s in statement.then_body),
                else_body=tuple(self.stmt(s) for s in statement.else_body),
            )
        if isinstance(statement, ir.Repeat):
            return ir.Repeat(count=statement.count, body=tuple(self.stmt(s) for s in statement.body))
        if isinstance(statement, ir.PrimitiveCall):
            return ir.PrimitiveCall(
                name=statement.name, args=tuple(self.expr(a) for a in statement.args)
            )
        raise CompositionError(f"cannot rename statement {statement!r}")  # pragma: no cover

    def apply_step(self, step: ir.ApplyStep) -> ir.ApplyStep:
        if isinstance(step, ir.ApplyTable):
            return ir.ApplyTable(table=self.name(step.table))
        if isinstance(step, ir.ApplyFunction):
            return ir.ApplyFunction(function=self.name(step.function))
        return ir.ApplyIf(
            condition=self.expr(step.condition),
            then_steps=tuple(self.apply_step(s) for s in step.then_steps),
            else_steps=tuple(self.apply_step(s) for s in step.else_steps),
        )


# ---------------------------------------------------------------------------
# Access control validation
# ---------------------------------------------------------------------------


def validate_extension(extension: ir.Program, tenant: TenantSpec, base: ir.Program) -> None:
    """Check an extension against its tenant's permission; raise
    :class:`AccessControlError` on the first violation."""
    permission = tenant.permission

    total_map_entries = sum(m.max_entries for m in extension.maps)
    if total_map_entries > permission.max_map_entries:
        raise AccessControlError(
            f"tenant {tenant.name!r} declares {total_map_entries} map entries; "
            f"quota is {permission.max_map_entries}"
        )
    total_table_entries = sum(t.size for t in extension.tables)
    if total_table_entries > permission.max_table_entries:
        raise AccessControlError(
            f"tenant {tenant.name!r} declares {total_table_entries} table entries; "
            f"quota is {permission.max_table_entries}"
        )
    if extension.parser is not None and not permission.may_extend_parser:
        base_headers = {h.name for h in base.headers}
        new_headers = set(extension.parser.headers_extracted) - base_headers
        if new_headers:
            raise AccessControlError(
                f"tenant {tenant.name!r} parses new headers {sorted(new_headers)} "
                "without parser permission"
            )

    local_maps = {m.name for m in extension.maps}
    base_maps = {m.name for m in base.maps}
    base_headers = {h.name for h in base.headers}

    def check_field_write(target: ir.FieldRef, context: str) -> None:
        if permission.writable_fields is None:
            return  # legacy unrestricted
        if target.header not in base_headers:
            return  # tenant-local header: always writable
        if not any(
            fnmatch.fnmatchcase(str(target), pattern)
            for pattern in permission.writable_fields
        ):
            raise AccessControlError(
                f"tenant {tenant.name!r} {context} writes base field {target} "
                f"without a writable_fields grant"
            )

    def check_body(body: tuple[ir.Stmt, ...], context: str) -> None:
        for statement in body:
            if isinstance(statement, ir.Assign) and isinstance(statement.target, ir.FieldRef):
                check_field_write(statement.target, context)
            if isinstance(statement, ir.PrimitiveCall):
                if statement.name not in permission.allowed_primitives:
                    raise AccessControlError(
                        f"tenant {tenant.name!r} {context} uses forbidden primitive "
                        f"{statement.name!r}"
                    )
            elif isinstance(statement, (ir.MapPut, ir.MapDelete)):
                if statement.map_name not in local_maps:
                    raise AccessControlError(
                        f"tenant {tenant.name!r} {context} writes non-local map "
                        f"{statement.map_name!r}"
                    )
            elif isinstance(statement, ir.If):
                check_body(statement.then_body, context)
                check_body(statement.else_body, context)
            elif isinstance(statement, ir.Repeat):
                check_body(statement.body, context)
            for read in _map_reads_of(statement):
                if read in local_maps:
                    continue
                if read in base_maps and any(
                    fnmatch.fnmatchcase(read, pattern)
                    for pattern in permission.readable_base_maps
                ):
                    continue
                raise AccessControlError(
                    f"tenant {tenant.name!r} {context} reads map {read!r} without permission"
                )

    for action in extension.actions:
        check_body(action.body, f"action {action.name!r}")
    for function in extension.functions:
        check_body(function.body, f"function {function.name!r}")


def _map_reads_of(statement: ir.Stmt) -> set[str]:
    reads: set[str] = set()

    def walk_expr(expression: ir.Expr) -> None:
        if isinstance(expression, ir.MapGet):
            reads.add(expression.map_name)
            for part in expression.key:
                walk_expr(part)
        elif isinstance(expression, ir.BinOp):
            walk_expr(expression.left)
            walk_expr(expression.right)
        elif isinstance(expression, ir.UnOp):
            walk_expr(expression.operand)
        elif isinstance(expression, ir.HashExpr):
            for arg in expression.args:
                walk_expr(arg)

    if isinstance(statement, (ir.Let, ir.Assign)):
        walk_expr(statement.value)
    elif isinstance(statement, ir.MapPut):
        for part in (*statement.key, statement.value):
            walk_expr(part)
    elif isinstance(statement, ir.MapDelete):
        for part in statement.key:
            walk_expr(part)
    elif isinstance(statement, ir.If):
        walk_expr(statement.condition)
    elif isinstance(statement, ir.PrimitiveCall):
        for arg in statement.args:
            walk_expr(arg)
    return reads


# ---------------------------------------------------------------------------
# Composer
# ---------------------------------------------------------------------------


class Composer:
    """Builds the composed network program from base + admitted extensions."""

    def __init__(self, base: ir.Program):
        self._base = base.validate()
        self._extensions: dict[str, tuple[TenantSpec, ir.Program]] = {}

    @property
    def base(self) -> ir.Program:
        return self._base

    @property
    def tenant_names(self) -> list[str]:
        return sorted(self._extensions)

    def admit(self, tenant: TenantSpec, extension: ir.Program) -> None:
        """Validate and record one tenant extension (not yet composed).

        Validation happens against the *joint* namespace (extension plus
        the base program's headers and maps), because extensions may —
        with permission — read base maps and match on base headers.
        """
        if tenant.name in self._extensions:
            raise CompositionError(f"tenant {tenant.name!r} already admitted")
        self._check_header_compatibility(extension, tenant)
        extension_headers = {h.name for h in extension.headers}
        extension_maps = {m.name for m in extension.maps}
        joint = replace(
            extension,
            headers=extension.headers
            + tuple(h for h in self._base.headers if h.name not in extension_headers),
            maps=extension.maps
            + tuple(m for m in self._base.maps if m.name not in extension_maps),
        )
        joint.validate()
        validate_extension(extension, tenant, self._base)
        self._extensions[tenant.name] = (tenant, extension)

    def evict(self, tenant_name: str) -> None:
        if tenant_name not in self._extensions:
            raise CompositionError(f"tenant {tenant_name!r} not admitted")
        del self._extensions[tenant_name]

    def _check_header_compatibility(self, extension: ir.Program, tenant: TenantSpec) -> None:
        known = {h.name: (h, "the base program") for h in self._base.headers}
        for other_name, (_, other_ext) in self._extensions.items():
            for header in other_ext.headers:
                known.setdefault(header.name, (header, f"tenant {other_name!r}"))
        for header in extension.headers:
            existing = known.get(header.name)
            if existing is not None and existing[0].fields != header.fields:
                raise CompositionError(
                    f"tenant {tenant.name!r} redefines header {header.name!r} "
                    f"(declared by {existing[1]}) with a different layout"
                )

    def compose(self, dedupe_shared_code: bool = False) -> CompositionReport:
        """Produce the single composed program for the network.

        The composed apply block is the base apply followed by each
        tenant's apply guarded by its VLAN. Unresolvable shared-field
        write conflicts raise :class:`CompositionError`.

        With ``dedupe_shared_code`` the §3.2 optimization is applied:
        structurally identical *stateless* tenant functions collapse to
        one canonical copy (stateful functions reference per-tenant
        namespaced maps and can never be shared).
        """
        headers = list(self._base.headers)
        maps = list(self._base.maps)
        actions = list(self._base.actions)
        tables = list(self._base.tables)
        functions = list(self._base.functions)
        apply_steps = list(self._base.apply)
        parser = self._base.parser

        header_names = {h.name for h in headers}
        field_writers: dict[ir.FieldRef, list[str]] = {}
        self._collect_field_writes(self._base, "infrastructure", field_writers, set())

        for tenant_name in sorted(self._extensions):
            tenant, extension = self._extensions[tenant_name]
            local_names = set(extension.element_names) | {a.name for a in extension.actions}
            renamer = _Renamer(tenant.name, local_names)

            for header in extension.headers:
                if header.name not in header_names:
                    headers.append(header)
                    header_names.add(header.name)
            if extension.parser is not None and parser is not None:
                known = set(parser.headers_extracted)
                extra = tuple(
                    t for t in extension.parser.transitions if t.next_header not in known
                )
                parser = replace(parser, transitions=parser.transitions + extra)

            for map_def in extension.maps:
                maps.append(replace(map_def, name=_ns(tenant.name, map_def.name)))
            for action in extension.actions:
                actions.append(
                    ir.ActionDef(
                        name=_ns(tenant.name, action.name),
                        params=action.params,
                        body=tuple(renamer.stmt(s) for s in action.body),
                    )
                )
            for table in extension.tables:
                default = table.default_action
                if default is not None:
                    default = ir.ActionCall(
                        action=renamer.name(default.action), args=default.args
                    )
                tables.append(
                    ir.TableDef(
                        name=_ns(tenant.name, table.name),
                        keys=table.keys,
                        actions=tuple(renamer.name(a) for a in table.actions),
                        size=table.size,
                        default_action=default,
                    )
                )
            for function in extension.functions:
                functions.append(
                    ir.FunctionDef(
                        name=_ns(tenant.name, function.name),
                        body=tuple(renamer.stmt(s) for s in function.body),
                    )
                )

            guarded = ir.ApplyIf(
                condition=ir.BinOp(
                    kind=ir.BinOpKind.EQ,
                    left=ir.MetaRef(key="vlan_id"),
                    right=ir.Const(value=tenant.vlan_id),
                ),
                then_steps=tuple(renamer.apply_step(s) for s in extension.apply),
            )
            apply_steps.append(guarded)

            tenant_local = {h.name for h in extension.headers} - {
                h.name for h in self._base.headers
            }
            self._collect_field_writes(extension, tenant.name, field_writers, tenant_local)

        conflicts = tuple(
            FieldConflict(field_ref=ref, writers=tuple(sorted(set(writers))))
            for ref, writers in sorted(field_writers.items(), key=lambda kv: str(kv[0]))
            if len({w for w in writers if w != "infrastructure"}) >= 2
        )
        if conflicts:
            names = ", ".join(str(c.field_ref) for c in conflicts)
            raise CompositionError(
                f"unresolvable shared-field write conflicts between tenants: {names}"
            )

        shared = self._detect_shared_code()
        if dedupe_shared_code and shared:
            functions, apply_steps = _dedupe_functions(
                functions, apply_steps, shared, {f.name for f in self._base.functions}
            )

        composed = ir.Program(
            name=f"{self._base.name}+{len(self._extensions)}ext",
            headers=tuple(headers),
            parser=parser,
            maps=tuple(maps),
            actions=tuple(actions),
            tables=tuple(tables),
            functions=tuple(functions),
            apply=tuple(apply_steps),
            version=self._base.version,
            owner=self._base.owner,
        ).validate()

        return CompositionReport(
            composed=composed,
            tenants=tuple(sorted(self._extensions)),
            shared_code=shared,
            conflicts=(),
        )

    def _collect_field_writes(
        self,
        program: ir.Program,
        owner: str,
        sink: dict[ir.FieldRef, list[str]],
        owner_local_headers: set[str],
    ) -> None:
        def walk(body: tuple[ir.Stmt, ...]) -> None:
            for statement in body:
                if isinstance(statement, ir.Assign) and isinstance(statement.target, ir.FieldRef):
                    if statement.target.header not in owner_local_headers:
                        sink.setdefault(statement.target, []).append(owner)
                elif isinstance(statement, ir.If):
                    walk(statement.then_body)
                    walk(statement.else_body)
                elif isinstance(statement, ir.Repeat):
                    walk(statement.body)

        for action in program.actions:
            walk(action.body)
        for function in program.functions:
            walk(function.body)

    def _detect_shared_code(self) -> tuple[SharedCode, ...]:
        """Group structurally identical *stateless* tenant functions
        (same body ignoring the namespace prefix) as dedup candidates.
        Functions touching maps are excluded: after namespacing, their
        map references differ per tenant and sharing them would merge
        tenant state."""
        by_shape: dict[str, list[str]] = {}
        for tenant_name, (_, extension) in sorted(self._extensions.items()):
            for function in extension.functions:
                if _touches_maps(function.body):
                    continue
                shape = repr(function.body)
                by_shape.setdefault(shape, []).append(_ns(tenant_name, function.name))
        return tuple(
            SharedCode(canonical=names[0], duplicates=tuple(names[1:]))
            for names in by_shape.values()
            if len(names) >= 2
        )
