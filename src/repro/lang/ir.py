"""The FlexBPF intermediate representation.

The IR is a typed, validated object model of a FlexBPF program. It is
produced by the parser (:mod:`repro.lang.parser`) or the programmatic
builder (:mod:`repro.lang.builder`), certified by the analyzer
(:mod:`repro.lang.analyzer`), compiled by :mod:`repro.compiler`, and
interpreted packet-by-packet by :mod:`repro.simulator.pipeline_exec`.

Design notes
------------
* Every element (header, map, table, action, function, parser state) is
  named; names are the unit of incremental change (the delta DSL selects
  elements by name pattern) and of placement (the compiler places
  elements, not whole programs).
* Expressions and statements are immutable dataclass trees. The
  simulator interprets them directly; the analyzer walks them to bound
  execution cost. There is no separate bytecode — for a Python-hosted
  data plane an AST interpreter is both simpler and fast enough.
* ``Program`` instances are immutable once frozen; runtime changes
  produce *new* programs via :mod:`repro.lang.delta`, mirroring the
  paper's per-packet old-XOR-new consistency model (a packet holds a
  reference to exactly one immutable program version).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import TypeCheckError
from repro.lang.types import BitsType, BoolType, ValueType, require_bits, require_bool, unify

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldRef:
    """A reference to a packet header field, e.g. ``ipv4.src``."""

    header: str
    field: str

    def __str__(self) -> str:
        return f"{self.header}.{self.field}"


@dataclass(frozen=True)
class VarRef:
    """A reference to a local variable or action parameter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """An integer literal with an optional explicit width."""

    value: int
    width: int | None = None

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class MetaRef:
    """A reference to packet metadata maintained by the datapath.

    Well-known keys: ``ingress_port``, ``egress_port``, ``packet_length``,
    ``timestamp_ns``, ``drop_flag``, ``vlan_id``, ``queue_id``. Targets may
    expose more.
    """

    key: str

    def __str__(self) -> str:
        return f"meta.{self.key}"


class BinOpKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    AND = "&"
    OR = "|"
    XOR = "^"
    SHL = "<<"
    SHR = ">>"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    LAND = "&&"
    LOR = "||"


#: Operators producing booleans from integer operands.
COMPARISONS = frozenset(
    {BinOpKind.EQ, BinOpKind.NE, BinOpKind.LT, BinOpKind.LE, BinOpKind.GT, BinOpKind.GE}
)
#: Operators over booleans.
LOGICALS = frozenset({BinOpKind.LAND, BinOpKind.LOR})


@dataclass(frozen=True)
class BinOp:
    kind: BinOpKind
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.kind.value} {self.right})"


@dataclass(frozen=True)
class UnOp:
    """Unary operators: ``!`` (boolean not) and ``~`` (bitwise not)."""

    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class MapGet:
    """``map_get(map, key...)`` — returns the value or 0 when absent."""

    map_name: str
    key: tuple["Expr", ...]

    def __str__(self) -> str:
        keys = ", ".join(str(k) for k in self.key)
        return f"map_get({self.map_name}, {keys})"


@dataclass(frozen=True)
class HashExpr:
    """``hash(expr...) % width`` — a stable hash over the operands.

    Used by sketches and load balancers; lowered to CRC units on switch
    targets and to jhash on eBPF hosts.
    """

    args: tuple["Expr", ...]
    modulus: int

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.args)
        return f"hash({body}) % {self.modulus}"


Expr = FieldRef | VarRef | Const | MetaRef | BinOp | UnOp | MapGet | HashExpr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Let:
    """``let name: uN = expr;`` — declare and initialize a local."""

    name: str
    value_type: BitsType
    value: Expr


@dataclass(frozen=True)
class Assign:
    """Assignment to a local, header field, or metadata key."""

    target: VarRef | FieldRef | MetaRef
    value: Expr


@dataclass(frozen=True)
class MapPut:
    """``map_put(map, key..., value);``"""

    map_name: str
    key: tuple[Expr, ...]
    value: Expr


@dataclass(frozen=True)
class MapDelete:
    """``map_delete(map, key...);``"""

    map_name: str
    key: tuple[Expr, ...]


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...] = ()


@dataclass(frozen=True)
class Repeat:
    """``repeat N { ... }`` — the only loop form; N is a compile-time
    constant, which is what makes every FlexBPF program certifiably
    bounded (§3.1 of the paper)."""

    count: int
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class PrimitiveCall:
    """A call to a datapath primitive (``mark_drop``, ``set_port``,
    ``emit_digest``, ``clone``, ``recirculate``, ``no_op``)."""

    name: str
    args: tuple[Expr, ...] = ()


PRIMITIVES = frozenset(
    {"mark_drop", "set_port", "emit_digest", "clone", "recirculate", "no_op", "set_queue"}
)


Stmt = Let | Assign | MapPut | MapDelete | If | Repeat | PrimitiveCall


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeaderDef:
    """A packet header layout: ordered (field -> width-in-bits)."""

    name: str
    fields: tuple[tuple[str, int], ...]

    def field_width(self, field_name: str) -> int:
        for name, width in self.fields:
            if name == field_name:
                return width
        raise TypeCheckError(f"header {self.name!r} has no field {field_name!r}")

    def has_field(self, field_name: str) -> bool:
        return any(name == field_name for name, _ in self.fields)

    @property
    def total_bits(self) -> int:
        return sum(width for _, width in self.fields)


@dataclass(frozen=True)
class ParserTransition:
    """Extract ``next_header`` when ``field == value`` in an already
    extracted header (None field means unconditional)."""

    next_header: str
    select_field: FieldRef | None = None
    select_value: int | None = None


@dataclass(frozen=True)
class ParserDef:
    """A linearized parse graph: the start header plus conditional
    transitions. Each transition consumes one parser-state resource on
    switch targets."""

    start_header: str
    transitions: tuple[ParserTransition, ...] = ()

    @property
    def headers_extracted(self) -> tuple[str, ...]:
        seen = [self.start_header]
        for transition in self.transitions:
            if transition.next_header not in seen:
                seen.append(transition.next_header)
        return tuple(seen)

    @property
    def state_count(self) -> int:
        return 1 + len(self.transitions)


class Persistence(enum.Enum):
    """How map state relates to reconfiguration and migration."""

    EPHEMERAL = "ephemeral"  # may be dropped on reconfig (e.g., caches)
    DURABLE = "durable"  # must be migrated with the program


@dataclass(frozen=True)
class MapDef:
    """A logical key/value map — the paper's virtualized network state.

    The compiler chooses a physical encoding per target (registers,
    stateful tables, flow-instruction state, or kernel maps); see
    :mod:`repro.compiler.state_encoding`.
    """

    name: str
    key_fields: tuple[FieldRef, ...]
    value_type: BitsType
    max_entries: int
    persistence: Persistence = Persistence.DURABLE

    @property
    def key_bits(self) -> int:
        # Widths resolved against the program in Program.validate();
        # stored here only once known. Use key arity as a fallback.
        return 32 * len(self.key_fields)


class MatchKind(enum.Enum):
    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"


@dataclass(frozen=True)
class TableKey:
    field: FieldRef
    match_kind: MatchKind


@dataclass(frozen=True)
class ActionDef:
    """A named action: parameters plus a straight-line body.

    Action bodies reuse the statement IR but the validator rejects
    control flow inside actions (as RMT-class hardware does).
    """

    name: str
    params: tuple[tuple[str, BitsType], ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class ActionCall:
    action: str
    args: tuple[int, ...] = ()


@dataclass(frozen=True)
class TableDef:
    """A match/action table."""

    name: str
    keys: tuple[TableKey, ...]
    actions: tuple[str, ...]
    size: int
    default_action: ActionCall | None = None

    @property
    def is_ternary(self) -> bool:
        return any(k.match_kind in (MatchKind.TERNARY, MatchKind.RANGE) for k in self.keys)

    @property
    def is_lpm(self) -> bool:
        return any(k.match_kind == MatchKind.LPM for k in self.keys)


@dataclass(frozen=True)
class FunctionDef:
    """An eBPF-style function: arbitrary (bounded) statement body."""

    name: str
    body: tuple[Stmt, ...]


# -- apply block --------------------------------------------------------------


@dataclass(frozen=True)
class ApplyTable:
    table: str


@dataclass(frozen=True)
class ApplyFunction:
    function: str


@dataclass(frozen=True)
class ApplyIf:
    condition: Expr
    then_steps: tuple["ApplyStep", ...]
    else_steps: tuple["ApplyStep", ...] = ()


ApplyStep = ApplyTable | ApplyFunction | ApplyIf


# ---------------------------------------------------------------------------
# Program
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A complete, validated FlexBPF program.

    ``version`` is bumped by the delta engine on every runtime change so
    the consistency machinery can tag packets with the exact program
    version that processed them.
    """

    name: str
    headers: tuple[HeaderDef, ...] = ()
    parser: ParserDef | None = None
    maps: tuple[MapDef, ...] = ()
    actions: tuple[ActionDef, ...] = ()
    tables: tuple[TableDef, ...] = ()
    functions: tuple[FunctionDef, ...] = ()
    apply: tuple[ApplyStep, ...] = ()
    version: int = 1
    owner: str = "infrastructure"

    # -- lookups ----------------------------------------------------------

    def header(self, name: str) -> HeaderDef:
        return _find(self.headers, name, "header")

    def map(self, name: str) -> MapDef:
        return _find(self.maps, name, "map")

    def action(self, name: str) -> ActionDef:
        return _find(self.actions, name, "action")

    def table(self, name: str) -> TableDef:
        return _find(self.tables, name, "table")

    def function(self, name: str) -> FunctionDef:
        return _find(self.functions, name, "function")

    def has_table(self, name: str) -> bool:
        return any(t.name == name for t in self.tables)

    def has_function(self, name: str) -> bool:
        return any(f.name == name for f in self.functions)

    def has_map(self, name: str) -> bool:
        return any(m.name == name for m in self.maps)

    def has_action(self, name: str) -> bool:
        return any(a.name == name for a in self.actions)

    def field_width(self, ref: FieldRef) -> int:
        return self.header(ref.header).field_width(ref.field)

    def map_key_bits(self, map_def: MapDef) -> int:
        return sum(self.field_width(ref) for ref in map_def.key_fields)

    def table_key_bits(self, table: TableDef) -> int:
        return sum(self.field_width(key.field) for key in table.keys)

    @property
    def element_names(self) -> tuple[str, ...]:
        """All placeable element names (tables, functions, maps)."""
        return tuple(
            [t.name for t in self.tables]
            + [f.name for f in self.functions]
            + [m.name for m in self.maps]
        )

    def bump_version(self) -> "Program":
        return replace(self, version=self.version + 1)

    # -- validation --------------------------------------------------------

    def validate(self) -> "Program":
        """Resolve names and type-check every expression; returns self.

        Raises :class:`TypeCheckError` on the first inconsistency found.
        """
        _check_unique([h.name for h in self.headers], "header")
        _check_unique([m.name for m in self.maps], "map")
        _check_unique([a.name for a in self.actions], "action")
        _check_unique([t.name for t in self.tables], "table")
        _check_unique([f.name for f in self.functions], "function")
        _check_unique(list(self.element_names) + [a.name for a in self.actions], "element")

        if self.parser is not None:
            self.header(self.parser.start_header)
            for transition in self.parser.transitions:
                self.header(transition.next_header)
                if transition.select_field is not None:
                    self.field_width(transition.select_field)

        for map_def in self.maps:
            if map_def.max_entries <= 0:
                raise TypeCheckError(f"map {map_def.name!r} needs positive max_entries")
            for ref in map_def.key_fields:
                self.field_width(ref)

        for action in self.actions:
            scope = {name: value_type for name, value_type in action.params}
            for stmt in action.body:
                if isinstance(stmt, (If, Repeat)):
                    raise TypeCheckError(
                        f"action {action.name!r} contains control flow; move it to a function"
                    )
                self._check_stmt(stmt, dict(scope))

        for table in self.tables:
            if table.size <= 0:
                raise TypeCheckError(f"table {table.name!r} needs positive size")
            if not table.keys and table.default_action is None:
                raise TypeCheckError(f"table {table.name!r} is keyless with no default action")
            for key in table.keys:
                self.field_width(key.field)
            for action_name in table.actions:
                self.action(action_name)
            if table.default_action is not None:
                self._check_action_call(table.default_action, table.name)

        for function in self.functions:
            self._check_body(function.body, {})

        self._check_apply(self.apply)
        return self

    # -- internal type checking -------------------------------------------

    def _check_action_call(self, call: ActionCall, context: str) -> None:
        action = self.action(call.action)
        if len(call.args) != len(action.params):
            raise TypeCheckError(
                f"{context}: action {call.action!r} expects {len(action.params)} args, "
                f"got {len(call.args)}"
            )
        for value, (param_name, param_type) in zip(call.args, action.params):
            if value > param_type.max_value:
                raise TypeCheckError(
                    f"{context}: argument {value} overflows {param_name}: {param_type!r}"
                )

    def _check_apply(self, steps: tuple[ApplyStep, ...]) -> None:
        for step in steps:
            if isinstance(step, ApplyTable):
                self.table(step.table)
            elif isinstance(step, ApplyFunction):
                self.function(step.function)
            else:
                condition_type = self.type_of(step.condition, {})
                require_bool(condition_type, "apply-if condition")
                self._check_apply(step.then_steps)
                self._check_apply(step.else_steps)

    def _check_body(self, body: tuple[Stmt, ...], scope: dict[str, ValueType]) -> None:
        for stmt in body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: Stmt, scope: dict[str, ValueType]) -> None:
        if isinstance(stmt, Let):
            if stmt.name in scope:
                raise TypeCheckError(f"variable {stmt.name!r} redeclared")
            require_bits(self.type_of(stmt.value, scope), f"let {stmt.name}")
            scope[stmt.name] = stmt.value_type
        elif isinstance(stmt, Assign):
            value_type = self.type_of(stmt.value, scope)
            if isinstance(stmt.target, VarRef):
                if stmt.target.name not in scope:
                    raise TypeCheckError(f"assignment to undeclared variable {stmt.target.name!r}")
                unify(scope[stmt.target.name], value_type, f"assign {stmt.target.name}")
            elif isinstance(stmt.target, FieldRef):
                self.field_width(stmt.target)
                require_bits(value_type, f"assign {stmt.target}")
            else:
                require_bits(value_type, f"assign {stmt.target}")
        elif isinstance(stmt, MapPut):
            map_def = self.map(stmt.map_name)
            self._check_map_key(map_def, stmt.key, scope)
            require_bits(self.type_of(stmt.value, scope), f"map_put {stmt.map_name}")
        elif isinstance(stmt, MapDelete):
            map_def = self.map(stmt.map_name)
            self._check_map_key(map_def, stmt.key, scope)
        elif isinstance(stmt, If):
            require_bool(self.type_of(stmt.condition, scope), "if condition")
            self._check_body(stmt.then_body, dict(scope))
            self._check_body(stmt.else_body, dict(scope))
        elif isinstance(stmt, Repeat):
            if stmt.count <= 0:
                raise TypeCheckError(f"repeat count must be positive, got {stmt.count}")
            self._check_body(stmt.body, dict(scope))
        elif isinstance(stmt, PrimitiveCall):
            if stmt.name not in PRIMITIVES:
                raise TypeCheckError(f"unknown primitive {stmt.name!r}")
            for arg in stmt.args:
                require_bits(self.type_of(arg, scope), f"primitive {stmt.name}")
        else:  # pragma: no cover - exhaustiveness guard
            raise TypeCheckError(f"unknown statement {stmt!r}")

    def _check_map_key(
        self, map_def: MapDef, key: tuple[Expr, ...], scope: dict[str, ValueType]
    ) -> None:
        if len(key) != len(map_def.key_fields):
            raise TypeCheckError(
                f"map {map_def.name!r} expects {len(map_def.key_fields)} key parts, got {len(key)}"
            )
        for part in key:
            require_bits(self.type_of(part, scope), f"map key for {map_def.name}")

    def type_of(self, expr: Expr, scope: dict[str, ValueType]) -> ValueType:
        """Compute the static type of ``expr`` in ``scope``."""
        if isinstance(expr, Const):
            width = expr.width if expr.width is not None else max(expr.value.bit_length(), 1)
            if expr.value < 0:
                raise TypeCheckError("FlexBPF integers are unsigned; negative literal")
            return BitsType(min(width, 128))
        if isinstance(expr, FieldRef):
            return BitsType(self.field_width(expr))
        if isinstance(expr, MetaRef):
            return BitsType(64)
        if isinstance(expr, VarRef):
            if expr.name not in scope:
                raise TypeCheckError(f"undeclared variable {expr.name!r}")
            return scope[expr.name]
        if isinstance(expr, MapGet):
            map_def = self.map(expr.map_name)
            self._check_map_key(map_def, expr.key, scope)
            return map_def.value_type
        if isinstance(expr, HashExpr):
            if expr.modulus <= 0:
                raise TypeCheckError("hash modulus must be positive")
            for arg in expr.args:
                require_bits(self.type_of(arg, scope), "hash operand")
            return BitsType(max(expr.modulus.bit_length(), 1))
        if isinstance(expr, UnOp):
            operand_type = self.type_of(expr.operand, scope)
            if expr.op == "!":
                return require_bool(operand_type, "operator !")
            if expr.op == "~":
                return require_bits(operand_type, "operator ~")
            raise TypeCheckError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            left = self.type_of(expr.left, scope)
            right = self.type_of(expr.right, scope)
            if expr.kind in LOGICALS:
                require_bool(left, expr.kind.value)
                require_bool(right, expr.kind.value)
                return BoolType()
            require_bits(left, expr.kind.value)
            require_bits(right, expr.kind.value)
            if expr.kind in COMPARISONS:
                return BoolType()
            return unify(left, right, expr.kind.value)
        raise TypeCheckError(f"unknown expression {expr!r}")


def _find(elements, name: str, kind: str):
    for element in elements:
        if element.name == name:
            return element
    raise TypeCheckError(f"unknown {kind} {name!r}")


def _check_unique(names: list[str], kind: str) -> None:
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise TypeCheckError(f"duplicate {kind} name {name!r}")
        seen.add(name)
