"""Disaggregated RMT targets (§3.3(ii)): Nvidia/Mellanox Spectrum class.

dRMT removes static stage boundaries: a pool of match/action processors
executes the program run-to-completion, and table memory is physically
separate in shared SRAM/TCAM — "any processor can access any table, at
any point in the program". Memory and compute are therefore *pooled*
fungible, which is what makes this the paper's flagship runtime
programmable switch (their NSDI'22 system [66] is built on Spectrum):
tables and parser states can be added and removed live, hitlessly, with
changes completing well inside a second.
"""

from __future__ import annotations

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.resources import ResourceVector


def drmt_switch(
    name: str,
    processors: int = 32,
    sram_mb: float = 24.0,
    tcam_mb: float = 2.0,
    alus: int = 64,
) -> Target:
    """Build a Spectrum-like dRMT switch target (runtime programmable)."""
    capacity = ResourceVector(
        processors=processors,
        sram_kb=sram_mb * 1024.0,
        tcam_kb=tcam_mb * 1024.0,
        alus=alus,
        parser_states=256,
    )
    reconfig = ReconfigCostModel(
        # Calibrated to the paper's §2 claim: "Program changes complete
        # within a second" while the device stays live.
        add_table_s=0.30,
        remove_table_s=0.20,
        modify_entries_per_1k_s=0.002,
        parser_change_s=0.40,
        function_reload_s=0.35,
        full_reflash_s=20.0,
        hitless=True,
    )
    return Target(
        name=name,
        arch="drmt",
        capacity=capacity,
        fungibility=FungibilityClass.POOLED,
        performance=PerformanceModel(
            base_latency_ns=450.0,
            per_op_ns=1.2,
            per_op_nj=0.5,
            idle_power_w=140.0,
            throughput_mpps=1800.0,
        ),
        reconfig=reconfig,
        encodings=(StateEncoding.STATEFUL_TABLE, StateEncoding.FLOW_INSTRUCTION),
        tier="switch",
        max_function_ops=256,  # run-to-completion processors take bigger bodies
        params={"processors": processors},
    )
