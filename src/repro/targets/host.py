"""Host kernel-stack targets (§2): eBPF-programmable end hosts.

The kernel network stack is runtime customizable via eBPF: constrained
C programs are injected "without any disruption", and reconfiguration
is an atomic program swap taking milliseconds. Resources are fully
fungible but the per-packet cost is the highest of any tier.
"""

from __future__ import annotations

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.resources import ResourceVector


def host(
    name: str,
    cores: int = 16,
    core_mhz: float = 3000.0,
    memory_mb: float = 16384.0,
    kernel_maps: int = 512,
) -> Target:
    """Build a host/eBPF target."""
    capacity = ResourceVector(
        cpu_cores=cores,
        cpu_mhz=cores * core_mhz * 0.25,  # only a slice of the host serves the datapath
        sram_kb=memory_mb * 1024.0,
        kernel_maps=kernel_maps,
    )
    reconfig = ReconfigCostModel(
        add_table_s=0.002,  # eBPF program swap is effectively instant
        remove_table_s=0.002,
        modify_entries_per_1k_s=0.0005,
        parser_change_s=0.002,
        function_reload_s=0.003,
        full_reflash_s=0.01,
        hitless=True,
    )
    return Target(
        name=name,
        arch="host",
        capacity=capacity,
        fungibility=FungibilityClass.FULL,
        performance=PerformanceModel(
            base_latency_ns=9000.0,
            per_op_ns=15.0,
            per_op_nj=8.0,
            idle_power_w=90.0,
            throughput_mpps=10.0,
        ),
        reconfig=reconfig,
        encodings=(StateEncoding.KERNEL_MAP,),
        tier="host",
        max_function_ops=None,
    )
