"""Common target (device architecture) abstractions.

A :class:`Target` describes one programmable device class: its resource
capacities, how FlexBPF elements translate into resource demand, its
performance/energy envelope, which state encodings it supports, and its
runtime-reconfiguration cost model. Concrete architectures (§2 and §3.3
of the paper) live in sibling modules:

=================  ==========================================  =============
module             architecture                                 fungibility
=================  ==========================================  =============
``rmt``            RMT pipeline (Intel FlexPipe/Tofino-like)    stage-local
``drmt``           disaggregated RMT (Nvidia Spectrum-like)     pooled
``tiles``          tiles / elastic pipe (Broadcom-like)         per tile type
``smartnic``       SoC SmartNIC (BlueField/Agilio-like)         full
``fpga``           FPGA (Innova-like, partial reconfiguration)  full
``host``           host kernel eBPF                             full
=================  ==========================================  =============

Numbers are calibrated to the paper's public claims (switch table
add/remove completes well under a second; eBPF reload is milliseconds)
and to the relative ordering the literature reports; they parameterize
the simulator, they are not measurements of real silicon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CompilationError
from repro.lang.analyzer import ElementProfile
from repro.targets.resources import ResourceVector


class StateEncoding(enum.Enum):
    """Physical encodings of FlexBPF logical maps (§3.1)."""

    REGISTER = "register"  # P4 register arrays (RMT/Tofino externs)
    STATEFUL_TABLE = "stateful_table"  # Spectrum flow-keyed stateful tables
    FLOW_INSTRUCTION = "flow_instruction"  # PoF flow-state instruction sets
    KERNEL_MAP = "kernel_map"  # eBPF maps
    SOC_MEMORY = "soc_memory"  # plain memory on SoC NICs / FPGAs


class FungibilityClass(enum.Enum):
    """How freely resources move between program elements (§3.3)."""

    STAGE_LOCAL = "stage_local"  # RMT: fungible within one stage
    POOLED = "pooled"  # dRMT: one shared pool
    TILE_TYPED = "tile_typed"  # tiles: fungible within same tile type
    FULL = "full"  # NIC / FPGA / host


@dataclass(frozen=True)
class ReconfigCostModel:
    """Virtual-time costs (seconds) of runtime changes on a device.

    ``hitless`` states whether changes apply without packet loss; when
    False the device must be drained first (the compile-time baseline).
    """

    add_table_s: float
    remove_table_s: float
    modify_entries_per_1k_s: float
    parser_change_s: float
    function_reload_s: float
    full_reflash_s: float
    hitless: bool
    #: Time to drain in-flight traffic before a non-hitless change.
    drain_s: float = 0.0
    #: Time to validate/redeploy after a non-hitless change.
    redeploy_s: float = 0.0


@dataclass(frozen=True)
class PerformanceModel:
    """Per-packet latency and energy envelope of a device."""

    base_latency_ns: float  # pipeline traversal with no program work
    per_op_ns: float  # marginal latency per certified abstract op
    per_op_nj: float  # marginal energy per abstract op
    idle_power_w: float  # static power draw
    throughput_mpps: float  # line-rate packet budget

    def packet_latency_ns(self, ops: int) -> float:
        return self.base_latency_ns + ops * self.per_op_ns

    def packet_energy_nj(self, ops: int) -> float:
        return ops * self.per_op_nj


@dataclass
class Target:
    """One device class instance. Concrete architectures are built via
    the factory functions in the sibling modules; direct construction is
    supported for tests and custom targets."""

    name: str
    arch: str
    capacity: ResourceVector
    fungibility: FungibilityClass
    performance: PerformanceModel
    reconfig: ReconfigCostModel
    encodings: tuple[StateEncoding, ...]
    #: Location tier for vertical placement: "host" | "nic" | "switch".
    tier: str = "switch"
    #: Ceiling on certified ops for any single function hosted here
    #: (switch pipelines cannot run big general-purpose bodies).
    max_function_ops: int | None = None
    #: Architecture-specific extras (e.g. number of RMT stages).
    params: dict = field(default_factory=dict)

    # -- demand model ---------------------------------------------------------

    def demand(self, profile: ElementProfile) -> ResourceVector:
        """Resource demand of one element on this target.

        Subclass modules override the helpers below via ``params`` rather
        than subclassing; the generic model covers all built-ins.
        """
        if profile.kind == "table":
            return self._table_demand(profile)
        if profile.kind == "map":
            return self._map_demand(profile)
        if profile.kind == "function":
            return self._function_demand(profile)
        if profile.kind == "action":
            return ResourceVector()  # actions ride along with their tables
        raise CompilationError(f"cannot compute demand for element kind {profile.kind!r}")

    def admits(self, profile: ElementProfile) -> bool:
        """Whether this target can host the element at all (independent of
        remaining capacity)."""
        if profile.kind == "function" and self.max_function_ops is not None:
            return profile.max_ops <= self.max_function_ops
        try:
            need = self.demand(profile)
        except CompilationError:
            return False
        return need.fits_within(self.capacity)

    def parser_state_demand(self, state_count: int) -> ResourceVector:
        if "parser_states" in self.capacity:
            return ResourceVector(parser_states=state_count)
        return ResourceVector()

    # -- generic demand helpers ----------------------------------------------

    def _table_bytes(self, profile: ElementProfile) -> float:
        overhead_bits = 32  # action pointer + validity metadata per entry
        return profile.table_entries * (profile.key_bits + overhead_bits) / 8.0

    def _map_bytes(self, profile: ElementProfile) -> float:
        value_bits = 64
        return profile.table_entries * (profile.key_bits + value_bits) / 8.0

    def _table_demand(self, profile: ElementProfile) -> ResourceVector:
        kilobytes = self._table_bytes(profile) / 1024.0
        amounts: dict[str, float] = {}
        if self.arch == "tiles":
            tile_kb = self.params.get("tile_kb", 64.0)
            tiles = max(1.0, kilobytes / tile_kb)
            amounts["tcam_tiles" if profile.is_ternary else "hash_tiles"] = tiles
        elif self.arch == "fpga":
            amounts["bram_kb"] = kilobytes
            amounts["luts"] = max(1.0, profile.table_entries / 512.0)
        elif self.arch in ("smartnic", "host"):
            amounts["sram_kb"] = kilobytes
            amounts["cpu_mhz"] = max(1.0, profile.max_ops * 0.5)
        else:  # rmt / drmt switch memory
            amounts["tcam_kb" if profile.is_ternary else "sram_kb"] = kilobytes
            if profile.is_stateful:
                amounts["alus"] = 1.0
        return ResourceVector(amounts)

    def _map_demand(self, profile: ElementProfile) -> ResourceVector:
        kilobytes = self._map_bytes(profile) / 1024.0
        amounts: dict[str, float] = {}
        if self.arch == "tiles":
            tile_kb = self.params.get("tile_kb", 64.0)
            amounts["index_tiles"] = max(1.0, kilobytes / tile_kb)
        elif self.arch == "fpga":
            amounts["bram_kb"] = kilobytes
        elif self.arch == "host":
            amounts["kernel_maps"] = 1.0
            amounts["sram_kb"] = kilobytes
        elif self.arch == "smartnic":
            amounts["sram_kb"] = kilobytes
        else:
            amounts["sram_kb"] = kilobytes
            amounts["alus"] = 1.0
        return ResourceVector(amounts)

    def _function_demand(self, profile: ElementProfile) -> ResourceVector:
        amounts: dict[str, float] = {}
        if self.arch == "tiles":
            amounts["pem_elems"] = max(1.0, profile.max_ops / 8.0)
        elif self.arch == "fpga":
            amounts["luts"] = max(1.0, profile.max_ops / 4.0)
        elif self.arch in ("smartnic", "host"):
            amounts["cpu_mhz"] = max(1.0, profile.max_ops * 1.0)
        elif self.arch == "drmt":
            amounts["processors"] = max(0.25, profile.max_ops / 64.0)
            if profile.is_stateful:
                amounts["alus"] = 1.0
        else:  # rmt: only tiny functions, consuming ALUs
            amounts["alus"] = max(1.0, profile.max_ops / 8.0)
        return ResourceVector(amounts)

    # ---------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"<Target {self.name} arch={self.arch} tier={self.tier}>"
