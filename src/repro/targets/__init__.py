"""Device architecture models for every target class the paper surveys."""

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.drmt import drmt_switch
from repro.targets.fpga import fpga
from repro.targets.host import host
from repro.targets.resources import ResourceVector, total
from repro.targets.rmt import rmt_switch, stage_capacity
from repro.targets.smartnic import smartnic
from repro.targets.tiles import tiled_switch

__all__ = [
    "FungibilityClass",
    "PerformanceModel",
    "ReconfigCostModel",
    "ResourceVector",
    "StateEncoding",
    "Target",
    "drmt_switch",
    "fpga",
    "host",
    "rmt_switch",
    "smartnic",
    "stage_capacity",
    "tiled_switch",
    "total",
]
