"""Resource vectors for heterogeneous device architectures.

Every FlexNet target advertises its capacity as a :class:`ResourceVector`
— a mapping from named resource kinds (``sram_kb``, ``tcam_kb``,
``stages``, ``processors`` ...) to non-negative quantities. Program
elements carry *demand* vectors in the same space, and placement is
feasible when demand fits within remaining capacity under the target's
fungibility rules (see :mod:`repro.compiler.fungibility`).

The vector is deliberately a small value type with explicit arithmetic
rather than a numpy array: resource kinds differ per architecture, and
keeping names attached makes infeasibility diagnostics readable.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import ResourceError
from repro.util import stable_digest

#: Resource kinds understood by the built-in architectures. Targets may
#: introduce additional kinds; these are only used for validation of the
#: built-in models.
KNOWN_KINDS = frozenset(
    {
        "sram_kb",  # exact-match / index table memory
        "tcam_kb",  # ternary-match memory
        "hash_tiles",  # Trident4-style hash tiles
        "index_tiles",  # Trident4-style index tiles
        "tcam_tiles",  # Trident4-style TCAM tiles
        "pem_elems",  # Jericho2 programmable-elements-matrix slots
        "stages",  # RMT pipeline stages
        "alus",  # stateful ALUs
        "processors",  # dRMT match/action processors
        "parser_states",  # parser TCAM entries
        "luts",  # FPGA lookup tables (in thousands)
        "bram_kb",  # FPGA block RAM
        "cpu_cores",  # SoC / host cores
        "cpu_mhz",  # aggregate core budget for eBPF-style functions
        "kernel_maps",  # host eBPF map slots
    }
)


class ResourceVector(Mapping[str, float]):
    """An immutable mapping of resource-kind -> quantity.

    Supports element-wise ``+`` / ``-``, scalar ``*``, and the
    comparison helpers used by placement (:meth:`fits_within`).
    Missing kinds are treated as zero, so vectors over different kind
    sets combine naturally.
    """

    __slots__ = ("_amounts",)

    def __init__(self, amounts: Mapping[str, float] | None = None, **kwargs: float):
        merged: dict[str, float] = {}
        for source in (amounts or {}), kwargs:
            for kind, quantity in source.items():
                if quantity < 0:
                    raise ResourceError(f"negative quantity for resource {kind!r}: {quantity}")
                if quantity:
                    merged[kind] = merged.get(kind, 0.0) + float(quantity)
        self._amounts: dict[str, float] = merged

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, kind: str) -> float:
        return self._amounts.get(kind, 0.0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._amounts)

    def __len__(self) -> int:
        return len(self._amounts)

    def __contains__(self, kind: object) -> bool:
        return kind in self._amounts

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        kinds = set(self._amounts) | set(other._amounts)
        return ResourceVector({k: self[k] + other[k] for k in kinds})

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Subtract, raising :class:`ResourceError` if any kind goes negative."""
        kinds = set(self._amounts) | set(other._amounts)
        result = {}
        for kind in kinds:
            remaining = self[kind] - other[kind]
            if remaining < -1e-9:
                raise ResourceError(
                    f"resource {kind!r} overcommitted: {self[kind]} available, {other[kind]} requested"
                )
            result[kind] = max(remaining, 0.0)
        return ResourceVector(result)

    def __mul__(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ResourceError(f"cannot scale a resource vector by {factor}")
        return ResourceVector({k: v * factor for k, v in self._amounts.items()})

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        kinds = set(self._amounts) | set(other._amounts)
        return all(abs(self[k] - other[k]) < 1e-9 for k in kinds)

    def __hash__(self) -> int:
        # Builtin hash() is process-salted; resource vectors end up in
        # placement digests that must agree across runs. float() so that
        # integer and float amounts of equal value digest identically.
        return stable_digest(
            tuple(sorted((k, round(float(v), 9)) for k, v in self._amounts.items() if v))
        )

    # -- placement helpers ---------------------------------------------------

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True if every kind of this demand fits in ``capacity``."""
        return all(quantity <= capacity[kind] + 1e-9 for kind, quantity in self._amounts.items())

    def deficit_against(self, capacity: "ResourceVector") -> dict[str, float]:
        """Per-kind shortfall of ``capacity`` against this demand (empty if it fits)."""
        return {
            kind: quantity - capacity[kind]
            for kind, quantity in self._amounts.items()
            if quantity > capacity[kind] + 1e-9
        }

    def utilization_of(self, capacity: "ResourceVector") -> float:
        """Max per-kind fraction of ``capacity`` this vector consumes.

        Kinds absent from ``capacity`` count as infinitely utilized, which
        placement treats as infeasible.
        """
        fractions = []
        for kind, quantity in self._amounts.items():
            if capacity[kind] <= 0:
                return float("inf")
            fractions.append(quantity / capacity[kind])
        return max(fractions, default=0.0)

    def is_zero(self) -> bool:
        return all(v < 1e-9 for v in self._amounts.values())

    def scaled_to_kinds(self, kinds: frozenset[str]) -> "ResourceVector":
        """Project this vector onto a subset of kinds."""
        return ResourceVector({k: v for k, v in self._amounts.items() if k in kinds})

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._amounts.items()))
        return f"ResourceVector({body})"


#: The empty vector, used as the identity for accumulation.
ZERO = ResourceVector()


def total(vectors: list[ResourceVector]) -> ResourceVector:
    """Sum a list of vectors (empty list -> zero vector)."""
    acc = ZERO
    for vector in vectors:
        acc = acc + vector
    return acc
