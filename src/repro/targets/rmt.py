"""RMT pipeline targets (§3.3(i)): Intel FlexPipe / Tofino class.

The RMT architecture processes packets through a fixed number of
match/action stages; memory and ALUs belong to a stage, so resources
are only fungible *within* a stage. Placement on RMT must therefore
solve a stage-assignment problem (tables that depend on each other's
results must occupy increasing stages); see
:class:`repro.compiler.fungibility.StagePlanner`.

Stock Tofino-class hardware is compile-time programmable only: a
program change requires a full pipeline reflash behind a traffic drain.
The paper notes that "by adding runtime support to reconfigure
individual stages in a live manner ... all pipeline resources would
become fungible" — :func:`rmt_switch` exposes a ``runtime_capable``
flag to model that hypothetical upgrade.
"""

from __future__ import annotations

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.resources import ResourceVector

#: Default per-stage capacities, loosely Tofino-1 proportioned.
DEFAULT_STAGES = 12
STAGE_SRAM_KB = 1280.0
STAGE_TCAM_KB = 88.0
STAGE_ALUS = 4


def rmt_switch(
    name: str,
    stages: int = DEFAULT_STAGES,
    runtime_capable: bool = False,
    stage_sram_kb: float = STAGE_SRAM_KB,
    stage_tcam_kb: float = STAGE_TCAM_KB,
    stage_alus: int = STAGE_ALUS,
) -> Target:
    """Build an RMT pipeline switch target.

    ``runtime_capable=False`` models stock hardware: any structural
    change needs a drain + full reflash (~30 s of virtual time), the
    compile-time baseline the paper argues against. ``True`` models the
    per-stage live reconfiguration upgrade the paper hypothesizes.
    """
    capacity = ResourceVector(
        stages=stages,
        sram_kb=stage_sram_kb * stages,
        tcam_kb=stage_tcam_kb * stages,
        alus=stage_alus * stages,
        parser_states=192,
    )
    if runtime_capable:
        reconfig = ReconfigCostModel(
            add_table_s=0.40,
            remove_table_s=0.25,
            modify_entries_per_1k_s=0.002,
            parser_change_s=0.45,
            function_reload_s=0.40,
            full_reflash_s=25.0,
            hitless=True,
        )
    else:
        reconfig = ReconfigCostModel(
            add_table_s=25.0,  # any structural change == full reflash
            remove_table_s=25.0,
            modify_entries_per_1k_s=0.002,  # entry churn is control-plane only
            parser_change_s=25.0,
            function_reload_s=25.0,
            full_reflash_s=25.0,
            hitless=False,
            drain_s=5.0,
            redeploy_s=4.0,
        )
    return Target(
        name=name,
        arch="rmt",
        capacity=capacity,
        fungibility=(
            FungibilityClass.POOLED if runtime_capable else FungibilityClass.STAGE_LOCAL
        ),
        performance=PerformanceModel(
            base_latency_ns=400.0,
            per_op_ns=1.0,
            per_op_nj=0.6,
            idle_power_w=150.0,
            throughput_mpps=2000.0,
        ),
        reconfig=reconfig,
        encodings=(StateEncoding.REGISTER,),
        tier="switch",
        max_function_ops=48,  # only small stateful gadgets fit a pipeline
        params={
            "stages": stages,
            "stage_sram_kb": stage_sram_kb,
            "stage_tcam_kb": stage_tcam_kb,
            "stage_alus": stage_alus,
            "runtime_capable": runtime_capable,
        },
    )


def stage_capacity(target: Target) -> ResourceVector:
    """Per-stage capacity vector of an RMT target."""
    return ResourceVector(
        sram_kb=target.params["stage_sram_kb"],
        tcam_kb=target.params["stage_tcam_kb"],
        alus=target.params["stage_alus"],
    )
