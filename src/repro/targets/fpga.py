"""FPGA targets (§2, §3.3(iv)): Innova-class NIC-attached FPGAs.

FPGAs support live *partial* reconfiguration: a region is swapped while
the rest of the fabric keeps processing. Resources (LUTs, BRAM) are
fully fungible across the fabric. Partial reconfiguration of one region
takes tens of milliseconds; a full-bitstream flash takes seconds and is
not hitless.
"""

from __future__ import annotations

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.resources import ResourceVector


def fpga(
    name: str,
    kilo_luts: float = 1200.0,
    bram_mb: float = 48.0,
    regions: int = 8,
) -> Target:
    """Build an FPGA target with ``regions`` partial-reconfiguration slots."""
    capacity = ResourceVector(
        luts=kilo_luts,
        bram_kb=bram_mb * 1024.0,
    )
    reconfig = ReconfigCostModel(
        add_table_s=0.08,  # partial reconfiguration of one region
        remove_table_s=0.05,
        modify_entries_per_1k_s=0.001,
        parser_change_s=0.08,
        function_reload_s=0.09,
        full_reflash_s=6.0,
        hitless=True,
    )
    return Target(
        name=name,
        arch="fpga",
        capacity=capacity,
        fungibility=FungibilityClass.FULL,
        performance=PerformanceModel(
            base_latency_ns=1200.0,
            per_op_ns=2.0,
            per_op_nj=1.5,
            idle_power_w=35.0,
            throughput_mpps=300.0,
        ),
        reconfig=reconfig,
        encodings=(StateEncoding.REGISTER, StateEncoding.SOC_MEMORY),
        tier="nic",
        max_function_ops=None,
        params={"regions": regions},
    )
