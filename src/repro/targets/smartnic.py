"""SoC SmartNIC targets (§3.3(iv)): BlueField / Agilio / Pensando class.

General-purpose SoC cores make resources "essentially fully fungible";
programs are C/P4 and reload per-core while siblings keep serving, so
reconfiguration is hitless and fast. The price is per-packet latency
roughly an order of magnitude above a switch pipeline.
"""

from __future__ import annotations

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.resources import ResourceVector


def smartnic(
    name: str,
    cores: int = 8,
    core_mhz: float = 2000.0,
    dram_mb: float = 8192.0,
) -> Target:
    """Build a SoC SmartNIC target."""
    capacity = ResourceVector(
        cpu_cores=cores,
        cpu_mhz=cores * core_mhz,
        sram_kb=dram_mb * 1024.0,
    )
    reconfig = ReconfigCostModel(
        add_table_s=0.05,
        remove_table_s=0.03,
        modify_entries_per_1k_s=0.001,
        parser_change_s=0.05,
        function_reload_s=0.06,
        full_reflash_s=2.0,
        hitless=True,
    )
    return Target(
        name=name,
        arch="smartnic",
        capacity=capacity,
        fungibility=FungibilityClass.FULL,
        performance=PerformanceModel(
            base_latency_ns=2500.0,
            per_op_ns=8.0,
            per_op_nj=4.0,
            idle_power_w=25.0,
            throughput_mpps=60.0,
        ),
        reconfig=reconfig,
        encodings=(StateEncoding.SOC_MEMORY, StateEncoding.KERNEL_MAP),
        tier="nic",
        max_function_ops=None,  # general-purpose cores: anything bounded
    )
