"""Tiled / elastic-pipe targets (§3.3(iii)): Broadcom Trident4 / Jericho2.

Trident4 exposes hash and index tiles in SRAM alongside TCAM tiles; NPL
programs determine inter-tile connectivity. Jericho2's Elastic Pipe adds
a Programmable Elements Matrix (PEM). Fungibility on this class holds
*within the same tile type* — a freed hash tile can host another exact
table but not a ternary one. Both are runtime programmable in NPL
("dynamic tables can be runtime reconfigured ... without downtime").
"""

from __future__ import annotations

from repro.targets.base import (
    FungibilityClass,
    PerformanceModel,
    ReconfigCostModel,
    StateEncoding,
    Target,
)
from repro.targets.resources import ResourceVector


def tiled_switch(
    name: str,
    hash_tiles: int = 96,
    index_tiles: int = 48,
    tcam_tiles: int = 24,
    pem_elems: int = 64,
    tile_kb: float = 64.0,
) -> Target:
    """Build a Trident4/Jericho2-like tiled switch target."""
    capacity = ResourceVector(
        hash_tiles=hash_tiles,
        index_tiles=index_tiles,
        tcam_tiles=tcam_tiles,
        pem_elems=pem_elems,
        parser_states=224,
    )
    reconfig = ReconfigCostModel(
        add_table_s=0.50,
        remove_table_s=0.30,
        modify_entries_per_1k_s=0.003,
        parser_change_s=0.60,
        function_reload_s=0.55,
        full_reflash_s=22.0,
        hitless=True,
    )
    return Target(
        name=name,
        arch="tiles",
        capacity=capacity,
        fungibility=FungibilityClass.TILE_TYPED,
        performance=PerformanceModel(
            base_latency_ns=500.0,
            per_op_ns=1.1,
            per_op_nj=0.55,
            idle_power_w=160.0,
            throughput_mpps=1900.0,
        ),
        reconfig=reconfig,
        encodings=(StateEncoding.STATEFUL_TABLE,),
        tier="switch",
        max_function_ops=96,  # PEM elements host moderate bodies
        params={"tile_kb": tile_kb},
    )
