"""FlexNet: a runtime programmable network.

A reproduction of "A Vision for Runtime Programmable Networks"
(HotNets '21): the FlexBPF language and analyzer, a fungibility-aware
incremental compiler, simulated device architectures (RMT, dRMT, tiles,
SmartNIC, FPGA, host/eBPF), hitless runtime reconfiguration, and a
real-time controller with app-level management — all over a
discrete-event data plane simulator.

Quick start::

    from repro import FlexNet
    from repro.apps import base_infrastructure

    net = FlexNet.standard()
    net.install(base_infrastructure())
    report = net.run_traffic(rate_pps=1000, duration_s=1.0)
    assert report.metrics.loss_rate == 0.0
"""

from repro.core import FlexNet, FungibleDatapath, Slo
from repro.errors import FlexNetError
from repro.lang import ProgramBuilder, apply_delta, certify, parse_delta, parse_program

__version__ = "0.1.0"

__all__ = [
    "FlexNet",
    "FlexNetError",
    "FungibleDatapath",
    "ProgramBuilder",
    "Slo",
    "apply_delta",
    "certify",
    "parse_delta",
    "parse_program",
    "__version__",
]
