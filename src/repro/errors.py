"""Exception hierarchy shared across the FlexNet library.

Every error raised by the public API derives from :class:`FlexNetError`,
so callers can catch one base class at integration boundaries while the
library keeps fine-grained types for programmatic handling.
"""

from __future__ import annotations


class FlexNetError(Exception):
    """Base class for all FlexNet errors."""


class ParseError(FlexNetError):
    """Raised when FlexBPF source text cannot be parsed.

    Carries the source line/column when known so tooling can point at
    the offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", col {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class TypeCheckError(FlexNetError):
    """Raised when a FlexBPF program fails static type checking."""


class AnalysisError(FlexNetError):
    """Raised when the analyzer cannot certify a program.

    The paper requires FlexBPF programs to be "analyzable to certify
    bounded execution [and] well-behavedness"; programs that fail the
    certification are rejected with this error before admission.
    """


class CompilationError(FlexNetError):
    """Raised when a program cannot be compiled to the physical network."""


class PlacementError(CompilationError):
    """Raised when no feasible placement exists for a datapath."""


class ResourceError(FlexNetError):
    """Raised on illegal resource arithmetic (overcommit, unknown kind)."""


class ReconfigError(FlexNetError):
    """Raised when a runtime reconfiguration cannot be applied."""


class MigrationError(FlexNetError):
    """Raised when state migration between devices fails."""


class IsolationError(FlexNetError):
    """Raised when a tenant extension violates its isolation boundary."""


class AccessControlError(IsolationError):
    """Raised when an extension touches objects outside its permissions."""


class CompositionError(FlexNetError):
    """Raised when datapaths cannot be composed (unresolvable conflicts)."""


class ControlPlaneError(FlexNetError):
    """Base class for controller-side failures."""


class UnknownAppError(ControlPlaneError):
    """Raised when an app URI does not resolve to a deployed app."""


class UnknownDeviceError(ControlPlaneError):
    """Raised when a device id does not exist in the topology."""


class ConsensusError(ControlPlaneError):
    """Raised when a distributed-controller operation cannot commit."""


class ChannelError(ControlPlaneError):
    """Raised when a control-channel operation is lost and retries (if
    any) are exhausted."""


class StaleEpochError(ControlPlaneError):
    """Raised when a mutation carries a fencing epoch older than the one
    the device has already admitted — the writer is a deposed leader."""


class RpcError(FlexNetError):
    """Raised when a dRPC invocation fails (no service, timeout)."""


class SimulationError(FlexNetError):
    """Raised on inconsistent simulator usage (e.g., time going backwards)."""
