"""Seeded chaos scenarios: one fault plan, one live update, one report.

:func:`run_chaos` is the scenario runner behind experiment E16 and the
``flexnet chaos`` CLI. It stands up the canonical 5-hop FlexNet slice,
installs a program, arms a :class:`~repro.faults.plan.FaultPlan`
(device crashes, lossy control channel, flaky dRPC, stalled
migrations), applies a delta mid-traffic, and reports what survived:
delivery, consistency, per-device convergence, the write-ahead journal,
and every degraded-mode event.

:func:`run_controller_chaos` is the FlexHA counterpart (experiment E19
and ``flexnet chaos --controller``): the same slice runs under a
replicated controller, and the armed faults hit the *control plane* —
Raft leader crashes and leader partitions, optionally mid-two-phase
transition — exercising fail-over, fencing, and the resync sweep.

Everything is keyed by the plan's seed — two runs of the same scenario
produce byte-identical reports (``ChaosReport.to_dict``,
``ControllerChaosReport.to_dict``), which is what makes fault campaigns
regression-testable.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.flexnet import FlexNet
from repro.errors import ChannelError, FlexNetError
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.recovery import CrashSchedule
from repro.lang.delta import Delta
from repro.lang.ir import Program
from repro.runtime.consistency import ConsistencyLevel
from repro.simulator.packet import reset_packet_ids


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario (see :func:`run_chaos`)."""

    seed: int
    recovery: bool
    resume: bool
    sent: int
    delivered: int
    lost: int
    violations: int
    packets_checked: int
    target_version: int
    #: active program version per device after the run settles.
    device_versions: dict[str, int | None]
    #: devices left mid-delta (mixed old/new state) at the end.
    stranded: list[str]
    #: every device converged on the target version, nothing stranded,
    #: no reconfiguration command permanently lost.
    converged: bool
    #: update start -> last journal commit (None if nothing committed).
    convergence_time_s: float | None
    crashes: int
    restarts: int
    resumed: int
    rolled_back: int
    quarantined: list[str]
    #: background telemetry pulls over the lossy channel (ok / failed).
    control_reads_ok: int
    control_reads_failed: int
    #: raised error if the scheduled update itself failed, else None.
    update_error: str | None
    transition: dict = field(default_factory=dict)
    channel: dict = field(default_factory=dict)
    injection: dict = field(default_factory=dict)
    journal: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    #: the armed fault plan, described (always present).
    fault_plan: list[str] = field(default_factory=list)
    #: FlexScope span tree for the run (empty unless ``observe=True``);
    #: sim-time timestamps only, so seeded runs stay byte-identical.
    spans: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "recovery": self.recovery,
            "resume": self.resume,
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "violations": self.violations,
            "packets_checked": self.packets_checked,
            "target_version": self.target_version,
            "device_versions": dict(sorted(self.device_versions.items())),
            "stranded": sorted(self.stranded),
            "converged": self.converged,
            "convergence_time_s": (
                None if self.convergence_time_s is None else round(self.convergence_time_s, 6)
            ),
            "crashes": self.crashes,
            "restarts": self.restarts,
            "resumed": self.resumed,
            "rolled_back": self.rolled_back,
            "quarantined": sorted(self.quarantined),
            "control_reads_ok": self.control_reads_ok,
            "control_reads_failed": self.control_reads_failed,
            "update_error": self.update_error,
            "transition": self.transition,
            "channel": self.channel,
            "injection": self.injection,
            "journal": self.journal,
            "events": self.events,
            "fault_plan": list(self.fault_plan),
            "spans": self.spans,
        }

    def summary(self) -> str:
        lines = [
            f"chaos seed={self.seed} recovery={'on' if self.recovery else 'off'} "
            f"resume={'on' if self.resume else 'off'}",
            f"  traffic: sent {self.sent}, delivered {self.delivered}, lost {self.lost}",
            f"  consistency: {self.violations} violation(s) / "
            f"{self.packets_checked} checked",
            f"  converged: {'yes' if self.converged else 'NO'} "
            f"(target v{self.target_version})"
            + (
                f", {self.convergence_time_s:.3f}s after update"
                if self.convergence_time_s is not None
                else ""
            ),
            f"  faults: {self.crashes} crash(es), {self.restarts} restart(s), "
            f"{self.resumed} resumed, {self.rolled_back} rolled back",
        ]
        if self.stranded:
            lines.append(f"  stranded mid-delta: {', '.join(self.stranded)}")
        if self.quarantined:
            lines.append(f"  quarantined: {', '.join(self.quarantined)}")
        if self.update_error:
            lines.append(f"  update error: {self.update_error}")
        lines.append(
            f"  control reads: {self.control_reads_ok} ok, "
            f"{self.control_reads_failed} failed"
        )
        if self.spans:
            lines.append(f"  trace: {len(self.spans)} span(s) captured")
        return "\n".join(lines)


@dataclass
class ControllerChaosReport:
    """Outcome of one controller-fault scenario (:func:`run_controller_chaos`)."""

    seed: int
    fencing: bool
    node_count: int
    sent: int
    delivered: int
    lost: int
    violations: int
    packets_checked: int
    target_version: int
    device_versions: dict[str, int | None]
    stranded: list[str]
    #: the update was executed, every hosting device serves the target
    #: version, nothing is stranded or mid-transition.
    converged: bool
    #: controller-side outcome: fail-overs, fencing, resync (FlexHA).
    failovers: int
    handoff_downtimes_s: list[float]
    submitted: int
    executed_updates: int
    update_errors: list[str]
    resyncs: int
    devices_redriven: int
    stranded_resolved: int
    epoch_rejections: int
    #: stale-epoch mutations that *landed* (only possible with
    #: ``fencing=False`` — the corruption fencing prevents).
    stale_writes_applied: int
    ha: dict = field(default_factory=dict)
    journal: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    fault_plan: list[str] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "fencing": self.fencing,
            "node_count": self.node_count,
            "sent": self.sent,
            "delivered": self.delivered,
            "lost": self.lost,
            "violations": self.violations,
            "packets_checked": self.packets_checked,
            "target_version": self.target_version,
            "device_versions": dict(sorted(self.device_versions.items())),
            "stranded": sorted(self.stranded),
            "converged": self.converged,
            "failovers": self.failovers,
            "handoff_downtimes_s": [round(d, 6) for d in self.handoff_downtimes_s],
            "submitted": self.submitted,
            "executed_updates": self.executed_updates,
            "update_errors": list(self.update_errors),
            "resyncs": self.resyncs,
            "devices_redriven": self.devices_redriven,
            "stranded_resolved": self.stranded_resolved,
            "epoch_rejections": self.epoch_rejections,
            "stale_writes_applied": self.stale_writes_applied,
            "ha": self.ha,
            "journal": self.journal,
            "events": self.events,
            "fault_plan": list(self.fault_plan),
            "spans": self.spans,
        }

    def summary(self) -> str:
        lines = [
            f"controller chaos seed={self.seed} nodes={self.node_count} "
            f"fencing={'on' if self.fencing else 'off'}",
            f"  traffic: sent {self.sent}, delivered {self.delivered}, lost {self.lost}",
            f"  consistency: {self.violations} violation(s) / "
            f"{self.packets_checked} checked",
            f"  converged: {'yes' if self.converged else 'NO'} "
            f"(target v{self.target_version})",
            f"  failovers: {self.failovers}"
            + (
                ", handoff "
                + ", ".join(f"{d * 1000:.0f}ms" for d in self.handoff_downtimes_s)
                if self.handoff_downtimes_s
                else ""
            ),
            f"  updates: {self.submitted} submitted, {self.executed_updates} executed"
            + (f", {len(self.update_errors)} error(s)" if self.update_errors else ""),
            f"  resync: {self.resyncs} sweep(s), {self.devices_redriven} re-driven, "
            f"{self.stranded_resolved} stranded resolved",
            f"  fencing: {self.epoch_rejections} stale rejection(s), "
            f"{self.stale_writes_applied} stale write(s) applied",
        ]
        if self.stranded:
            lines.append(f"  stranded mid-delta: {', '.join(self.stranded)}")
        if self.spans:
            lines.append(f"  trace: {len(self.spans)} span(s) captured")
        return "\n".join(lines)


def _arm_controller_faults(ha, plan: FaultPlan) -> None:
    """Schedule the plan's controller-side faults against the Raft bus.

    ``node="leader"`` resolves at fire time to whichever node currently
    leads (falling back to the highest-term node if an election is in
    flight), so "kill the leader mid-two-phase-transition" stays
    well-defined however previous faults reshuffled leadership.
    """
    bus = ha.cluster.bus

    def current_leader() -> str:
        leader = ha.cluster.leader()
        if leader is not None:
            return leader.node_id
        return max(
            ha.cluster.nodes.values(), key=lambda n: (n.current_term, n.node_id)
        ).node_id

    for crash in plan.controller_crashes:

        def crash_node(spec=crash) -> None:
            node_id = current_leader() if spec.node == "leader" else spec.node
            if node_id not in ha.cluster.nodes:
                return
            bus.crash(node_id)
            bus.schedule(spec.restart_after_s, lambda: bus.recover(node_id))

        ha.controller.loop.schedule_at(crash.at_s, crash_node)

    for split in plan.partitions:

        def partition(spec=split) -> None:
            leader_id = current_leader()
            others = {n for n in ha.cluster.nodes if n != leader_id}
            if not others:
                return
            bus.partition({leader_id}, others)
            bus.schedule(spec.heal_after_s, bus.heal)

        ha.controller.loop.schedule_at(split.at_s, partition)


def run_controller_chaos(
    program: Program,
    delta: Delta,
    plan: FaultPlan,
    node_count: int = 3,
    fencing: bool = True,
    rate_pps: float = 1000.0,
    duration_s: float = 10.0,
    update_at_s: float = 5.0,
    extra_time_s: float = 5.0,
    consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PATH,
    switch_arch: str = "drmt",
    setup: Callable[[FlexNet], None] | None = None,
    observe: bool = False,
    observe_sample_every: int = 64,
) -> ControllerChaosReport:
    """Run one seeded controller-fault scenario under FlexHA.

    The update is *submitted through the replicated controller*
    (:meth:`~repro.control.ha.FlexHA.submit_update`): Raft commits it
    before any device window opens, so whatever the armed faults do to
    the leader afterwards, a successor can re-drive it from the log. A
    submission that lands during an election retries every heartbeat
    until a leader accepts it.

    ``fencing=False`` is the unfenced baseline: deposed leaders' stale
    writes land (counted in ``stale_writes_applied``) instead of
    bouncing off device epoch watermarks — the corruption E19 contrasts
    against.
    """
    from repro.control.ha import FlexHA
    from repro.limits import HEARTBEAT_INTERVAL_S

    reset_packet_ids()
    net = FlexNet.standard(switch_arch)
    if observe:
        net.observe.enable(sample_every=observe_sample_every)
    net.install(program)
    controller = net.controller
    if setup is not None:
        setup(net)
        horizon = controller.orchestrator.quiesce_at
        if horizon > controller.loop.now:
            controller.loop.run_until(horizon + 1e-6)
        for device in controller.devices.values():
            device.settle(controller.loop.now)

    ha = FlexHA(controller, node_count=node_count, seed=plan.seed, fencing=fencing)

    # Device-side faults (and the journal FlexHA's re-drive relies on)
    # ride on the same FlexFault machinery as run_chaos.
    injector = FaultInjector(plan)
    manager = controller.attach_faults(injector, recovery=True, resume=True)
    schedule = CrashSchedule(
        loop=controller.loop,
        devices=controller.devices,
        recovery=manager,
        telemetry=controller.telemetry,
    )
    schedule.arm(plan)
    _arm_controller_faults(ha, plan)

    def submit() -> None:
        if ha.submit_update(delta, consistency=consistency) is None:
            # No leader (election in flight): retry next heartbeat.
            controller.loop.schedule(HEARTBEAT_INTERVAL_S, submit)

    net.schedule(update_at_s, submit)

    traffic = net.run_traffic(
        rate_pps=rate_pps,
        duration_s=duration_s,
        consistency_level=consistency,
        extra_time_s=extra_time_s,
    )

    now = controller.loop.now
    for device in controller.devices.values():
        device.settle(now)

    consistency_report = traffic.consistency.report()
    target_version = controller.program.version
    device_versions = {
        name: (device.active_program.version if device.active_program else None)
        for name, device in controller.devices.items()
    }
    stranded = sorted(
        name for name, device in controller.devices.items() if device.stranded
    )
    # Convergence is judged over the devices hosting plan elements (the
    # devices the committed update had to reach); pass-through devices
    # legitimately keep serving whatever was installed.
    hosting = sorted(set(controller.plan.placement.values()))
    converged = (
        not ha.update_errors
        and ha.executed_updates >= 1
        and not stranded
        and all(
            device_versions[name] == target_version
            and not controller.devices[name].in_transition
            for name in hosting
        )
    )
    return ControllerChaosReport(
        seed=plan.seed,
        fencing=fencing,
        node_count=node_count,
        sent=traffic.metrics.sent,
        delivered=traffic.metrics.delivered,
        lost=traffic.metrics.lost_by_infrastructure,
        violations=consistency_report.violations,
        packets_checked=consistency_report.packets_checked,
        target_version=target_version,
        device_versions=device_versions,
        stranded=stranded,
        converged=converged,
        failovers=len(ha.failovers),
        handoff_downtimes_s=ha.handoff_downtimes_s(),
        submitted=ha.submitted,
        executed_updates=ha.executed_updates,
        update_errors=list(ha.update_errors),
        resyncs=ha.resyncs,
        devices_redriven=ha.devices_redriven,
        stranded_resolved=ha.stranded_resolved,
        epoch_rejections=ha.epoch_rejections,
        stale_writes_applied=ha.stale_writes_applied,
        ha=ha.status(),
        journal=controller.journal.to_dict() if controller.journal else [],
        events=[
            {
                "time": round(event.time, 6),
                "kind": event.kind,
                "device": event.device,
                "detail": event.detail,
            }
            for event in controller.telemetry.events
        ],
        fault_plan=plan.describe(),
        spans=net.observe.tracer.to_dict()["spans"] if observe else [],
    )


def run_chaos(
    program: Program,
    delta: Delta,
    plan: FaultPlan,
    recovery: bool = True,
    resume: bool = True,
    monitor: bool = False,
    rate_pps: float = 1000.0,
    duration_s: float = 10.0,
    update_at_s: float = 5.0,
    extra_time_s: float = 5.0,
    consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PATH,
    switch_arch: str = "drmt",
    setup: Callable[[FlexNet], None] | None = None,
    control_ops: int = 50,
    observe: bool = False,
    observe_sample_every: int = 64,
) -> ChaosReport:
    """Run one seeded chaos scenario and collect the evidence.

    ``recovery=False`` is the no-recovery baseline: dropped control
    messages raise instead of retrying, and crash-interrupted
    transitions stay frozen in mixed old/new state (stranded) after the
    device restarts.

    ``setup`` runs after the install but before faults are armed —
    scenarios use it to shape the deployment (e.g. migrate an app onto
    a NIC so the update spans several hosting devices).

    ``observe=True`` enables FlexScope before anything runs: the report
    then carries the full span tree (install, update, per-device
    windows, migrations, fault events) in ``ChaosReport.spans``.
    """
    # Restart the packet id counter so the per-packet cut-over draws —
    # and therefore the sampled spans and version splits — are identical
    # across same-seed runs even within one process.
    reset_packet_ids()
    net = FlexNet.standard(switch_arch)
    if observe:
        net.observe.enable(sample_every=observe_sample_every)
    net.install(program)
    controller = net.controller
    if setup is not None:
        setup(net)
        # Drain the setup's transition windows before faults arm: the
        # scenario's seeded draws and the consistency verdict must cover
        # only the update under test, not deployment churn.
        horizon = controller.orchestrator.quiesce_at
        if horizon > controller.loop.now:
            controller.loop.run_until(horizon + 1e-6)
        for device in controller.devices.values():
            device.settle(controller.loop.now)

    injector = FaultInjector(plan)
    manager = controller.attach_faults(
        injector, recovery=recovery, monitor=monitor, resume=resume
    )
    schedule = CrashSchedule(
        loop=controller.loop,
        devices=controller.devices,
        recovery=manager,
        telemetry=controller.telemetry,
    )
    schedule.arm(plan)

    update_error: list[str] = []
    outcome: list = []

    def do_update() -> None:
        try:
            outcome.append(net.update(delta, consistency=consistency))
        except FlexNetError as exc:
            update_error.append(f"{type(exc).__name__}: {exc}")

    net.schedule(update_at_s, do_update)

    # Background control-plane load: periodic telemetry pulls over the
    # (possibly lossy) channel, so ChannelFault drop/delay probabilities
    # are actually exercised. Reads retry under recovery and raise
    # ChannelError in the baseline; both outcomes are tallied.
    control_reads = {"ok": 0, "failed": 0}
    if control_ops > 0:
        probe_table = next(
            (t.name for t in controller.program.tables if t.name in controller.plan.placement),
            None,
        )
        if probe_table is not None:
            probe_device = controller.plan.placement[probe_table]

            def control_probe() -> None:
                try:
                    controller.hub.client(probe_device).table_size(probe_table)
                except ChannelError:
                    control_reads["failed"] += 1
                else:
                    control_reads["ok"] += 1

            start = controller.loop.now
            for op in range(control_ops):
                net.schedule(
                    start + (op + 1) * duration_s / (control_ops + 1), control_probe
                )

    traffic = net.run_traffic(
        rate_pps=rate_pps,
        duration_s=duration_s,
        consistency_level=consistency,
        extra_time_s=extra_time_s,
    )

    # Settle any window that elapsed after the last packet observed it.
    now = controller.loop.now
    for device in controller.devices.values():
        device.settle(now)

    report = outcome[0].report if outcome else None
    consistency_report = traffic.consistency.report()
    target_version = controller.program.version
    device_versions = {
        name: (device.active_program.version if device.active_program else None)
        for name, device in controller.devices.items()
    }
    stranded = sorted(
        name for name, device in controller.devices.items() if device.stranded
    )
    stranded_commands = sorted(report.stranded_commands) if report is not None else []
    # Convergence is judged over the devices the update actually touched
    # (those with a transition window); pass-through devices legitimately
    # keep serving whatever was installed.
    updated = sorted(report.device_windows) if report is not None else []
    converged = (
        not update_error
        and report is not None
        and not stranded
        and not stranded_commands
        and all(
            device_versions[name] == target_version
            and not controller.devices[name].in_transition
            for name in updated
        )
    )
    committed = controller.journal.committed_by() if controller.journal else None
    convergence_time_s = (
        committed - update_at_s
        if converged and committed is not None and committed >= update_at_s
        else None
    )
    channel = controller.hub.channel
    return ChaosReport(
        seed=plan.seed,
        recovery=recovery,
        resume=resume,
        sent=traffic.metrics.sent,
        delivered=traffic.metrics.delivered,
        lost=traffic.metrics.lost_by_infrastructure,
        violations=consistency_report.violations,
        packets_checked=consistency_report.packets_checked,
        target_version=target_version,
        device_versions=device_versions,
        stranded=stranded,
        converged=converged,
        convergence_time_s=convergence_time_s,
        crashes=schedule.crashes,
        restarts=schedule.restarts,
        resumed=manager.resumed if manager is not None else 0,
        rolled_back=manager.rolled_back if manager is not None else 0,
        quarantined=sorted(controller.health.quarantined) if controller.health else [],
        control_reads_ok=control_reads["ok"],
        control_reads_failed=control_reads["failed"],
        update_error=update_error[0] if update_error else None,
        transition={
            "commands_dropped": report.commands_dropped if report else 0,
            "command_retries": report.command_retries if report else 0,
            "stranded_commands": stranded_commands,
            "deferred_starts": sorted(report.deferred_starts) if report else [],
            "migration_retries": report.migration_retries if report else 0,
            "failed_migrations": report.failed_migrations if report else 0,
        },
        channel={
            "drops": channel.drops if channel else 0,
            "retries": channel.retries if channel else 0,
            "delays": channel.delays if channel else 0,
            "failures": channel.failures if channel else 0,
        },
        injection=injector.stats.to_dict(),
        journal=controller.journal.to_dict() if controller.journal else [],
        events=[
            {
                "time": round(event.time, 6),
                "kind": event.kind,
                "device": event.device,
                "detail": event.detail,
            }
            for event in controller.telemetry.events
        ],
        fault_plan=plan.describe(),
        spans=net.observe.tracer.to_dict()["spans"] if observe else [],
    )
