"""FlexFault: fault injection and recovery for runtime reconfiguration.

The paper's promise — hitless, packet-consistent reconfiguration piloted
by distributed controllers — must survive the unhappy path: devices
crashing mid-delta, lossy control channels, failed dRPC calls, stalled
migrations. This package provides both halves:

* **Injection** — :class:`FaultPlan` (seeded, declarative) +
  :class:`FaultInjector`, consulted by hooks woven through
  ``runtime.device``, ``control.p4runtime``, ``runtime.drpc``,
  ``runtime.migration`` and ``runtime.reconfig``.
* **Recovery** — :class:`RetryPolicy` (exponential backoff),
  :class:`ReconfigJournal` (write-ahead, transactional delta
  application with resume/rollback), :class:`RecoveryManager` and
  :class:`HealthMonitor` (quarantine + detour).
* **Scenarios** — :func:`run_chaos`, the seeded scenario runner behind
  experiment E16 and the ``flexnet chaos`` CLI, and
  :func:`run_controller_chaos`, its FlexHA counterpart (leader crashes
  and partitions, experiment E19 / ``flexnet chaos --controller``).
"""

from repro.faults.chaos import (
    ChaosReport,
    ControllerChaosReport,
    run_chaos,
    run_controller_chaos,
)
from repro.faults.journal import JournalEntry, ReconfigJournal, TxnState
from repro.faults.plan import (
    ChannelFault,
    ControllerCrash,
    DeviceCrash,
    DrpcFault,
    FaultInjector,
    FaultPlan,
    HandoffDrop,
    HandoffDup,
    LeaderPartition,
    MigrationFault,
    WorkerCrash,
    WorkerStall,
)
from repro.faults.recovery import (
    CrashSchedule,
    DegradedEvent,
    HealthMonitor,
    RecoveryManager,
    RetryPolicy,
)

__all__ = [
    "ChannelFault",
    "ChaosReport",
    "ControllerChaosReport",
    "ControllerCrash",
    "CrashSchedule",
    "DegradedEvent",
    "DeviceCrash",
    "DrpcFault",
    "FaultInjector",
    "FaultPlan",
    "HandoffDrop",
    "HandoffDup",
    "HealthMonitor",
    "JournalEntry",
    "LeaderPartition",
    "MigrationFault",
    "RecoveryManager",
    "ReconfigJournal",
    "RetryPolicy",
    "TxnState",
    "WorkerCrash",
    "WorkerStall",
    "run_chaos",
    "run_controller_chaos",
]
