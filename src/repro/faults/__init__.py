"""FlexFault: fault injection and recovery for runtime reconfiguration.

The paper's promise — hitless, packet-consistent reconfiguration piloted
by distributed controllers — must survive the unhappy path: devices
crashing mid-delta, lossy control channels, failed dRPC calls, stalled
migrations. This package provides both halves:

* **Injection** — :class:`FaultPlan` (seeded, declarative) +
  :class:`FaultInjector`, consulted by hooks woven through
  ``runtime.device``, ``control.p4runtime``, ``runtime.drpc``,
  ``runtime.migration`` and ``runtime.reconfig``.
* **Recovery** — :class:`RetryPolicy` (exponential backoff),
  :class:`ReconfigJournal` (write-ahead, transactional delta
  application with resume/rollback), :class:`RecoveryManager` and
  :class:`HealthMonitor` (quarantine + detour).
* **Scenarios** — :func:`run_chaos`, the seeded scenario runner behind
  experiment E16 and the ``flexnet chaos`` CLI.
"""

from repro.faults.chaos import ChaosReport, run_chaos
from repro.faults.journal import JournalEntry, ReconfigJournal, TxnState
from repro.faults.plan import (
    ChannelFault,
    DeviceCrash,
    DrpcFault,
    FaultInjector,
    FaultPlan,
    MigrationFault,
)
from repro.faults.recovery import (
    CrashSchedule,
    DegradedEvent,
    HealthMonitor,
    RecoveryManager,
    RetryPolicy,
)

__all__ = [
    "ChannelFault",
    "ChaosReport",
    "CrashSchedule",
    "DegradedEvent",
    "DeviceCrash",
    "DrpcFault",
    "FaultInjector",
    "FaultPlan",
    "HealthMonitor",
    "JournalEntry",
    "MigrationFault",
    "RecoveryManager",
    "ReconfigJournal",
    "RetryPolicy",
    "TxnState",
    "run_chaos",
]
