"""Declarative, seed-driven fault plans (FlexFault).

A :class:`FaultPlan` describes *what goes wrong* during a scenario —
device crashes at fixed virtual times, a lossy/slow control channel,
flaky dRPC handlers, stalling state migrations — and a single seed that
makes every probabilistic draw reproducible. The plan itself is inert
data; a :class:`FaultInjector` turns it into deterministic per-call
decisions that the runtime hooks consult
(:mod:`repro.runtime.device`, :mod:`repro.control.p4runtime`,
:mod:`repro.runtime.drpc`, :mod:`repro.runtime.migration`,
:mod:`repro.runtime.reconfig`).

Determinism: each fault category gets its own RNG stream seeded from
``stable_hash((seed, category))``, so the sequence of draws one hook
sees does not depend on how often the *other* hooks fire. Two runs of
the same scenario with the same plan therefore produce identical
injections — the property experiment E16 asserts.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field

from repro.util import stable_hash


@dataclass(frozen=True)
class DeviceCrash:
    """Crash ``device`` at ``at_s``; it restarts ``restart_after_s``
    later. A crash mid-transition freezes the cut-over half-applied
    (the partial-delta fault the journal/rollback protocol repairs)."""

    device: str
    at_s: float
    restart_after_s: float = 1.0


@dataclass(frozen=True)
class ControllerCrash:
    """Crash a controller replica at ``at_s``; it recovers
    ``restart_after_s`` later. ``node`` is a Raft node id (``ctl0``…)
    or the symbolic ``"leader"``, resolved at fire time to whichever
    node currently leads — the scenario FlexHA's fail-over must absorb.
    """

    node: str = "leader"
    at_s: float = 0.0
    restart_after_s: float = 2.0


@dataclass(frozen=True)
class LeaderPartition:
    """At ``at_s``, partition the current leader away from the other
    replicas (it keeps believing it leads until its term is superseded);
    the partition heals ``heal_after_s`` later. The deposed leader's
    in-flight writes are what fencing epochs must reject."""

    at_s: float = 0.0
    heal_after_s: float = 2.0


@dataclass(frozen=True)
class ChannelFault:
    """A lossy/slow control channel between controller and devices."""

    drop_probability: float = 0.0
    delay_probability: float = 0.0
    delay_s: float = 0.0
    #: which devices the impairment applies to (fnmatch glob).
    device_pattern: str = "*"

    def applies_to(self, device: str) -> bool:
        return fnmatch.fnmatchcase(device, self.device_pattern)


@dataclass(frozen=True)
class DrpcFault:
    """Handler-level dRPC failures for matching services."""

    service_pattern: str = "*"
    fail_probability: float = 0.0

    def applies_to(self, service: str) -> bool:
        return fnmatch.fnmatchcase(service, self.service_pattern)


@dataclass(frozen=True)
class MigrationFault:
    """Stall (extra transfer time) or outright failure of in-band state
    migrations whose map name matches the pattern."""

    map_pattern: str = "*"
    stall_probability: float = 0.0
    stall_s: float = 0.0
    fail_probability: float = 0.0

    def applies_to(self, map_name: str) -> bool:
        return fnmatch.fnmatchcase(map_name, self.map_pattern)


@dataclass(frozen=True)
class WorkerCrash:
    """FlexMend: kill shard ``shard``'s worker process when its engine
    reaches protocol window ``window`` (after that window's outbound
    flush). The supervisor respawns it from the last checkpoint; the
    run's traffic report must stay byte-identical regardless."""

    shard: int
    window: int


@dataclass(frozen=True)
class WorkerStall:
    """FlexMend: wedge shard ``shard``'s worker for ``stall_s`` wall
    seconds at protocol window ``window`` — the scenario the
    supervisor's heartbeat-staleness detector must absorb."""

    shard: int
    window: int
    stall_s: float = 1.0


@dataclass(frozen=True)
class HandoffDrop:
    """FlexMend: shard ``shard`` loses each outbound handoff batch with
    probability ``probability`` (per-shard RNG stream). The receiver's
    sequence gap triggers a NACK and the sender retransmits from its
    retention buffer."""

    shard: int
    probability: float = 0.0


@dataclass(frozen=True)
class HandoffDup:
    """FlexMend: shard ``shard`` sends each outbound handoff batch
    twice with probability ``probability``; the receiver's sequence
    dedup must drop the duplicate."""

    shard: int
    probability: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, declarative fault scenario."""

    seed: int = 0
    crashes: tuple[DeviceCrash, ...] = ()
    channel: ChannelFault | None = None
    drpc: tuple[DrpcFault, ...] = ()
    migration: tuple[MigrationFault, ...] = ()
    #: FlexHA controller-side faults (replica crashes, leader partitions).
    controller_crashes: tuple[ControllerCrash, ...] = ()
    partitions: tuple[LeaderPartition, ...] = ()
    #: FlexMend worker-process faults (sharded execution only).
    worker_crashes: tuple[WorkerCrash, ...] = ()
    worker_stalls: tuple[WorkerStall, ...] = ()
    handoff_drops: tuple[HandoffDrop, ...] = ()
    handoff_dups: tuple[HandoffDup, ...] = ()

    def describe(self) -> list[str]:
        lines = [f"seed {self.seed}"]
        for crash in self.crashes:
            lines.append(
                f"crash {crash.device} at t={crash.at_s:g}s, "
                f"restart after {crash.restart_after_s:g}s"
            )
        for crash in self.controller_crashes:
            lines.append(
                f"controller crash {crash.node} at t={crash.at_s:g}s, "
                f"recover after {crash.restart_after_s:g}s"
            )
        for split in self.partitions:
            lines.append(
                f"partition leader at t={split.at_s:g}s, "
                f"heal after {split.heal_after_s:g}s"
            )
        if self.channel is not None:
            lines.append(
                f"control channel [{self.channel.device_pattern}]: "
                f"drop p={self.channel.drop_probability:g}, "
                f"delay p={self.channel.delay_probability:g} (+{self.channel.delay_s:g}s)"
            )
        for spec in self.drpc:
            lines.append(f"dRPC [{spec.service_pattern}]: fail p={spec.fail_probability:g}")
        for spec in self.migration:
            lines.append(
                f"migration [{spec.map_pattern}]: stall p={spec.stall_probability:g} "
                f"(+{spec.stall_s:g}s), fail p={spec.fail_probability:g}"
            )
        for crash in self.worker_crashes:
            lines.append(
                f"worker crash shard {crash.shard} at window {crash.window}"
            )
        for stall in self.worker_stalls:
            lines.append(
                f"worker stall shard {stall.shard} at window {stall.window} "
                f"(+{stall.stall_s:g}s wall)"
            )
        for drop in self.handoff_drops:
            lines.append(
                f"handoff drop shard {drop.shard}: p={drop.probability:g}"
            )
        for dup in self.handoff_dups:
            lines.append(
                f"handoff dup shard {dup.shard}: p={dup.probability:g}"
            )
        return lines


@dataclass
class InjectionStats:
    """What the injector actually did (for chaos reports)."""

    commands_dropped: int = 0
    writes_dropped: int = 0
    writes_delayed: int = 0
    drpc_failures: int = 0
    migration_stalls: int = 0
    migration_failures: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "commands_dropped": self.commands_dropped,
            "writes_dropped": self.writes_dropped,
            "writes_delayed": self.writes_delayed,
            "drpc_failures": self.drpc_failures,
            "migration_stalls": self.migration_stalls,
            "migration_failures": self.migration_failures,
        }


class FaultInjector:
    """Deterministic decision oracle over a :class:`FaultPlan`.

    Every hook question ("does this write drop?", "does this handler
    fail?") is answered from a category-local RNG stream, so decisions
    are reproducible per scenario and independent across categories.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = InjectionStats()
        self._rngs: dict[str, random.Random] = {}

    def _rng(self, category: str) -> random.Random:
        rng = self._rngs.get(category)
        if rng is None:
            # str hash is salted per process; derive the stream seed from
            # the category's bytes so streams are stable across runs.
            rng = random.Random(stable_hash((self.plan.seed, *category.encode())))
            self._rngs[category] = rng
        return rng

    # -- control channel ----------------------------------------------------

    def command_dropped(self, device: str) -> bool:
        """One controller->device reconfiguration command: lost in transit?"""
        channel = self.plan.channel
        if channel is None or not channel.applies_to(device):
            return False
        dropped = self._rng("command").random() < channel.drop_probability
        if dropped:
            self.stats.commands_dropped += 1
        return dropped

    def channel_outcome(self, device: str) -> tuple[bool, float]:
        """One P4Runtime read/write: (dropped, extra_delay_s)."""
        channel = self.plan.channel
        if channel is None or not channel.applies_to(device):
            return False, 0.0
        rng = self._rng("channel")
        dropped = rng.random() < channel.drop_probability
        delay = 0.0
        if channel.delay_probability and rng.random() < channel.delay_probability:
            delay = channel.delay_s
        if dropped:
            self.stats.writes_dropped += 1
        elif delay:
            self.stats.writes_delayed += 1
        return dropped, delay

    # -- dRPC ---------------------------------------------------------------

    def drpc_failure(self, service: str) -> bool:
        for spec in self.plan.drpc:
            if spec.applies_to(service):
                if self._rng("drpc").random() < spec.fail_probability:
                    self.stats.drpc_failures += 1
                    return True
        return False

    # -- migration ----------------------------------------------------------

    def migration_fails(self, map_name: str) -> bool:
        for spec in self.plan.migration:
            if spec.applies_to(map_name):
                if self._rng("migration").random() < spec.fail_probability:
                    self.stats.migration_failures += 1
                    return True
        return False

    def migration_stall_s(self, map_name: str) -> float:
        for spec in self.plan.migration:
            if spec.applies_to(map_name):
                if spec.stall_probability and self._rng("stall").random() < spec.stall_probability:
                    self.stats.migration_stalls += 1
                    return spec.stall_s
        return 0.0
