"""Recovery mechanisms for runtime reconfiguration (FlexFault).

Three cooperating pieces:

* :class:`RetryPolicy` — bounded retry with exponential backoff, shared
  by the P4Runtime control channel, the dRPC fabric, and the
  orchestrator's reconfiguration commands.
* :class:`RecoveryManager` — reacts to device crash/restart events:
  on restart it consults the write-ahead journal
  (:mod:`repro.faults.journal`) and resolves any interrupted transition
  by **resume** (finish the cut-over to the new version) or
  **rollback** (retire the staged version), so a device never stays
  stranded in a mixed old/new state.
* :class:`HealthMonitor` — periodic liveness probing; devices that miss
  ``failure_threshold`` consecutive probes are quarantined (degraded
  mode) and a callback lets the controller detour traffic around them
  via :mod:`repro.control.topology`. Quarantine/release events feed the
  telemetry collector.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.faults.journal import ReconfigJournal
from repro.runtime.device import DeviceRuntime
from repro.simulator.engine import EventLoop


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a per-operation attempt budget."""

    max_attempts: int = 5
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 1.0

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (first retry is 1)."""
        return min(
            self.base_backoff_s * self.multiplier ** max(attempt - 1, 0),
            self.max_backoff_s,
        )

    def total_backoff_s(self) -> float:
        """Worst-case time spent backing off before giving up."""
        return sum(self.backoff_s(attempt) for attempt in range(1, self.max_attempts))


@dataclass(frozen=True)
class DegradedEvent:
    """One degraded-mode transition the recovery layer observed."""

    time: float
    kind: str  # crash | restart | resume | rollback | quarantine | release
    device: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "time": round(self.time, 6),
            "kind": self.kind,
            "device": self.device,
            "detail": self.detail,
        }


class RecoveryManager:
    """Crash/restart handling driven by the write-ahead journal."""

    def __init__(
        self,
        loop: EventLoop,
        devices: dict[str, DeviceRuntime],
        journal: ReconfigJournal,
        policy: RetryPolicy | None = None,
        telemetry=None,
        resume: bool = True,
    ):
        self._loop = loop
        self._devices = devices
        self.journal = journal
        self.policy = policy or RetryPolicy()
        self._telemetry = telemetry
        #: resume-on-restart (finish the new version) vs rollback-to-old.
        self.resume = resume
        self.events: list[DegradedEvent] = []
        self.resumed: int = 0
        self.rolled_back: int = 0
        #: actions (e.g. transition starts) waiting for a device restart.
        self._deferred: dict[str, list[Callable[[], None]]] = {}

    def _record(self, kind: str, device: str, detail: str = "") -> None:
        event = DegradedEvent(time=self._loop.now, kind=kind, device=device, detail=detail)
        self.events.append(event)
        if self._telemetry is not None:
            self._telemetry.ingest_event(kind, device, self._loop.now, detail)

    # -- crash lifecycle -----------------------------------------------------

    def defer_until_restart(self, device_name: str, action: Callable[[], None]) -> None:
        """Queue an action (typically a transition start whose target is
        down) to run right after the device restarts and its journal is
        resolved."""
        self._deferred.setdefault(device_name, []).append(action)

    def on_crash(self, device_name: str) -> None:
        pending = self.journal.pending_for(device_name)
        detail = f"mid-delta txn {pending.txn_id}" if pending is not None else "idle"
        self._record("crash", device_name, detail)

    def on_restart(self, device_name: str) -> None:
        """Resolve any interrupted transition from the journal."""
        device = self._devices[device_name]
        entry = self.journal.pending_for(device_name)
        if device.stranded:
            to_new = self.resume
            device.resolve_interrupted(to_new=to_new)
            if entry is not None:
                if to_new:
                    self.journal.commit(entry, self._loop.now, resolution="resume")
                else:
                    self.journal.rollback(entry, self._loop.now)
            if to_new:
                self.resumed += 1
                self._record("resume", device_name, f"converged to v{device.active_program.version}")
            else:
                self.rolled_back += 1
                self._record("rollback", device_name, f"back to v{device.active_program.version}")
        else:
            # Crash outside a window (or before the window opened): the
            # journal entry, if any, is still actionable by the pending
            # start command's retry loop; just note the restart.
            self._record("restart", device_name, "clean")
        for action in self._deferred.pop(device_name, []):
            action()


class HealthMonitor:
    """Periodic liveness probes with quarantine and detour hand-off."""

    def __init__(
        self,
        loop: EventLoop,
        devices: dict[str, DeviceRuntime],
        probe_interval_s: float = 0.1,
        failure_threshold: int = 3,
        telemetry=None,
        on_quarantine: Callable[[str], None] | None = None,
        on_release: Callable[[str], None] | None = None,
    ):
        self._loop = loop
        self._devices = devices
        self.probe_interval_s = probe_interval_s
        self.failure_threshold = failure_threshold
        self._telemetry = telemetry
        self.on_quarantine = on_quarantine
        self.on_release = on_release
        self.quarantined: set[str] = set()
        self._misses: dict[str, int] = {}
        self.events: list[DegradedEvent] = []
        self._stopped = False
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._loop.schedule(self.probe_interval_s, self._probe)

    def stop(self) -> None:
        self._stopped = True

    def _record(self, kind: str, device: str, detail: str = "") -> None:
        event = DegradedEvent(time=self._loop.now, kind=kind, device=device, detail=detail)
        self.events.append(event)
        if self._telemetry is not None:
            self._telemetry.ingest_event(kind, device, self._loop.now, detail)

    def _probe(self) -> None:
        if self._stopped:
            return
        now = self._loop.now
        for name, device in self._devices.items():
            if device.available(now):
                self._misses[name] = 0
                if name in self.quarantined:
                    self.quarantined.discard(name)
                    self._record("release", name)
                    if self.on_release is not None:
                        self.on_release(name)
                continue
            self._misses[name] = self._misses.get(name, 0) + 1
            if self._misses[name] >= self.failure_threshold and name not in self.quarantined:
                self.quarantined.add(name)
                self._record(
                    "quarantine", name, f"{self._misses[name]} consecutive probe misses"
                )
                if self.on_quarantine is not None:
                    self.on_quarantine(name)
        self._loop.schedule(self.probe_interval_s, self._probe)


@dataclass
class CrashSchedule:
    """Arms a fault plan's device crashes on the event loop."""

    loop: EventLoop
    devices: dict[str, DeviceRuntime]
    recovery: RecoveryManager | None = None
    telemetry: object | None = None
    crashes: int = 0
    restarts: int = 0
    events: list[DegradedEvent] = field(default_factory=list)

    def arm(self, plan) -> None:
        for spec in plan.crashes:
            if spec.device not in self.devices:
                continue
            self.loop.schedule_at(spec.at_s, self._crasher(spec.device))
            self.loop.schedule_at(
                spec.at_s + spec.restart_after_s, self._restarter(spec.device)
            )

    def _crasher(self, name: str) -> Callable[[], None]:
        def crash() -> None:
            self.devices[name].crash(self.loop.now)
            self.crashes += 1
            self.events.append(DegradedEvent(self.loop.now, "crash", name))
            if self.recovery is not None:
                self.recovery.on_crash(name)
            elif self.telemetry is not None:
                self.telemetry.ingest_event("crash", name, self.loop.now)

        return crash

    def _restarter(self, name: str) -> Callable[[], None]:
        def restart() -> None:
            self.devices[name].restart(self.loop.now)
            self.restarts += 1
            self.events.append(DegradedEvent(self.loop.now, "restart", name))
            if self.recovery is not None:
                self.recovery.on_restart(name)
            elif self.telemetry is not None:
                self.telemetry.ingest_event("restart", name, self.loop.now)

        return restart
