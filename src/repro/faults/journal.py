"""Write-ahead reconfiguration journal (FlexFault recovery).

Transactional delta application for the controller: before a device's
transition window opens, the orchestrator journals the *intent*
(old version -> new version, window bounds); only once the window
closes cleanly is the entry committed. A device that crashes mid-delta
therefore leaves a PENDING entry behind, and the
:class:`~repro.faults.recovery.RecoveryManager` uses it on restart to
either **resume** (finish the cut-over to the new version) or **roll
back** (retire the staged version) — never to leave the device in a
mixed old/new state.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class TxnState(enum.Enum):
    PENDING = "pending"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


@dataclass
class JournalEntry:
    txn_id: int
    device: str
    old_version: int
    new_version: int
    started_at: float
    window_end: float
    state: TxnState = TxnState.PENDING
    resolved_at: float | None = None
    #: how the entry left PENDING: "window_closed", "resume", "rollback".
    resolution: str | None = None
    #: FlexHA idempotence: the Raft-committed delta this window realizes
    #: (None when the controller is unreplicated). A re-elected leader
    #: re-driving the log skips delta ids already journaled here.
    delta_id: int | None = None

    def to_dict(self) -> dict:
        return {
            "txn": self.txn_id,
            "device": self.device,
            "old_version": self.old_version,
            "new_version": self.new_version,
            "started_at": round(self.started_at, 6),
            "window_end": round(self.window_end, 6),
            "state": self.state.value,
            "resolved_at": None if self.resolved_at is None else round(self.resolved_at, 6),
            "resolution": self.resolution,
            "delta_id": self.delta_id,
        }


@dataclass
class ReconfigJournal:
    """Per-reconfiguration write-ahead journal, one entry per device
    window. Append-only; entries transition PENDING -> COMMITTED or
    PENDING -> ROLLED_BACK exactly once."""

    entries: list[JournalEntry] = field(default_factory=list)
    _ids: itertools.count = field(default_factory=itertools.count)

    def begin(
        self,
        device: str,
        old_version: int,
        new_version: int,
        started_at: float,
        window_end: float,
        delta_id: int | None = None,
    ) -> JournalEntry:
        entry = JournalEntry(
            txn_id=next(self._ids),
            device=device,
            old_version=old_version,
            new_version=new_version,
            started_at=started_at,
            window_end=window_end,
            delta_id=delta_id,
        )
        self.entries.append(entry)
        return entry

    def commit(self, entry: JournalEntry, now: float, resolution: str = "window_closed") -> None:
        if entry.state is not TxnState.PENDING:
            return
        entry.state = TxnState.COMMITTED
        entry.resolved_at = now
        entry.resolution = resolution

    def rollback(self, entry: JournalEntry, now: float) -> None:
        if entry.state is not TxnState.PENDING:
            return
        entry.state = TxnState.ROLLED_BACK
        entry.resolved_at = now
        entry.resolution = "rollback"

    def devices_for(self, delta_id: int) -> set[str]:
        """Devices that already hold a journal entry for one delta id
        (any state) — FlexHA's idempotence check before re-driving."""
        return {e.device for e in self.entries if e.delta_id == delta_id}

    def pending_for(self, device: str) -> JournalEntry | None:
        """The latest unresolved entry for a device (None when clean)."""
        for entry in reversed(self.entries):
            if entry.device == device and entry.state is TxnState.PENDING:
                return entry
        return None

    @property
    def pending(self) -> list[JournalEntry]:
        return [e for e in self.entries if e.state is TxnState.PENDING]

    def committed_by(self) -> float | None:
        """Latest commit time across entries, or None if nothing committed."""
        times = [
            e.resolved_at
            for e in self.entries
            if e.state is TxnState.COMMITTED and e.resolved_at is not None
        ]
        return max(times) if times else None

    def to_dict(self) -> list[dict]:
        return [entry.to_dict() for entry in self.entries]
