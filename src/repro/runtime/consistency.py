"""Consistency checking and levels for runtime updates (§3.4).

The paper requires "application-level, consistent packet processing,
which goes beyond controlling the order of rule updates", with "varied
levels of consistency guarantees". We model three levels:

* ``PER_PACKET_PER_DEVICE`` — every packet is processed by exactly one
  program version *on each device* (the guarantee runtime programmable
  switches provide natively; §2).
* ``PER_PACKET_PATH`` — every packet additionally sees the *same*
  version on every device of its path (needs controller sequencing:
  update devices in reverse path order or tag packets with epochs).
* ``PER_FLOW`` — all packets of one flow see one version (needs
  flow-affine cut-over).

Checkers consume delivered packets and report violations; the scheduler
in :mod:`repro.control.scheduler` is responsible for orchestrating
device updates so the requested level actually holds.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.simulator.packet import FiveTuple, Packet


class ConsistencyLevel(enum.Enum):
    PER_PACKET_PER_DEVICE = "per_packet_per_device"
    PER_PACKET_PATH = "per_packet_path"
    PER_FLOW = "per_flow"


@dataclass
class ConsistencyReport:
    level: ConsistencyLevel
    packets_checked: int = 0
    violations: int = 0
    #: example packet ids for the first few violations (diagnostics).
    examples: list[int] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return self.violations == 0


class ConsistencyChecker:
    """Accumulates delivered packets and verifies a consistency level.

    A device that was *not* updated during the run trivially reports a
    single version; the interesting signal is packets that crossed a
    transition window.
    """

    def __init__(self, level: ConsistencyLevel, devices_in_update: set[str] | None = None):
        self.level = level
        #: restrict path/flow checks to devices actually being updated;
        #: None means every device on the packet's path.
        self._scope = devices_in_update
        self._packets: list[Packet] = []

    def observe(self, packet: Packet) -> None:
        self._packets.append(packet)

    def _scoped_versions(self, packet: Packet) -> list[int]:
        return [
            version
            for device, version in packet.versions_seen.items()
            if self._scope is None or device in self._scope
        ]

    def report(self) -> ConsistencyReport:
        result = ConsistencyReport(level=self.level)
        if self.level is ConsistencyLevel.PER_FLOW:
            return self._per_flow_report(result)
        for packet in self._packets:
            result.packets_checked += 1
            versions = self._scoped_versions(packet)
            if not versions:
                continue
            if self.level is ConsistencyLevel.PER_PACKET_PER_DEVICE:
                # versions_seen maps device -> one version by construction;
                # a violation would require a device to record two versions
                # for one packet, which the runtime cannot produce unless
                # a partially-applied program leaked through. We verify the
                # invariant holds structurally.
                continue
            if len(set(versions)) > 1:
                result.violations += 1
                if len(result.examples) < 5:
                    result.examples.append(packet.packet_id)
        return result

    def _per_flow_report(self, result: ConsistencyReport) -> ConsistencyReport:
        """Per-flow consistency: each flow crosses the update exactly once
        — its version sequence (in delivery order) must be monotone
        non-decreasing, and each individual packet must be path-consistent.
        A flow that flaps old -> new -> old saw an inconsistent cut-over.
        """
        flow_sequences: dict[FiveTuple, list[int]] = defaultdict(list)
        flow_example: dict[FiveTuple, int] = {}
        for packet in self._packets:
            result.packets_checked += 1
            versions = self._scoped_versions(packet)
            if not versions:
                continue
            flow = FiveTuple.of(packet)
            if len(set(versions)) > 1:
                # mixed versions within one packet: immediate violation
                result.violations += 1
                if len(result.examples) < 5:
                    result.examples.append(packet.packet_id)
                continue
            flow_sequences[flow].append(versions[0])
            flow_example.setdefault(flow, packet.packet_id)
        for flow, sequence in flow_sequences.items():
            if sequence != sorted(sequence):
                result.violations += 1
                if len(result.examples) < 5:
                    result.examples.append(flow_example[flow])
        return result


def version_split(packets: list[Packet], device: str) -> dict[int, int]:
    """How many packets each program version processed on ``device`` —
    the old/new split the §2 transition-window claim is about."""
    split: dict[int, int] = {}
    for packet in packets:
        version = packet.versions_seen.get(device)
        if version is not None:
            split[version] = split.get(version, 0) + 1
    return split
