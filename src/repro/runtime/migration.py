"""State migration between devices (§3.4, "Data plane execution").

The paper's motivating example: migrating a stateful app whose state
"mutates per-packet at nanosecond timescales. If all control operations
are performed in software, many tasks become extremely challenging or
infeasible" — control-plane copy loops chase a moving target, while
data-plane mechanisms (Swing State [41], secure variants [65]) migrate
in-band at line rate.

Both strategies are modelled over the logical map representation:

* :func:`control_plane_migration` — iterative snapshot rounds: each
  round copies the currently dirty entries at the controller's copy
  rate, while the data plane keeps dirtying entries at the workload's
  update rate. Converges only when the copy rate exceeds the update
  rate; otherwise gives up after ``max_rounds`` with residual dirt.
* :func:`data_plane_migration` — in-band transfer: entries piggyback on
  cloned packets at line rate; updates during the transfer are routed
  to *both* instances (swing), so convergence is a single pass and no
  update is lost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MigrationError
from repro.lang.maps import MapState
from repro.targets.base import StateEncoding
from repro.compiler.state_encoding import convert


@dataclass(frozen=True)
class MigrationReport:
    strategy: str
    map_name: str
    entries: int
    duration_s: float
    rounds: int
    converged: bool
    #: updates that landed on the source after its snapshot round but were
    #: never copied (control-plane loss); always 0 for data plane.
    updates_lost: int
    #: entries dropped or aliased by an encoding conversion.
    conversion_loss: int = 0


def control_plane_migration(
    source: MapState,
    destination: MapState,
    update_rate_per_s: float,
    copy_rate_entries_per_s: float = 10_000.0,
    rtt_s: float = 0.001,
    max_rounds: int = 12,
    dirty_fraction_cap: float = 1.0,
    freeze_threshold_entries: int = 64,
) -> MigrationReport:
    """Iteratively copy ``source`` into ``destination`` via the controller.

    Round *i* copies the dirty set left by round *i-1*; while it runs,
    the workload dirties ``update_rate * round_duration`` further entries
    (capped at the map size). Once the dirty set shrinks to
    ``freeze_threshold_entries`` the migration finishes with one brief
    atomic freeze that copies the stragglers. It fails after
    ``max_rounds`` — the dirty set never contracted — in which case the
    migration must freeze the live app indefinitely (losing updates) or
    abort.
    """
    total_entries = len(source)
    dirty = float(total_entries)
    elapsed = 0.0
    rounds = 0
    map_capacity = max(source.definition.max_entries, 1)

    while dirty > freeze_threshold_entries and rounds < max_rounds:
        rounds += 1
        round_duration = dirty / copy_rate_entries_per_s + rtt_s
        elapsed += round_duration
        dirty = min(
            update_rate_per_s * round_duration,
            map_capacity * dirty_fraction_cap,
            float(map_capacity),
        )

    converged = dirty <= freeze_threshold_entries
    if converged and dirty > 0:
        # Final atomic freeze over the residual dirty set.
        rounds += 1
        elapsed += dirty / copy_rate_entries_per_s + rtt_s
        dirty = 0.0
    # Whatever is still dirty when we give up is lost to the copy.
    updates_lost = int(dirty) if not converged else 0

    for key, value in source.items():
        destination.put(key, value)

    return MigrationReport(
        strategy="control_plane",
        map_name=source.name,
        entries=total_entries,
        duration_s=elapsed,
        rounds=rounds,
        converged=converged,
        updates_lost=updates_lost,
    )


def data_plane_migration(
    source: MapState,
    destination: MapState,
    line_rate_entries_per_s: float = 5_000_000.0,
    source_encoding: StateEncoding = StateEncoding.STATEFUL_TABLE,
    destination_encoding: StateEncoding = StateEncoding.STATEFUL_TABLE,
    register_slots: int = 4096,
    injector=None,
) -> MigrationReport:
    """Swing-State-style in-band migration.

    Entries travel inside cloned packets at line rate; during the single
    transfer pass, writes are applied to both instances, so no update is
    lost and convergence is guaranteed in one round. If the encodings
    differ, state is converted through the logical representation and
    any aliasing loss is reported.

    ``injector`` is FlexFault's hook: an injected failure aborts the
    transfer before any entry lands (raising :class:`MigrationError`,
    which the orchestrator's recovery path retries); an injected stall
    stretches the transfer duration (the cloned-packet stream was
    throttled) without affecting correctness.
    """
    if line_rate_entries_per_s <= 0:
        raise MigrationError("line rate must be positive")
    if injector is not None and injector.migration_fails(source.name):
        raise MigrationError(
            f"in-band migration of map {source.name!r} failed: injected fault"
        )
    total_entries = len(source)
    duration = total_entries / line_rate_entries_per_s
    if injector is not None:
        duration += injector.migration_stall_s(source.name)

    snapshot = source.snapshot()
    conversion_loss = 0
    if source_encoding is not destination_encoding:
        converted, report = convert(
            snapshot, source_encoding, destination_encoding, register_slots
        )
        conversion_loss = max(report.entries_in - report.entries_out, 0)
        snapshot = converted
    destination.merge(snapshot)

    return MigrationReport(
        strategy="data_plane",
        map_name=source.name,
        entries=total_entries,
        duration_s=duration,
        rounds=1,
        converged=True,
        updates_lost=0,
        conversion_loss=conversion_loss,
    )


def minimum_copy_rate_for_convergence(update_rate_per_s: float, safety: float = 1.25) -> float:
    """Copy rate a control-plane migration needs to converge.

    The dirty recursion ``d' = u * (d / c + rtt)`` contracts only when
    ``u / c < 1``; the safety factor keeps round counts reasonable.
    """
    return update_rate_per_s * safety


def rounds_to_converge(
    entries: int, update_rate_per_s: float, copy_rate_entries_per_s: float, rtt_s: float = 0.001
) -> int | None:
    """Closed-form round estimate for control-plane migration, or None
    when the recursion does not contract."""
    ratio = update_rate_per_s / copy_rate_entries_per_s
    if ratio >= 1.0:
        return None
    dirty = float(entries)
    floor = update_rate_per_s * rtt_s / (1 - ratio)
    if dirty <= max(floor, 1.0):
        return 1
    shrink_per_round = math.log(1.0 / ratio)
    rounds = math.log(dirty / max(floor, 1.0)) / shrink_per_round if shrink_per_round else 1
    return max(int(math.ceil(rounds)), 1)
