"""Runtime reconfiguration orchestration.

Takes the compiler's :class:`~repro.compiler.plan.ReconfigPlan` and
executes it against live :class:`~repro.runtime.device.DeviceRuntime`
instances inside the event loop:

* each affected device gets **one transition window** whose duration is
  the sum of its step costs (steps on one device serialize; distinct
  devices reconfigure concurrently — the plan's makespan);
* runtime programmable devices transition **hitlessly** (old and new
  versions coexist in the window; zero loss); non-hitless devices fall
  back to drain + reflash, losing every packet in the window — this
  contrast is exactly experiment E1/E2;
* MOVE steps that carry durable state trigger an in-band data-plane
  migration at the start of the window so the landing device is warm
  before it takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.plan import CompilationPlan, ReconfigPlan, StepKind
from repro.errors import MigrationError, ReconfigError
from repro.lang.ir import Program
from repro.runtime.device import DeviceRuntime
from repro.runtime.migration import MigrationReport, data_plane_migration
from repro.simulator.engine import EventLoop

#: Window charged to devices that only need an apply-block pointer swap
#: (no structural steps of their own).
DEFAULT_REFRESH_S = 0.02

#: Batching discount: a device applies all of a transition's steps as one
#: transaction (the NSDI'22 mechanism batches table/parser changes), so
#: the window is the dominant step plus a fraction of the rest rather
#: than their serial sum.
BATCH_OVERHEAD_FRACTION = 0.2


def batched_window_s(step_costs: list[float]) -> float:
    """Transition window for one device given its step costs."""
    if not step_costs:
        return DEFAULT_REFRESH_S
    dominant = max(step_costs)
    rest = sum(step_costs) - dominant
    return dominant + BATCH_OVERHEAD_FRACTION * rest


@dataclass
class TransitionReport:
    started_at: float
    finished_at: float = 0.0
    device_windows: dict[str, tuple[float, float]] = field(default_factory=dict)
    steps_applied: int = 0
    migrations: list[MigrationReport] = field(default_factory=list)
    reflashed_devices: list[str] = field(default_factory=list)
    #: FlexFault accounting: reconfiguration commands lost on the control
    #: channel, the retries that re-sent them, and devices whose start
    #: command was never delivered (stranded on the old program).
    commands_dropped: int = 0
    command_retries: int = 0
    stranded_commands: list[str] = field(default_factory=list)
    #: starts deferred to a device restart (crash before the window).
    deferred_starts: list[str] = field(default_factory=list)
    #: in-band migrations retried / abandoned after injected failures.
    migration_retries: int = 0
    failed_migrations: int = 0
    #: FlexHA fencing: start commands a device rejected for carrying a
    #: stale epoch (a deposed leader's in-flight window never opened).
    stale_rejected: int = 0
    #: devices whose start command was suppressed by the dispatch gate
    #: (the proposing leader died before its scheduled dispatch fired).
    undispatched: list[str] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


class ReconfigOrchestrator:
    """Drives plan transitions on a set of live devices."""

    def __init__(self, loop: EventLoop, devices: dict[str, DeviceRuntime]):
        self._loop = loop
        self._devices = devices
        #: per-device end time of the latest *scheduled* window — devices
        #: only learn of a transition when its start event fires, so the
        #: orchestrator keeps its own reservation ledger to serialize
        #: back-to-back updates planned within the same instant.
        self._reserved_until: dict[str, float] = {}
        #: FlexFault wiring (all optional; attached by
        #: :meth:`~repro.control.controller.FlexNetController.attach_faults`):
        #: the fault injector consulted per command/migration, the
        #: write-ahead journal that makes delta application transactional,
        #: and the recovery manager whose policy drives retries.
        self.injector = None
        self.journal = None
        self.recovery = None
        #: FlexScope: set by :meth:`repro.observe.Observer.enable`; each
        #: transition gets a span tree (transition → per-device windows →
        #: migrations) with lifecycle events (delivery, commit, retries).
        self.observer = None

    def device(self, name: str) -> DeviceRuntime:
        if name not in self._devices:
            raise ReconfigError(f"unknown device {name!r}")
        return self._devices[name]

    @property
    def quiesce_at(self) -> float:
        """Time by which every scheduled transition window has closed —
        run the loop past this to observe a settled fleet."""
        return max(self._reserved_until.values(), default=0.0)

    def reserved_until(self, name: str) -> float:
        """End of the latest scheduled window on one device (0.0 when
        none) — FlexHA's resync consults this so it never re-drives a
        device whose window is already open *or scheduled but not yet
        dispatched*."""
        return self._reserved_until.get(name, 0.0)

    def reserve(self, name: str, until: float) -> None:
        """Record an externally driven window (FlexHA re-drive) so later
        orchestrated transitions serialize against it."""
        self._reserved_until[name] = max(self._reserved_until.get(name, 0.0), until)

    def install_plan(self, plan: CompilationPlan) -> None:
        """Cold-install a compiled plan on every device (provisioning)."""
        for device_name, device in self._devices.items():
            hosted = set(plan.elements_on(device_name))
            device.install(plan.program, hosted or set())

    def apply(
        self,
        reconfig: ReconfigPlan,
        new_plan: CompilationPlan,
        old_plan: CompilationPlan | None = None,
        stagger: dict[str, float] | None = None,
        window_override: dict[str, float] | None = None,
        flow_affine: bool = False,
        protected_maps: set[str] | None = None,
        epoch: int | None = None,
        dispatch_gate=None,
        delta_id: int | None = None,
    ) -> TransitionReport:
        """Schedule the transition starting now; returns a report that
        fills in as the event loop advances (read it after run_until
        passes ``report.finished_at``).

        ``stagger`` and ``window_override`` come from the controller's
        consistency scheduler; ``flow_affine`` keys the per-packet draw
        by flow for PER_FLOW consistency. ``protected_maps`` names maps
        FlexCheck's race pass flagged: at each window start their state is
        swing-migrated into the staged version whenever physical sharing
        was impossible (re-keyed/re-declared maps), so old-version
        in-flight updates are not lost.

        FlexHA threading: ``epoch`` stamps every start command with the
        proposing leader's Raft term (devices reject stale epochs);
        ``dispatch_gate`` is checked when each scheduled start fires — a
        False verdict means the proposing leader is no longer alive to
        dispatch, so the command is suppressed (the new leader re-drives
        it from the committed log); ``delta_id`` is journaled for
        idempotent re-driving.
        """
        now = self._loop.now
        report = TransitionReport(started_at=now)
        stagger = stagger or {}
        window_override = window_override or {}
        observer = self.observer
        tracer = observer.tracer if observer is not None else None
        transition_span = None
        if tracer is not None:
            transition_span = tracer.start_span(
                "transition",
                "transition",
                now,
                steps=len(reconfig.steps),
                to_version=new_plan.program.version,
                flow_affine=flow_affine,
            )

        per_device_steps: dict[str, list[float]] = {}
        for step in reconfig.steps:
            per_device_steps.setdefault(step.device, []).append(step.cost_s)
            report.steps_applied += 1
        per_device_cost = {
            device: batched_window_s(costs)
            for device, costs in per_device_steps.items()
        }

        affected = set(per_device_cost)
        # Devices hosting elements in either version also need the new
        # apply block, even without structural steps of their own.
        for device_name in set(new_plan.placement.values()):
            affected.add(device_name)
        if old_plan is not None:
            for device_name in set(old_plan.placement.values()):
                affected.add(device_name)

        finish = now
        for device_name in sorted(affected):
            device = self.device(device_name)
            duration = max(
                per_device_cost.get(device_name, DEFAULT_REFRESH_S),
                window_override.get(device_name, 0.0),
            )
            start_offset = stagger.get(device_name, 0.0)
            hosted = set(new_plan.elements_on(device_name))
            # Serialize with any transition already in flight or already
            # scheduled on this device — overlapping windows would leave
            # three live versions, which hardware cannot do.
            start = max(
                now + start_offset,
                device.busy_until(now),
                self._reserved_until.get(device_name, 0.0),
            )
            hitless = device.target.reconfig.hitless
            window_span = None
            if tracer is not None:
                window_span = tracer.start_span(
                    f"window@{device_name}",
                    "window",
                    start,
                    parent=transition_span,
                    device=device_name,
                    mode="hitless" if hitless else "reflash",
                    to_version=new_plan.program.version,
                )
            if hitless:
                self._loop.schedule_at(
                    start,
                    self._hitless_starter(
                        device,
                        new_plan.program,
                        duration,
                        hosted,
                        flow_affine,
                        protected_maps=protected_maps,
                        report=report,
                        span=window_span,
                        epoch=epoch,
                        dispatch_gate=dispatch_gate,
                        delta_id=delta_id,
                    ),
                )
                end = start + duration
            else:
                self._loop.schedule_at(
                    start,
                    self._reflash_starter(
                        device,
                        new_plan.program,
                        hosted,
                        span=window_span,
                        epoch=epoch,
                        dispatch_gate=dispatch_gate,
                        report=report,
                    ),
                )
                model = device.target.reconfig
                end = start + model.drain_s + model.full_reflash_s + model.redeploy_s
                report.reflashed_devices.append(device_name)
            if tracer is not None:
                # The schedule is deterministic, so the window's close is
                # known upfront; lifecycle moments (delivery, commit,
                # retries, stranding) land as events as the loop advances.
                tracer.end_span(window_span, end)
            report.device_windows[device_name] = (start, end)
            self._reserved_until[device_name] = end
            finish = max(finish, end)

        # State-carrying moves migrate in-band at window start.
        for step in reconfig.steps:
            if step.kind is not StepKind.MOVE or not step.carries_state:
                continue
            self._loop.schedule_at(
                now + stagger.get(step.device, 0.0),
                self._state_mover(
                    step.element, step.source_device, step.device, report,
                    span=transition_span,
                ),
            )

        if tracer is not None:
            tracer.end_span(transition_span, finish, devices=len(affected))
        report.finished_at = finish
        return report

    # -- scheduled-callback factories ------------------------------------------

    def _hitless_starter(
        self,
        device: DeviceRuntime,
        program: Program,
        duration: float,
        hosted: set[str],
        flow_affine: bool = False,
        protected_maps: set[str] | None = None,
        report: TransitionReport | None = None,
        span=None,
        epoch: int | None = None,
        dispatch_gate=None,
        delta_id: int | None = None,
    ):
        def trace_event(name: str, **attrs) -> None:
            if self.observer is not None:
                self.observer.tracer.event(
                    name, self._loop.now, span=span, device=device.name, **attrs
                )

        def deliver() -> None:
            """The start command arrived: fence, open the transition
            window, journal the intent, and warm protected maps."""
            now = self._loop.now
            if not device.admit_epoch(epoch):
                # Fenced: this start was issued by a since-deposed leader
                # and a newer leader has already touched the device.
                if report is not None:
                    report.stale_rejected += 1
                trace_event("stale_epoch_rejected", epoch=epoch)
                return
            trace_event("window_open")
            old = device.active_instance
            staged = device.begin_hitless_update(
                program,
                now=now,
                duration_s=duration,
                hosted_elements=hosted,
                flow_affine=flow_affine,
            )
            if self.journal is not None and old is not None:
                entry = self.journal.begin(
                    device.name,
                    old.program.version,
                    program.version,
                    started_at=now,
                    window_end=now + duration,
                    delta_id=delta_id,
                )
                self._loop.schedule(duration, self._committer(device, entry, span=span))
            if not protected_maps or old is None:
                return
            # Swing-state migration for race-flagged maps whose physical
            # state could not be shared across versions (re-keyed or
            # re-declared): warm the staged copy so no update is lost.
            for map_name in sorted(protected_maps):
                if map_name not in old.maps or map_name not in staged.maps:
                    continue
                old_state = old.maps.state(map_name)
                new_state = staged.maps.state(map_name)
                if new_state is old_state:
                    continue  # physically shared — already consistent
                self._run_migration(
                    old_state, new_state, report, span=span, label=map_name
                )

        def attempt(attempt_no: int = 1) -> None:
            # FlexHA: the dispatch gate asks "is the leader that planned
            # this still the one allowed to dispatch it?" — a dead or
            # deposed leader's scheduled starts are suppressed here and
            # re-driven from the committed log by its successor.
            if dispatch_gate is not None and not dispatch_gate():
                if report is not None:
                    report.undispatched.append(device.name)
                trace_event("dispatch_suppressed", attempt=attempt_no)
                return
            # FlexFault: the start command crosses the control channel;
            # a lost command is retried with backoff (recovery) or
            # strands the device on the old program (baseline).
            if self.injector is not None and self.injector.command_dropped(device.name):
                if report is not None:
                    report.commands_dropped += 1
                trace_event("command_dropped", attempt=attempt_no)
                policy = self.recovery.policy if self.recovery is not None else None
                if policy is not None and attempt_no < policy.max_attempts:
                    if report is not None:
                        report.command_retries += 1
                    trace_event("command_retry", attempt=attempt_no)
                    self._loop.schedule(
                        policy.backoff_s(attempt_no), lambda: attempt(attempt_no + 1)
                    )
                else:
                    if report is not None:
                        report.stranded_commands.append(device.name)
                    trace_event("stranded")
                return
            # Device down (crashed before its window opened): defer the
            # start to the restart path, or strand without recovery.
            if device.crashed or device.stranded:
                if self.recovery is not None:
                    self.recovery.defer_until_restart(device.name, deliver)
                    if report is not None:
                        report.deferred_starts.append(device.name)
                    trace_event("deferred_start")
                else:
                    if report is not None:
                        report.stranded_commands.append(device.name)
                    trace_event("stranded")
                return
            deliver()

        return attempt

    def _committer(self, device: DeviceRuntime, entry, span=None):
        """Commit the journal entry when the window closes cleanly; a
        crashed/stranded device leaves it PENDING for recovery."""

        def commit() -> None:
            if device.crashed or device.stranded:
                return
            device.settle(self._loop.now)
            self.journal.commit(entry, self._loop.now)
            if self.observer is not None:
                self.observer.tracer.event(
                    "commit",
                    self._loop.now,
                    span=span,
                    device=device.name,
                    to_version=entry.new_version,
                )

        return commit

    def _run_migration(self, source_state, destination_state, report, span=None, label=""):
        """One in-band migration under fault injection: injected failures
        are retried immediately (the stream is re-cloned) up to the
        recovery policy's budget; without recovery a failure is final."""
        attempts = 0
        policy = self.recovery.policy if self.recovery is not None else None
        observer = self.observer
        migration_span = None
        if observer is not None:
            migration_span = observer.tracer.start_span(
                f"migrate:{label}" if label else "migrate",
                "migration",
                self._loop.now,
                parent=span,
                map=label,
            )
        while True:
            attempts += 1
            try:
                migration = data_plane_migration(
                    source_state, destination_state, injector=self.injector
                )
            except MigrationError:
                if policy is not None and attempts < policy.max_attempts:
                    if report is not None:
                        report.migration_retries += 1
                    if migration_span is not None:
                        migration_span.add_event(
                            "migration_retry", self._loop.now, attempt=attempts
                        )
                    continue
                if report is not None:
                    report.failed_migrations += 1
                if observer is not None:
                    observer.tracer.end_span(
                        migration_span, self._loop.now, status="error", attempts=attempts
                    )
                return None
            if report is not None:
                report.migrations.append(migration)
            if observer is not None:
                observer.tracer.end_span(
                    migration_span,
                    self._loop.now,
                    attempts=attempts,
                    entries=migration.entries,
                    strategy=migration.strategy,
                )
            return migration

    def _reflash_starter(
        self,
        device: DeviceRuntime,
        program: Program,
        hosted: set[str],
        span=None,
        epoch: int | None = None,
        dispatch_gate=None,
        report: TransitionReport | None = None,
    ):
        def start() -> None:
            if dispatch_gate is not None and not dispatch_gate():
                if report is not None:
                    report.undispatched.append(device.name)
                return
            if not device.admit_epoch(epoch):
                if report is not None:
                    report.stale_rejected += 1
                return
            available_at = device.begin_reflash(
                program, now=self._loop.now, hosted_elements=hosted
            )
            if self.observer is not None:
                self.observer.tracer.event(
                    "reflash",
                    self._loop.now,
                    span=span,
                    device=device.name,
                    available_at=round(available_at, 9),
                )

        return start

    def _state_mover(
        self,
        element: str,
        source: str | None,
        destination: str,
        report: TransitionReport,
        span=None,
    ):
        def move() -> None:
            self._migrate_element_state(element, source, destination, report, span=span)

        return move

    # -- internals used by scheduled callbacks --------------------------------

    def _migrate_element_state(
        self,
        element: str,
        source_name: str | None,
        dest_name: str,
        report: TransitionReport,
        span=None,
    ) -> None:
        if source_name is None:
            return
        source = self.device(source_name).active_instance
        destination = self.device(dest_name).active_instance
        if source is None or destination is None:
            return
        for map_name in source.maps.names():
            if map_name not in destination.maps:
                continue
            if not self._element_touches_map(source.program, element, map_name):
                continue
            self._run_migration(
                source.maps.state(map_name),
                destination.maps.state(map_name),
                report,
                span=span,
                label=map_name,
            )

    @staticmethod
    def _element_touches_map(program: Program, element: str, map_name: str) -> bool:
        if element == map_name:
            return True
        from repro.lang.analyzer import certify

        certificate = certify(program)
        if element not in certificate.profiles:
            return False
        profile = certificate.profiles[element]
        return map_name in profile.map_reads or map_name in profile.map_writes
