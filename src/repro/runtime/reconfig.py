"""Runtime reconfiguration orchestration.

Takes the compiler's :class:`~repro.compiler.plan.ReconfigPlan` and
executes it against live :class:`~repro.runtime.device.DeviceRuntime`
instances inside the event loop:

* each affected device gets **one transition window** whose duration is
  the sum of its step costs (steps on one device serialize; distinct
  devices reconfigure concurrently — the plan's makespan);
* runtime programmable devices transition **hitlessly** (old and new
  versions coexist in the window; zero loss); non-hitless devices fall
  back to drain + reflash, losing every packet in the window — this
  contrast is exactly experiment E1/E2;
* MOVE steps that carry durable state trigger an in-band data-plane
  migration at the start of the window so the landing device is warm
  before it takes over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.plan import CompilationPlan, ReconfigPlan, StepKind
from repro.errors import ReconfigError
from repro.lang.ir import Program
from repro.runtime.device import DeviceRuntime
from repro.runtime.migration import MigrationReport, data_plane_migration
from repro.simulator.engine import EventLoop

#: Window charged to devices that only need an apply-block pointer swap
#: (no structural steps of their own).
DEFAULT_REFRESH_S = 0.02

#: Batching discount: a device applies all of a transition's steps as one
#: transaction (the NSDI'22 mechanism batches table/parser changes), so
#: the window is the dominant step plus a fraction of the rest rather
#: than their serial sum.
BATCH_OVERHEAD_FRACTION = 0.2


def batched_window_s(step_costs: list[float]) -> float:
    """Transition window for one device given its step costs."""
    if not step_costs:
        return DEFAULT_REFRESH_S
    dominant = max(step_costs)
    rest = sum(step_costs) - dominant
    return dominant + BATCH_OVERHEAD_FRACTION * rest


@dataclass
class TransitionReport:
    started_at: float
    finished_at: float = 0.0
    device_windows: dict[str, tuple[float, float]] = field(default_factory=dict)
    steps_applied: int = 0
    migrations: list[MigrationReport] = field(default_factory=list)
    reflashed_devices: list[str] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at


class ReconfigOrchestrator:
    """Drives plan transitions on a set of live devices."""

    def __init__(self, loop: EventLoop, devices: dict[str, DeviceRuntime]):
        self._loop = loop
        self._devices = devices
        #: per-device end time of the latest *scheduled* window — devices
        #: only learn of a transition when its start event fires, so the
        #: orchestrator keeps its own reservation ledger to serialize
        #: back-to-back updates planned within the same instant.
        self._reserved_until: dict[str, float] = {}

    def device(self, name: str) -> DeviceRuntime:
        if name not in self._devices:
            raise ReconfigError(f"unknown device {name!r}")
        return self._devices[name]

    def install_plan(self, plan: CompilationPlan) -> None:
        """Cold-install a compiled plan on every device (provisioning)."""
        for device_name, device in self._devices.items():
            hosted = set(plan.elements_on(device_name))
            device.install(plan.program, hosted or set())

    def apply(
        self,
        reconfig: ReconfigPlan,
        new_plan: CompilationPlan,
        old_plan: CompilationPlan | None = None,
        stagger: dict[str, float] | None = None,
        window_override: dict[str, float] | None = None,
        flow_affine: bool = False,
        protected_maps: set[str] | None = None,
    ) -> TransitionReport:
        """Schedule the transition starting now; returns a report that
        fills in as the event loop advances (read it after run_until
        passes ``report.finished_at``).

        ``stagger`` and ``window_override`` come from the controller's
        consistency scheduler; ``flow_affine`` keys the per-packet draw
        by flow for PER_FLOW consistency. ``protected_maps`` names maps
        FlexCheck's race pass flagged: at each window start their state is
        swing-migrated into the staged version whenever physical sharing
        was impossible (re-keyed/re-declared maps), so old-version
        in-flight updates are not lost.
        """
        now = self._loop.now
        report = TransitionReport(started_at=now)
        stagger = stagger or {}
        window_override = window_override or {}

        per_device_steps: dict[str, list[float]] = {}
        for step in reconfig.steps:
            per_device_steps.setdefault(step.device, []).append(step.cost_s)
            report.steps_applied += 1
        per_device_cost = {
            device: batched_window_s(costs)
            for device, costs in per_device_steps.items()
        }

        affected = set(per_device_cost)
        # Devices hosting elements in either version also need the new
        # apply block, even without structural steps of their own.
        for device_name in set(new_plan.placement.values()):
            affected.add(device_name)
        if old_plan is not None:
            for device_name in set(old_plan.placement.values()):
                affected.add(device_name)

        finish = now
        for device_name in sorted(affected):
            device = self.device(device_name)
            duration = max(
                per_device_cost.get(device_name, DEFAULT_REFRESH_S),
                window_override.get(device_name, 0.0),
            )
            start_offset = stagger.get(device_name, 0.0)
            hosted = set(new_plan.elements_on(device_name))
            # Serialize with any transition already in flight or already
            # scheduled on this device — overlapping windows would leave
            # three live versions, which hardware cannot do.
            start = max(
                now + start_offset,
                device.busy_until(now),
                self._reserved_until.get(device_name, 0.0),
            )
            if device.target.reconfig.hitless:
                self._loop.schedule_at(
                    start,
                    self._hitless_starter(
                        device,
                        new_plan.program,
                        duration,
                        hosted,
                        flow_affine,
                        protected_maps=protected_maps,
                        report=report,
                    ),
                )
                end = start + duration
            else:
                self._loop.schedule_at(
                    start, self._reflash_starter(device, new_plan.program, hosted)
                )
                model = device.target.reconfig
                end = start + model.drain_s + model.full_reflash_s + model.redeploy_s
                report.reflashed_devices.append(device_name)
            report.device_windows[device_name] = (start, end)
            self._reserved_until[device_name] = end
            finish = max(finish, end)

        # State-carrying moves migrate in-band at window start.
        for step in reconfig.steps:
            if step.kind is not StepKind.MOVE or not step.carries_state:
                continue
            self._loop.schedule_at(
                now + stagger.get(step.device, 0.0),
                self._state_mover(step.element, step.source_device, step.device, report),
            )

        report.finished_at = finish
        return report

    # -- scheduled-callback factories ------------------------------------------

    def _hitless_starter(
        self,
        device: DeviceRuntime,
        program: Program,
        duration: float,
        hosted: set[str],
        flow_affine: bool = False,
        protected_maps: set[str] | None = None,
        report: TransitionReport | None = None,
    ):
        def start() -> None:
            old = device.active_instance
            staged = device.begin_hitless_update(
                program,
                now=self._loop.now,
                duration_s=duration,
                hosted_elements=hosted,
                flow_affine=flow_affine,
            )
            if not protected_maps or old is None:
                return
            # Swing-state migration for race-flagged maps whose physical
            # state could not be shared across versions (re-keyed or
            # re-declared): warm the staged copy so no update is lost.
            for map_name in sorted(protected_maps):
                if map_name not in old.maps or map_name not in staged.maps:
                    continue
                old_state = old.maps.state(map_name)
                new_state = staged.maps.state(map_name)
                if new_state is old_state:
                    continue  # physically shared — already consistent
                migration = data_plane_migration(old_state, new_state)
                if report is not None:
                    report.migrations.append(migration)

        return start

    def _reflash_starter(self, device: DeviceRuntime, program: Program, hosted: set[str]):
        def start() -> None:
            device.begin_reflash(program, now=self._loop.now, hosted_elements=hosted)

        return start

    def _state_mover(
        self, element: str, source: str | None, destination: str, report: TransitionReport
    ):
        def move() -> None:
            self._migrate_element_state(element, source, destination, report)

        return move

    # -- internals used by scheduled callbacks --------------------------------

    def _migrate_element_state(
        self, element: str, source_name: str | None, dest_name: str, report: TransitionReport
    ) -> None:
        if source_name is None:
            return
        source = self.device(source_name).active_instance
        destination = self.device(dest_name).active_instance
        if source is None or destination is None:
            return
        for map_name in source.maps.names():
            if map_name not in destination.maps:
                continue
            if not self._element_touches_map(source.program, element, map_name):
                continue
            migration = data_plane_migration(
                source.maps.state(map_name), destination.maps.state(map_name)
            )
            report.migrations.append(migration)

    @staticmethod
    def _element_touches_map(program: Program, element: str, map_name: str) -> bool:
        if element == map_name:
            return True
        from repro.lang.analyzer import certify

        certificate = certify(program)
        if element not in certificate.profiles:
            return False
        profile = certificate.profiles[element]
        return map_name in profile.map_reads or map_name in profile.map_writes
