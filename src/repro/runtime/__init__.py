"""Device runtimes, hitless reconfiguration, state migration, and dRPC."""

from repro.runtime.consistency import (
    ConsistencyChecker,
    ConsistencyLevel,
    ConsistencyReport,
    version_split,
)
from repro.runtime.device import DeviceRuntime, DeviceStats
from repro.runtime.drpc import (
    DrpcFabric,
    RpcRegistry,
    ServiceSpec,
    make_migrate_service,
    make_state_read_service,
    make_state_write_service,
)
from repro.runtime.migration import (
    MigrationReport,
    control_plane_migration,
    data_plane_migration,
    minimum_copy_rate_for_convergence,
    rounds_to_converge,
)
from repro.runtime.reconfig import ReconfigOrchestrator, TransitionReport

__all__ = [
    "ConsistencyChecker",
    "ConsistencyLevel",
    "ConsistencyReport",
    "DeviceRuntime",
    "DeviceStats",
    "DrpcFabric",
    "MigrationReport",
    "ReconfigOrchestrator",
    "RpcRegistry",
    "ServiceSpec",
    "TransitionReport",
    "control_plane_migration",
    "data_plane_migration",
    "make_migrate_service",
    "make_state_read_service",
    "make_state_write_service",
    "minimum_copy_rate_for_convergence",
    "rounds_to_converge",
    "version_split",
]
