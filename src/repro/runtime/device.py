"""Per-device runtime: live program versions and hitless transitions.

A :class:`DeviceRuntime` is the node object that sits on simulated
network paths. It owns the device's installed program version(s) and
implements the paper's §2 reconfiguration semantics:

* **Hitless update** (runtime programmable targets): the new version is
  staged alongside the old; during the transition window each packet is
  processed *entirely* by one version (old XOR new, chosen by a
  deterministic per-packet draw that shifts toward the new version as
  the window progresses). Same-shape maps and tables are physically
  shared between versions, so state survives — nothing is lost and no
  packet is dropped.

* **Reflash update** (compile-time baseline): the device drains (all
  packets during drain + reflash + redeploy are *lost*), and the new
  program starts cold — durable state is gone unless the control plane
  migrated it out beforehand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReconfigError
from repro.lang.ir import Program
from repro.simulator.packet import Packet
from repro.simulator.pipeline_exec import ProgramInstance
from repro.targets.base import Target
from repro.util import stable_hash


@dataclass
class DeviceStats:
    processed: int = 0
    dropped_by_program: int = 0
    total_ops: int = 0
    energy_nj: float = 0.0
    per_version: dict[int, int] = field(default_factory=dict)
    reconfigurations: int = 0
    #: packets lost because the device was unavailable are counted by the
    #: network (the packet never reaches ``process``); this counts only
    #: the drain windows the device has undergone.
    drain_windows: int = 0
    #: packets tail-dropped because the ingress queue overflowed.
    queue_drops: int = 0
    #: maximum queue depth observed (packets).
    max_queue_depth: int = 0
    #: injected crashes (FlexFault) and the restarts that followed.
    crashes: int = 0
    restarts: int = 0
    #: mutations rejected because they carried a stale fencing epoch
    #: (a deposed controller leader kept writing; FlexHA).
    stale_rejections: int = 0


@dataclass
class _Transition:
    old: ProgramInstance
    new: ProgramInstance
    start: float
    end: float
    #: key the per-packet draw by flow instead of packet id, so all
    #: packets of one flow cut over together (PER_FLOW consistency).
    flow_affine: bool = False
    #: sticky per-flow decisions: a flow commits to the version chosen at
    #: its first packet inside the window and never flaps back.
    flow_epochs: dict = field(default_factory=dict)
    #: set when a crash interrupted the window mid-cut-over: the delta
    #: was partially applied, the version-select state is corrupt, and
    #: the split freezes at this progress until recovery resolves it.
    frozen_progress: float | None = None


class DeviceRuntime:
    """One device on the network; see module docstring."""

    def __init__(self, name: str, target: Target, queue_capacity_packets: int = 4096):
        self.name = name
        self.target = target
        self.stats = DeviceStats()
        #: FIFO ingress queue model: packets are tail-dropped beyond this
        #: depth (a shared-buffer switch queue).
        self.queue_capacity_packets = queue_capacity_packets
        self._active: ProgramInstance | None = None
        self._transition: _Transition | None = None
        self._unavailable_until = 0.0
        self._crashed = False
        #: single-server queue state: when the "pipeline" frees up.
        self._busy_until_s = 0.0
        #: FlexPath: compile installed programs to closures instead of
        #: interpreting them, and optionally serve repeat flows of
        #: provably cacheable programs from a flow micro-cache.
        self._fastpath = False
        self._flow_cache = None
        #: FlexBatch: route settled-active packets through the batched
        #: backend (memo/closure tiers) instead of the flow cache.
        self._batching = False
        #: FlexScope: set by :meth:`repro.observe.Observer.enable` only;
        #: ``None`` keeps the packet path observation-free (one attribute
        #: load per packet, nothing else).
        self.observer = None
        #: FlexHA fencing: highest controller epoch (Raft leader term)
        #: this device has admitted a mutation from. Mutations carrying a
        #: lower epoch come from a deposed leader and are rejected.
        self.fencing_epoch = 0

    # -- FlexHA fencing -----------------------------------------------------------

    def admit_epoch(self, epoch: int | None) -> bool:
        """Fencing check run before any control-plane mutation.

        ``None`` means the writer predates FlexHA (single controller, no
        fencing) and is always admitted. Otherwise the epoch must be at
        least the highest one seen; admitting ratchets the watermark so a
        deposed leader's in-flight writes can never land after the new
        leader's first write reaches this device.
        """
        if epoch is None:
            return True
        if epoch < self.fencing_epoch:
            self.stats.stale_rejections += 1
            return False
        self.fencing_epoch = epoch
        return True

    # -- FlexPath ----------------------------------------------------------------

    def enable_fastpath(
        self, flow_cache: bool = True, cache_capacity: int = 4096, enabled: bool = True
    ) -> None:
        """Turn on FlexPath compiled execution for every current and
        future program version on this device; with ``flow_cache``, also
        attach a flow micro-cache (used only for program versions the
        cacheability analysis admits, and bypassed mid-transition).
        ``enabled=False`` reverts to interpreted execution, dropping the
        compiled bodies and the cache (and FlexBatch, which rides on the
        compiled path)."""
        if not enabled:
            self._fastpath = False
            self._flow_cache = None
            if self._batching:
                self.enable_batching(False)
            for instance in self._instances():
                instance.enable_fastpath(False)
            return
        self._fastpath = True
        if not flow_cache:
            self._flow_cache = None
        elif self._flow_cache is None or self._flow_cache.capacity != cache_capacity:
            from repro.simulator.fastpath import FlowCache

            self._flow_cache = FlowCache(cache_capacity)
        for instance in self._instances():
            instance.enable_fastpath()

    def enable_batching(self, enabled: bool = True) -> None:
        """Turn on FlexBatch for every current and future program
        version on this device (implies FlexPath). The normal packet
        path then routes through each instance's batch executor — whose
        memo tier subsumes the flow cache for cacheable programs — and
        callers holding several packets can amortize further via
        :meth:`ProgramInstance.process_batch`."""
        self._batching = enabled
        if enabled and not self._fastpath:
            self.enable_fastpath()
        for instance in self._instances():
            instance.enable_batching(enabled)

    def engine_status(self) -> dict:
        """This device's execution-engine configuration, as reported by
        :meth:`FlexNet.engine` into the fleet-wide ``EngineStatus``."""
        cache = self._flow_cache
        return {
            "fastpath": self._fastpath,
            "batch": self._batching,
            "flow_cache": cache is not None,
            "cache_capacity": cache.capacity if cache is not None else 0,
        }

    def reset_batch_window(self) -> None:
        """FlexScale window boundary: flush every executor's batch state
        so batching never spans a shard protocol window."""
        for instance in self._instances():
            executor = instance._batch_executor
            if executor is not None:
                executor.reset_window()

    def batch_stats(self):
        """Aggregate FlexBatch counters across this device's live
        program versions (None when batching is off or nothing ran)."""
        total = None
        for instance in self._instances():
            executor = instance._batch_executor
            if executor is None:
                continue
            if total is None:
                from repro.simulator.batch import BatchStats

                total = BatchStats()
            stats = executor.stats
            total.batches += stats.batches
            total.packets += stats.packets
            total.groups += stats.groups
            total.memo_hits += stats.memo_hits
            total.memo_misses += stats.memo_misses
            total.closure_packets += stats.closure_packets
            total.fallback_packets += stats.fallback_packets
            total.revoked_batches += stats.revoked_batches
            total.revocations += stats.revocations
            total.memo_entries_dropped += stats.memo_entries_dropped
            total.max_batch_size = max(total.max_batch_size, stats.max_batch_size)
        return total

    @property
    def flow_cache(self):
        return self._flow_cache

    def _instances(self):
        if self._active is not None:
            yield self._active
        if self._transition is not None:
            yield self._transition.old
            yield self._transition.new

    def _on_program_change(self, *instances: ProgramInstance) -> None:
        """Hook run on every install/update/resolve: propagate fastpath
        to the new version(s) and drop all cached flow outcomes (the
        validity token would catch rule-level drift, but a program swap
        can legitimately reset epochs, so invalidate wholesale)."""
        if self._fastpath:
            for instance in instances:
                instance.enable_fastpath()
        if self._batching:
            for instance in instances:
                instance.enable_batching()
        if self._flow_cache is not None:
            self._flow_cache.clear()

    # -- install / update -------------------------------------------------------

    @property
    def active_program(self) -> Program | None:
        return self._active.program if self._active else None

    @property
    def active_instance(self) -> ProgramInstance | None:
        return self._active

    def install(self, program: Program, hosted_elements: set[str] | None = None) -> None:
        """Cold install (device provisioning, before traffic)."""
        self._active = ProgramInstance(program, hosted_elements)
        self._transition = None
        self._on_program_change(self._active)

    def begin_hitless_update(
        self,
        program: Program,
        now: float,
        duration_s: float,
        hosted_elements: set[str] | None = None,
        flow_affine: bool = False,
    ) -> ProgramInstance:
        """Stage a new version; it takes over gradually until ``now +
        duration_s``, at which point the old version is retired.

        Requires a runtime programmable target (``reconfig.hitless``).
        """
        if not self.target.reconfig.hitless:
            raise ReconfigError(
                f"device {self.name!r} ({self.target.arch}) is not hitlessly reconfigurable"
            )
        if self._active is None:
            raise ReconfigError(f"device {self.name!r} has no active program to update")
        if self._transition is not None:
            if self._transition.frozen_progress is not None:
                raise ReconfigError(
                    f"device {self.name!r} is stranded mid-delta (crashed during its "
                    f"transition window); recovery must resolve it first"
                )
            if now >= self._transition.end:
                # The previous window elapsed without traffic observing its
                # completion; finalize it now.
                self._active = self._transition.new
                self._transition = None
            else:
                raise ReconfigError(
                    f"device {self.name!r} already has a transition in flight "
                    f"(ends t={self._transition.end:.3f}, now t={now:.3f})"
                )
        new_instance = ProgramInstance(program, hosted_elements)
        self._share_state(self._active, new_instance)
        self._transition = _Transition(
            old=self._active,
            new=new_instance,
            start=now,
            end=now + duration_s,
            flow_affine=flow_affine,
        )
        self.stats.reconfigurations += 1
        self._on_program_change(new_instance)
        return new_instance

    def begin_reflash(
        self,
        program: Program,
        now: float,
        hosted_elements: set[str] | None = None,
    ) -> float:
        """The compile-time baseline: drain + full reflash + redeploy.

        Returns the time at which the device is available again. All
        durable state is lost; packets arriving in the window are lost.
        """
        model = self.target.reconfig
        downtime = model.drain_s + model.full_reflash_s + model.redeploy_s
        self._unavailable_until = max(self._unavailable_until, now) + downtime
        self._active = ProgramInstance(program, hosted_elements)  # cold state
        self._transition = None
        self.stats.reconfigurations += 1
        self.stats.drain_windows += 1
        self._on_program_change(self._active)
        return self._unavailable_until

    @staticmethod
    def _share_state(old: ProgramInstance, new: ProgramInstance) -> None:
        """Physically share same-shape maps and tables across versions —
        the hardware keeps one copy, so both versions see one state."""
        for map_def in new.program.maps:
            if map_def.name in old.maps:
                old_state = old.maps.state(map_def.name)
                if old_state.definition.key_fields == map_def.key_fields:
                    new.maps._states[map_def.name] = old_state  # noqa: SLF001 - deliberate sharing
        for table in new.program.tables:
            old_rules = old.rules.get(table.name)
            if old_rules is None or old_rules.definition.keys != table.keys:
                continue
            if set(old_rules.definition.actions) <= set(table.actions):
                new.rules[table.name] = old_rules
            else:
                # The table's action set shrank, so the physical table
                # cannot simply be aliased — adopt the compatible rules
                # plus their runtime artifacts (hit counters, miss count,
                # meter) instead of restarting the table cold.
                new.rules[table.name].adopt_from(old_rules)

    # -- crash / restart (FlexFault) --------------------------------------------

    def crash(self, now: float) -> None:
        """Hard-stop the device (fault injection). A crash that lands
        inside a transition window interrupts the cut-over mid-delta:
        the version-select state is left half-programmed, so the split
        between old and new freezes at the progress reached — the
        partial-delta fault the reconfiguration journal repairs."""
        self._crashed = True
        self.stats.crashes += 1
        transition = self._transition
        if transition is not None and transition.frozen_progress is None:
            if now >= transition.end:
                # The window had actually closed; finalize instead of freezing.
                self._active = transition.new
                self._transition = None
            else:
                span = transition.end - transition.start
                transition.frozen_progress = (
                    (now - transition.start) / span if span > 0 else 0.0
                )

    def restart(self, now: float) -> None:
        """Power the device back on. Without recovery, an interrupted
        transition stays frozen — the device keeps serving a mixed
        old/new split until :meth:`resolve_interrupted` is called."""
        self._crashed = False
        self._unavailable_until = max(self._unavailable_until, now)
        self.stats.restarts += 1

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def stranded(self) -> bool:
        """True while an interrupted (crash-frozen) transition is live."""
        return self._transition is not None and self._transition.frozen_progress is not None

    def resolve_interrupted(self, to_new: bool) -> None:
        """Recovery resolution of a crash-interrupted transition: replay
        the journal forward (``to_new=True``, resume) or backward
        (rollback). Applied as one atomic transaction on restart."""
        if self._transition is None:
            raise ReconfigError(f"device {self.name!r} has no transition to resolve")
        self._active = self._transition.new if to_new else self._transition.old
        self._transition = None
        self._on_program_change(self._active)

    def settle(self, now: float) -> None:
        """Finalize an elapsed (non-frozen) transition window without
        waiting for the next packet to observe it."""
        transition = self._transition
        if (
            transition is not None
            and transition.frozen_progress is None
            and now >= transition.end
        ):
            self._active = transition.new
            self._transition = None

    # -- PacketProcessor protocol ---------------------------------------------------

    def available(self, now: float) -> bool:
        return not self._crashed and now >= self._unavailable_until

    def process(self, packet: Packet, now: float) -> float:
        instance = self._choose_instance(packet, now)
        if instance is None:
            return self.target.performance.base_latency_ns * 1e-9

        # Ingress queue: one packet per service slot at line rate. The
        # resulting depth is exposed to programs as ``meta.queue_depth``
        # (what ECN-marking CC functions read) and overflow tail-drops.
        service_s = 1.0 / (self.target.performance.throughput_mpps * 1e6)
        start = max(self._busy_until_s, now)
        queue_depth = int((start - now) / service_s) if service_s > 0 else 0
        packet.meta["queue_depth"] = queue_depth
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, queue_depth)
        if queue_depth >= self.queue_capacity_packets:
            from repro.simulator.packet import Verdict

            packet.verdict = Verdict.LOST
            self.stats.queue_drops += 1
            return (start - now) + service_s
        self._busy_until_s = start + service_s
        queueing_delay_s = start - now

        # FlexPath flow cache: only consulted for the settled active
        # version (never mid-transition, where the old/new split must
        # stay per-packet exact); falls through to normal execution for
        # uncacheable programs or on miss-with-record.
        # FlexScope sampling: a sampled packet skips the flow cache and
        # runs through the interpreter with a frame collector attached
        # (FlexPath's differential-identity guarantee makes the outcome
        # byte-identical to the compiled path, so only this packet's
        # execution *route* changes — never its verdict or cost model).
        observer = self.observer
        trace = observer.begin_packet() if observer is not None else None
        result = None
        cache = self._flow_cache
        if trace is None and self._transition is None and instance is self._active:
            if instance.batching_enabled:
                # FlexBatch route (same guard as the flow cache: settled
                # active version only). Size-1 batches still hit the
                # memo tier for cacheable programs, which is what the
                # flow cache would have done.
                result = instance.process_batch([packet], now)[0]
            elif cache is not None:
                result = cache.process(instance, packet, now)
        if result is None:
            if trace is None:
                result = instance.process(packet, now)
            else:
                result = instance.process(packet, now, trace=trace)
        # Pass-through devices (hosting no element of the program) do not
        # participate in version consistency — a packet's "version" is
        # defined by the elements that processed it. Hosting devices also
        # stamp the version they used so a downstream device that is
        # still mid-window honours the upstream decision (even after the
        # upstream device's own window has closed).
        if instance.hosted_elements is None or instance.hosted_elements:
            packet.versions_seen[self.name] = result.version
            packet.meta["_epoch"] = result.version
        self.stats.processed += 1
        self.stats.total_ops += result.ops
        self.stats.per_version[result.version] = (
            self.stats.per_version.get(result.version, 0) + 1
        )
        self.stats.energy_nj += self.target.performance.packet_energy_nj(result.ops)
        if packet.meta.get("drop_flag"):
            self.stats.dropped_by_program += 1
        if trace is not None:
            observer.record_packet(self.name, packet, result, trace, now)
        return queueing_delay_s + self.target.performance.packet_latency_ns(result.ops) * 1e-9

    def _choose_instance(self, packet: Packet, now: float) -> ProgramInstance | None:
        transition = self._transition
        if transition is None:
            return self._active
        if transition.frozen_progress is not None:
            # Stranded mid-delta: the cut-over pointer table is half
            # written, so the split is frozen and upstream epoch stamps
            # are NOT honoured (the stamp-matching rules were part of
            # the partially applied delta). This is the mixed old/new
            # state recovery exists to prevent.
            draw = stable_hash((packet.packet_id,)) % 1_000_000 / 1_000_000
            chosen = transition.new if draw < transition.frozen_progress else transition.old
            packet.meta["_epoch"] = chosen.version
            return chosen
        if now >= transition.end:
            # Transition complete: retire the old version.
            self._active = transition.new
            self._transition = None
            return self._active
        # Epoch stamping for path-wide consistency: if an upstream device
        # already bound this packet to a version we also hold, honour it.
        epoch = packet.meta.get("_epoch")
        if epoch == transition.new.version:
            return transition.new
        if epoch == transition.old.version:
            return transition.old
        # Mid-window per-packet atomic choice: the probability of taking
        # the new version rises linearly over the window, modelling the
        # incremental cut-over of table pointers. The draw is a
        # deterministic hash (per packet, or per flow for flow-affine
        # transitions) so runs are reproducible; the decision is stamped
        # on the packet for downstream devices.
        progress = (now - transition.start) / (transition.end - transition.start)
        if transition.flow_affine:
            from repro.simulator.packet import FiveTuple

            flow = FiveTuple.of(packet)
            flow_key = (flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port)
            memoized = transition.flow_epochs.get(flow_key)
            if memoized is not None:
                chosen = (
                    transition.new
                    if memoized == transition.new.version
                    else transition.old
                )
                packet.meta["_epoch"] = chosen.version
                return chosen
            draw = stable_hash(flow_key) % 1_000_000 / 1_000_000
            chosen = transition.new if draw < progress else transition.old
            transition.flow_epochs[flow_key] = chosen.version
            packet.meta["_epoch"] = chosen.version
            return chosen
        draw = stable_hash((packet.packet_id,)) % 1_000_000 / 1_000_000
        chosen = transition.new if draw < progress else transition.old
        packet.meta["_epoch"] = chosen.version
        return chosen

    # -- introspection ----------------------------------------------------------------

    @property
    def in_transition(self) -> bool:
        return self._transition is not None

    @property
    def staged_instance(self) -> ProgramInstance | None:
        """The incoming program version while a transition window is open
        (None otherwise). The reconfiguration orchestrator uses this to
        swing-migrate state into maps that could not be physically shared."""
        return self._transition.new if self._transition is not None else None

    def busy_until(self, now: float) -> float:
        """Earliest time a new transition may start on this device."""
        busy = max(self._unavailable_until, now)
        if self._transition is not None:
            busy = max(busy, self._transition.end)
        return busy

    def utilization_fraction(self, interval_s: float, packets_in_interval: int) -> float:
        """Fraction of the device's line-rate budget consumed."""
        budget = self.target.performance.throughput_mpps * 1e6 * interval_s
        return packets_in_interval / budget if budget else 1.0
