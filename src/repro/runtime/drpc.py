"""Data plane RPC (dRPC) services and discovery (§3.4).

"The infrastructure program will provide a set of data plane RPC
services for common utilities (e.g., app migration or state
replication). Tenant datapaths need not reinvent the wheel but rather
invoke these remote services via data plane RPC calls."

The model: every device may register services; a call from device A to
service S on device B costs one in-band round trip (link latency +
data-plane execution of the handler, nanoseconds per op), whereas the
same operation through the controller costs two control-channel RTTs
plus software handling (milliseconds). Discovery is either a
control-plane lookup or the in-network registry protocol
(:class:`RpcRegistry` gossips service advertisements with a propagation
delay per hop).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import FlexNetError, RpcError
from repro.limits import CONTROL_PROCESSING_S, CONTROL_RTT_S

__all__ = [
    "CONTROL_PROCESSING_S",
    "CONTROL_RTT_S",
    "DrpcFabric",
    "RpcRegistry",
    "RpcStats",
    "ServiceSpec",
    "make_migrate_service",
    "make_state_read_service",
    "make_state_write_service",
]

Handler = Callable[[tuple[int, ...]], tuple[int, ...]]


@dataclass(frozen=True)
class ServiceSpec:
    """One advertised dRPC service."""

    name: str
    device: str
    #: certified per-invocation cost in abstract ops (drives latency).
    ops: int
    handler: Handler


@dataclass
class RpcStats:
    calls: int = 0
    total_latency_s: float = 0.0
    failures: int = 0
    #: failed attempts that were retried (and the backoff they cost).
    retries: int = 0
    backoff_s: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.calls if self.calls else 0.0


class RpcRegistry:
    """In-network service registry with gossip-style propagation.

    Registration on device D becomes visible to a device H hops away
    after ``hops * advertisement_interval_s`` of virtual time; lookups
    before then raise :class:`RpcError` (service not yet discovered),
    modelling the real-time discovery protocol the paper sketches.
    """

    def __init__(self, advertisement_interval_s: float = 0.05):
        self._services: dict[str, ServiceSpec] = {}
        self._registered_at: dict[str, float] = {}
        self.advertisement_interval_s = advertisement_interval_s

    def register(self, service: ServiceSpec, now: float = 0.0) -> None:
        if service.name in self._services:
            raise RpcError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        self._registered_at[service.name] = now

    def unregister(self, name: str) -> None:
        self._services.pop(name, None)
        self._registered_at.pop(name, None)

    def lookup(self, name: str, now: float = 0.0, hops_from_provider: int = 0) -> ServiceSpec:
        if name not in self._services:
            raise RpcError(f"no such dRPC service {name!r}")
        visible_at = self._registered_at[name] + hops_from_provider * self.advertisement_interval_s
        if now < visible_at:
            raise RpcError(
                f"service {name!r} not yet discovered at this hop "
                f"(visible at t={visible_at:.3f}, now t={now:.3f})"
            )
        return self._services[name]

    @property
    def service_names(self) -> list[str]:
        return sorted(self._services)


class DrpcFabric:
    """Executes dRPC calls between devices and costs them.

    ``per_op_ns`` of the *serving* device determines handler time; the
    caller pays one link round trip. :meth:`call_via_controller` costs
    the software path for the same operation, for E10's comparison.
    """

    def __init__(self, registry: RpcRegistry, link_latency_s: float = 1e-6):
        self._registry = registry
        self._link_latency_s = link_latency_s
        self.stats: dict[str, RpcStats] = {}
        #: per-op handler speed per device (ns); callers set this from
        #: their targets when wiring the fabric.
        self.device_per_op_ns: dict[str, float] = {}
        #: optional FlexFault injector: when set, calls may fail at the
        #: handler (modelling a flaky in-band service).
        self.injector = None
        #: FlexScope: set by :meth:`repro.observe.Observer.enable`; each
        #: call becomes one span (failures end with status="error").
        self.observer = None
        #: FlexHA fencing: when set, every call carrying an ``epoch``
        #: runs ``epoch_gate(serving_device, epoch) -> bool`` before the
        #: handler; a False verdict (stale epoch) raises RpcError and
        #: the handler never runs.
        self.epoch_gate: Callable[[str, int], bool] | None = None

    def set_device_speed(self, device: str, per_op_ns: float) -> None:
        self.device_per_op_ns[device] = per_op_ns

    def call(
        self,
        service_name: str,
        args: tuple[int, ...],
        caller_device: str,
        now: float = 0.0,
        hops: int = 1,
        epoch: int | None = None,
    ) -> tuple[tuple[int, ...], float]:
        """In-band invocation; returns (result, latency_seconds).

        ``epoch`` is the caller's fencing epoch (FlexHA): when the
        fabric has an ``epoch_gate`` installed, a stale epoch is
        rejected at the serving device before the handler runs.
        """
        observer = self.observer
        if observer is None:
            return self._call(service_name, args, caller_device, now, hops, epoch)
        span = observer.tracer.start_span(
            f"drpc:{service_name}",
            "drpc",
            now,
            service=service_name,
            caller=caller_device,
            hops=hops,
        )
        try:
            result, latency = self._call(service_name, args, caller_device, now, hops, epoch)
        except RpcError as exc:
            observer.tracer.end_span(span, now, status="error", error=str(exc))
            raise
        observer.tracer.end_span(span, now + latency, latency_s=round(latency, 9))
        return result, latency

    def _call(
        self,
        service_name: str,
        args: tuple[int, ...],
        caller_device: str,
        now: float,
        hops: int,
        epoch: int | None = None,
    ) -> tuple[tuple[int, ...], float]:
        stats = self.stats.setdefault(service_name, RpcStats())
        try:
            service = self._registry.lookup(service_name, now=now, hops_from_provider=hops)
        except RpcError:
            stats.failures += 1
            raise
        if (
            epoch is not None
            and self.epoch_gate is not None
            and not self.epoch_gate(service.device, epoch)
        ):
            stats.failures += 1
            raise RpcError(
                f"service {service_name!r} on {service.device!r} rejected "
                f"stale fencing epoch {epoch}"
            )
        per_op_ns = self.device_per_op_ns.get(service.device, 2.0)
        handler_s = service.ops * per_op_ns * 1e-9
        latency = 2 * hops * self._link_latency_s + handler_s
        if self.injector is not None and self.injector.drpc_failure(service_name):
            stats.failures += 1
            raise RpcError(f"service {service_name!r} handler failed: injected fault")
        try:
            result = service.handler(args)
        except (FlexNetError, ValueError, TypeError, ArithmeticError, LookupError) as exc:
            # Expected handler failures (bad args, missing state, domain
            # errors) become RpcErrors the caller can retry; genuine bugs
            # (AttributeError, RuntimeError, ...) propagate unmasked.
            stats.failures += 1
            raise RpcError(f"service {service_name!r} handler failed: {exc}") from exc
        stats.calls += 1
        stats.total_latency_s += latency
        return result, latency

    def call_with_retry(
        self,
        service_name: str,
        args: tuple[int, ...],
        caller_device: str,
        now: float = 0.0,
        hops: int = 1,
        policy=None,
        epoch: int | None = None,
    ) -> tuple[tuple[int, ...], float]:
        """In-band invocation with FlexFault's recovery semantics:
        failed calls are retried under an exponential-backoff
        :class:`~repro.faults.recovery.RetryPolicy`; the backoff spent
        is added to the reported latency. Raises the final
        :class:`~repro.errors.RpcError` once attempts are exhausted."""
        if policy is None:
            from repro.faults.recovery import RetryPolicy

            policy = RetryPolicy()
        stats = self.stats.setdefault(service_name, RpcStats())
        waited = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            try:
                result, latency = self.call(
                    service_name,
                    args,
                    caller_device,
                    now=now + waited,
                    hops=hops,
                    epoch=epoch,
                )
            except RpcError:
                if attempt >= policy.max_attempts:
                    raise
                backoff = policy.backoff_s(attempt)
                stats.retries += 1
                stats.backoff_s += backoff
                waited += backoff
                if self.observer is not None:
                    self.observer.tracer.event(
                        "drpc_retry",
                        now + waited,
                        service=service_name,
                        attempt=attempt,
                        backoff_s=round(backoff, 9),
                    )
                continue
            return result, latency + waited
        raise RpcError(f"service {service_name!r}: retry budget exhausted")  # unreachable

    def call_via_controller(
        self,
        service_name: str,
        args: tuple[int, ...],
        now: float = 0.0,
    ) -> tuple[tuple[int, ...], float]:
        """The software alternative: device -> controller -> device."""
        service = self._registry.lookup(service_name, now=now, hops_from_provider=0)
        stats = self.stats.setdefault(f"{service_name}@controller", RpcStats())
        latency = 2 * CONTROL_RTT_S + CONTROL_PROCESSING_S
        result = service.handler(args)
        stats.calls += 1
        stats.total_latency_s += latency
        return result, latency


# -- standard infrastructure services ------------------------------------------


def make_state_read_service(device: str, map_state, name: str = "state_read") -> ServiceSpec:
    """Read one key from a device-resident map (replication primitive)."""

    def handler(args: tuple[int, ...]) -> tuple[int, ...]:
        return (map_state.get(tuple(args)),)

    return ServiceSpec(name=name, device=device, ops=8, handler=handler)


def make_state_write_service(device: str, map_state, name: str = "state_write") -> ServiceSpec:
    """Write one (key..., value) into a device-resident map."""

    def handler(args: tuple[int, ...]) -> tuple[int, ...]:
        if not args:
            raise RpcError("state_write needs key and value")
        *key, value = args
        map_state.put(tuple(key), value)
        return (1,)

    return ServiceSpec(name=name, device=device, ops=10, handler=handler)


def make_migrate_service(device: str, source_state, name: str = "migrate_chunk") -> ServiceSpec:
    """Stream a chunk of map entries (app-migration primitive): args are
    (offset, limit); returns a flattened (k..., v) sequence."""

    def handler(args: tuple[int, ...]) -> tuple[int, ...]:
        offset = args[0] if args else 0
        limit = args[1] if len(args) > 1 else 16
        flat: list[int] = []
        for index, (key, value) in enumerate(source_state.items()):
            if index < offset:
                continue
            if index >= offset + limit:
                break
            flat.extend(key)
            flat.append(value)
        return tuple(flat)

    return ServiceSpec(name=name, device=device, ops=32, handler=handler)
