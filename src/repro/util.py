"""Small shared utilities."""

from __future__ import annotations

import struct

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _fnv64(data: bytes, value: int = _FNV_OFFSET) -> int:
    """64-bit FNV-1a over ``data``, continuing from ``value``."""
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _avalanche(value: int) -> int:
    """murmur3-style finalizer: FNV-1a's low bits are weakly mixed (they
    only ever see the low bits of the multiplications) and consumers take
    ``hash % small_n``, so spread entropy down before returning."""
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def stable_hash(parts: tuple[int, ...]) -> int:
    """Deterministic 64-bit FNV-1a over a tuple of ints.

    Python's builtin ``hash`` is salted per process; data plane hashing
    (sketches, ECMP, register indexing) must be reproducible across
    runs and across simulated devices, so everything hashes through
    this function.
    """
    value = _FNV_OFFSET
    for part in parts:
        value = _fnv64(int(part).to_bytes(16, "little", signed=False), value)
    return _avalanche(value)


def _encode(part, out: bytearray) -> None:
    # bool before int: bool subclasses int but must not collide with 0/1.
    if part is None:
        out += b"N;"
    elif isinstance(part, bool):
        out += b"b1;" if part else b"b0;"
    elif isinstance(part, int):
        raw = part.to_bytes(max(1, (part.bit_length() + 8) // 8), "little", signed=True)
        out += b"i" + len(raw).to_bytes(4, "little") + raw
    elif isinstance(part, float):
        out += b"f" + struct.pack("<d", part)
    elif isinstance(part, str):
        raw = part.encode("utf-8")
        out += b"s" + len(raw).to_bytes(4, "little") + raw
    elif isinstance(part, bytes):
        out += b"y" + len(part).to_bytes(4, "little") + part
    elif isinstance(part, (tuple, list)):
        out += b"t" + len(part).to_bytes(4, "little")
        for item in part:
            _encode(item, out)
    else:
        raise TypeError(f"stable_digest cannot encode {type(part).__name__!r}")


def stable_digest(*parts) -> int:
    """Deterministic 64-bit digest of a heterogeneous value tree.

    Accepts ints, floats, bools, strings, bytes, ``None``, and
    arbitrarily nested tuples/lists thereof, encoding each with a type
    tag and length prefix so distinct structures cannot collide by
    concatenation (``("ab", "c")`` vs ``("a", "bc")``). The stable
    replacement for builtin ``hash()`` wherever a digest can reach a
    seed, report, or persisted value — builtin ``hash`` is salted per
    process and diverges across runs.
    """
    out = bytearray()
    for part in parts:
        _encode(part, out)
    return _avalanche(_fnv64(bytes(out)))
