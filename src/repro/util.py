"""Small shared utilities."""

from __future__ import annotations


def stable_hash(parts: tuple[int, ...]) -> int:
    """Deterministic 64-bit FNV-1a over a tuple of ints.

    Python's builtin ``hash`` is salted per process; data plane hashing
    (sketches, ECMP, register indexing) must be reproducible across
    runs and across simulated devices, so everything hashes through
    this function.
    """
    value = 0xCBF29CE484222325
    for part in parts:
        for byte in int(part).to_bytes(16, "little", signed=False):
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    # FNV-1a's low bits are weakly mixed (they only ever see the low bits
    # of the multiplications); data plane hashing takes `hash % small_n`,
    # so finish with a murmur3-style avalanche to spread entropy down.
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value
