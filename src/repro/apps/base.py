"""The standard infrastructure program used across examples and tests.

Implements the operator's "basic functions for the network as well as
utility functions for management and control" (§3 scenario): L2
forwarding, L3 routing, an ACL, flow accounting, and a TTL guard.
"""

from __future__ import annotations

from repro.lang import builder as b
from repro.lang.ir import Program

#: Standard header layouts shared by every program in the library, so
#: tenant extensions compose against the same packet format.
STANDARD_HEADERS: dict[str, dict[str, int]] = {
    "ethernet": {"dst": 48, "src": 48, "ethertype": 16},
    "ipv4": {"src": 32, "dst": 32, "proto": 8, "ttl": 8},
    "tcp": {"sport": 16, "dport": 16, "flags": 8},
}


def standard_builder(name: str, owner: str = "infrastructure") -> b.ProgramBuilder:
    """A builder pre-loaded with the standard headers and parse graph."""
    program = b.ProgramBuilder(name, owner=owner)
    for header, fields in STANDARD_HEADERS.items():
        program.header(header, **fields)
    program.parser(
        "ethernet",
        ("ethernet.ethertype", 0x0800, "ipv4"),
        ("ipv4.proto", 6, "tcp"),
    )
    return program


def base_infrastructure(
    acl_size: int = 1024,
    l2_size: int = 4096,
    l3_size: int = 8192,
    flow_entries: int = 65536,
) -> Program:
    """Build the operator's base program."""
    program = standard_builder("infra")
    program.map("flow_counts", keys=["ipv4.src", "ipv4.dst"], value_type="u64",
                max_entries=flow_entries)
    program.action("drop", [b.call("mark_drop")])
    program.action("forward", [b.call("set_port", "port")], params=[("port", "u16")])
    program.action("nop", [b.call("no_op")])
    program.action("dec_ttl", [b.assign("ipv4.ttl", b.binop("-", "ipv4.ttl", 1))])
    program.table(
        "acl",
        keys=[("ipv4.src", "ternary"), ("ipv4.dst", "ternary")],
        actions=["drop", "nop"],
        size=acl_size,
        default="nop",
    )
    program.table(
        "l2",
        keys=["ethernet.dst"],
        actions=["forward", "nop"],
        size=l2_size,
        default=("forward", (1,)),
    )
    program.table(
        "l3",
        keys=[("ipv4.dst", "lpm")],
        actions=["forward", "dec_ttl", "nop"],
        size=l3_size,
        default=("forward", (1,)),
    )
    program.function(
        "count_flow",
        [
            b.let("c", "u64", b.map_get("flow_counts", "ipv4.src", "ipv4.dst")),
            b.map_put("flow_counts", "ipv4.src", "ipv4.dst", b.binop("+", "c", 1)),
        ],
    )
    program.function(
        "ttl_guard",
        [
            b.if_(
                b.binop("==", "ipv4.ttl", 0),
                [b.call("mark_drop")],
            )
        ],
    )
    program.apply("acl", "l2", "l3", "count_flow", "ttl_guard")
    return program.build()
