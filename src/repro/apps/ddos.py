"""Elastic SYN-flood defense (§1.1 "Real-time security").

"Runtime programmable defenses can be summoned into the network
on-the-fly and retired when attacks subside. Such defenses are also
elastic, capable of scaling, replicating, and migrating to other
locations based on changing attack strengths."

Pieces:

* :func:`syn_monitor_delta` — a lightweight always-on monitor that
  digests SYN packets toward the controller (the detection signal).
* :func:`syn_defense_delta` — the defense proper: per-destination SYN
  counters with a rate threshold; packets over threshold are dropped
  in the data plane. The counter map size is the *scale knob*.
* :class:`DdosDefender` — the control loop: watches telemetry, summons
  the defense when the SYN rate to any destination crosses the attack
  threshold, scales it with attack volume, retires it after quiet time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.controller import FlexNetController, TransitionOutcome
from repro.control.apps_api import AppSla
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddFunction, AddMap, Delta, InsertApply, SetMapEntries
from repro.lang.types import BitsType

DEFENSE_URI = "flexnet://infrastructure/syn-defense"
MONITOR_URI = "flexnet://infrastructure/syn-monitor"

SYN_FLAG = 0x02


def syn_monitor_delta(anchor: str | None = None) -> Delta:
    """Always-on monitor: emit a digest (dst, src) for every SYN."""
    monitor = ir.FunctionDef(
        name="synmon",
        body=(
            b.if_(
                b.binop("==", b.binop("&", "tcp.flags", SYN_FLAG), SYN_FLAG),
                [b.call("emit_digest", "ipv4.dst", "ipv4.src")],
            ),
        ),
    )
    return Delta(
        name="syn_monitor",
        ops=(AddFunction(monitor), InsertApply(element="synmon", position="after", anchor=anchor)),
    )


def syn_defense_delta(
    threshold: int = 64,
    counter_entries: int = 4096,
    anchor: str | None = None,
) -> Delta:
    """The summoned defense: count SYNs per destination and drop above
    ``threshold`` within the counter's lifetime window. Counters are
    declared ephemeral (LRU) so the map never rejects inserts under
    spoofed-source churn."""
    counters = ir.MapDef(
        name="syn_counts",
        key_fields=(b.field("ipv4.dst"),),
        value_type=BitsType(64),
        max_entries=counter_entries,
        persistence=ir.Persistence.EPHEMERAL,
    )
    defense = ir.FunctionDef(
        name="syn_defense",
        body=(
            b.if_(
                b.binop("==", b.binop("&", "tcp.flags", SYN_FLAG), SYN_FLAG),
                [
                    b.let("n", "u64", b.map_get("syn_counts", "ipv4.dst")),
                    b.map_put("syn_counts", "ipv4.dst", b.binop("+", "n", 1)),
                    b.if_(
                        b.binop(">", "n", threshold),
                        [b.call("mark_drop")],
                    ),
                ],
            ),
        ),
    )
    return Delta(
        name="syn_defense",
        ops=(
            AddMap(counters),
            AddFunction(defense),
            InsertApply(element="syn_defense", position="before", anchor=anchor)
            if anchor
            else InsertApply(element="syn_defense"),
        ),
    )


def scale_defense_delta(new_entries: int) -> Delta:
    """Elastic scaling: resize the defense's counter map in place."""
    return Delta(
        name="syn_defense_scale",
        ops=(SetMapEntries(pattern="syn_counts", max_entries=new_entries),),
    )


@dataclass
class DefenderConfig:
    attack_threshold_pps: float = 500.0  # digest rate that means "attack"
    quiet_threshold_pps: float = 50.0  # rate under which we retire
    check_interval_s: float = 0.25
    quiet_intervals_to_retire: int = 4
    base_counter_entries: int = 2048
    drop_threshold: int = 64
    #: scale the map so entries ~ attack_rate * this factor.
    entries_per_pps: float = 4.0
    max_counter_entries: int = 65536


@dataclass
class DefenderLog:
    deployed_at: float | None = None
    retired_at: float | None = None
    scale_events: list[tuple[float, int]] = field(default_factory=list)
    detections: int = 0


class DdosDefender:
    """The closed control loop; drive with :meth:`start`."""

    def __init__(self, controller: FlexNetController, config: DefenderConfig | None = None):
        self._controller = controller
        self.config = config or DefenderConfig()
        self.log = DefenderLog()
        self._deployed = False
        self._quiet_streak = 0
        self._current_entries = 0
        self._running = False

    @property
    def deployed(self) -> bool:
        return self._deployed

    def start(self) -> None:
        """Begin periodic checks on the controller's loop."""
        self._running = True
        self._controller.loop.schedule(self.config.check_interval_s, self._check)

    def stop(self) -> None:
        self._running = False

    # -- the control loop ---------------------------------------------------------

    def _check(self) -> None:
        if not self._running:
            return
        now = self._controller.loop.now
        hottest = self._controller.telemetry.hottest_key(now)
        rate = hottest[1] if hottest else 0.0

        if not self._deployed and rate >= self.config.attack_threshold_pps:
            self._summon(rate, now)
        elif self._deployed:
            if rate >= self.config.attack_threshold_pps:
                self._quiet_streak = 0
                self._maybe_scale(rate, now)
            elif rate <= self.config.quiet_threshold_pps:
                self._quiet_streak += 1
                if self._quiet_streak >= self.config.quiet_intervals_to_retire:
                    self._retire(now)
            else:
                self._quiet_streak = 0
        self._controller.loop.schedule(self.config.check_interval_s, self._check)

    def _entries_for(self, rate: float) -> int:
        wanted = int(rate * self.config.entries_per_pps)
        wanted = max(wanted, self.config.base_counter_entries)
        return min(wanted, self.config.max_counter_entries)

    def _summon(self, rate: float, now: float) -> TransitionOutcome:
        entries = self._entries_for(rate)
        delta = syn_defense_delta(
            threshold=self.config.drop_threshold, counter_entries=entries
        )
        outcome = self._controller.deploy_app(
            DEFENSE_URI, delta, sla=AppSla(removable=False)
        )
        self._deployed = True
        self._current_entries = entries
        self._quiet_streak = 0
        self.log.detections += 1
        self.log.deployed_at = now
        self.log.scale_events.append((now, entries))
        return outcome

    def _maybe_scale(self, rate: float, now: float) -> None:
        wanted = self._entries_for(rate)
        if wanted > self._current_entries * 1.5:
            factor = wanted / self._current_entries
            self._controller.scale_app(DEFENSE_URI, factor)
            self._current_entries = int(self._current_entries * factor)
            self.log.scale_events.append((now, self._current_entries))

    def _retire(self, now: float) -> None:
        self._controller.remove_app(DEFENSE_URI)
        self._deployed = False
        self._current_entries = 0
        self.log.retired_at = now
