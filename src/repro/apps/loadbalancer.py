"""A HULA-style load balancer deployable at runtime (§1.1 cites [38]).

Flowlet-free simplification: ECMP over ``path_count`` next hops by
five-tuple hash, with per-path utilization counters the controller can
read to rebalance (shifting the path weights is a runtime delta, not a
reflash).
"""

from __future__ import annotations

from repro.control.p4runtime import P4RuntimeClient, TableEntry
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddAction, AddFunction, AddMap, AddTable, Delta, InsertApply
from repro.lang.types import BitsType
from repro.simulator.tables import exact


def load_balancer_delta(path_count: int = 4, anchor: str | None = None) -> Delta:
    """Inject hash-based path selection plus per-path load counters.

    The selector function computes ``meta.lb_bucket``; the ``lb_paths``
    table maps bucket -> egress port (populated by the controller, so
    rebalancing is pure rule churn)."""
    if path_count < 1:
        raise ValueError("need at least one path")
    load_map = ir.MapDef(
        name="lb_load",
        key_fields=(b.field("ipv4.dst"),),  # placement key; indexed by bucket
        value_type=BitsType(64),
        max_entries=max(path_count * 4, 64),
    )
    selector = ir.FunctionDef(
        name="lb_select",
        body=(
            b.let(
                "bucket",
                "u32",
                b.hash_of(
                    "ipv4.src", "ipv4.dst", "tcp.sport", "tcp.dport", modulus=path_count
                ),
            ),
            b.assign("meta.lb_bucket", "bucket"),
            b.map_put(
                "lb_load", "bucket", b.binop("+", b.map_get("lb_load", "bucket"), 1)
            ),
        ),
    )
    set_path = ir.ActionDef(
        name="lb_set_path",
        params=(("port", BitsType(16)),),
        body=(b.call("set_port", "port"),),
    )
    paths = ir.TableDef(
        name="lb_paths",
        keys=(ir.TableKey(field=b.field("ipv4.dst"), match_kind=ir.MatchKind.EXACT),),
        actions=("lb_set_path", "nop"),
        size=max(path_count * 16, 64),
        default_action=ir.ActionCall(action="nop"),
    )
    return Delta(
        name="load_balancer",
        ops=(
            AddMap(load_map),
            AddAction(set_path),
            AddFunction(selector),
            AddTable(paths),
            InsertApply(element="lb_select", position="after", anchor=anchor)
            if anchor
            else InsertApply(element="lb_select"),
            InsertApply(element="lb_paths", position="after", anchor="lb_select"),
        ),
    )


class LoadBalancerManager:
    """Controller-side path management."""

    def __init__(self, client: P4RuntimeClient, path_count: int = 4):
        self._client = client
        self.path_count = path_count
        self._entries: list[TableEntry] = []

    def set_destination_port(self, dst_ip: int, port: int) -> TableEntry:
        entry = TableEntry(
            table="lb_paths", matches=(exact(dst_ip),), action="lb_set_path",
            action_args=(port,),
        )
        self._client.insert_entry(entry)
        self._entries.append(entry)
        return entry

    def path_loads(self) -> dict[int, int]:
        """Per-bucket packet counts from the data plane."""
        raw = self._client.read_map("lb_load")
        return {key[0]: value for key, value in raw.items()}

    def imbalance(self) -> float:
        """max/mean load ratio (1.0 == perfectly balanced)."""
        loads = list(self.path_loads().values())
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0
