"""Dynamic telemetry queries (§1.1, the DynamiQ contrast).

DynamiQ "designs a monitoring system where query operators are flexibly
mapped at runtime to compile-time allocated resources" — i.e., the
resource pool is fixed in advance. FlexNet needs no pre-allocation:
each operator query becomes a runtime delta sized to that query, and
retiring a query returns its exact footprint.

:class:`QueryManager` is the controller-side loop: operators ``add`` /
``remove`` count-min queries over arbitrary key fields at runtime;
estimates are read through P4Runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.controller import FlexNetController
from repro.errors import ControlPlaneError
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddFunction, AddMap, Delta, InsertApply
from repro.lang.types import BitsType
from repro.util import stable_digest, stable_hash


@dataclass(frozen=True)
class QuerySpec:
    """One operator query: counts per distinct value of ``key_field``."""

    name: str
    key_field: str  # e.g. "ipv4.dst" or "tcp.dport"
    rows: int = 2
    width: int = 2048

    @property
    def uri(self) -> str:
        return f"flexnet://infrastructure/query-{self.name}"

    def row_map(self, row: int) -> str:
        return f"q_{self.name}_r{row}"

    def salt(self, row: int) -> int:
        # The query name must perturb each row's hash, but builtin
        # hash() of a string is process-salted — two runs of the same
        # query would sketch into different buckets.
        return stable_digest(self.name, row, 0xBEEF) % (1 << 32)


def query_delta(spec: QuerySpec, anchor: str | None = None) -> Delta:
    """Build the runtime delta for one query: per-row hashed counters
    plus the update function."""
    ops: list = []
    body: list[ir.Stmt] = []
    for row in range(spec.rows):
        ops.append(
            AddMap(
                ir.MapDef(
                    name=spec.row_map(row),
                    key_fields=(b.field(spec.key_field),),
                    value_type=BitsType(64),
                    max_entries=spec.width,
                )
            )
        )
        index = b.hash_of(spec.key_field, spec.salt(row), modulus=spec.width)
        body.append(b.let(f"i{row}", "u32", index))
        body.append(
            b.map_put(
                spec.row_map(row),
                f"i{row}",
                b.binop("+", b.map_get(spec.row_map(row), f"i{row}"), 1),
            )
        )
    ops.append(AddFunction(ir.FunctionDef(name=f"q_{spec.name}", body=tuple(body))))
    ops.append(InsertApply(element=f"q_{spec.name}", position="after", anchor=anchor))
    return Delta(name=f"query_{spec.name}", ops=tuple(ops))


@dataclass
class QueryManager:
    """Runtime add/remove of monitoring queries against one controller."""

    controller: FlexNetController
    queries: dict[str, QuerySpec] = field(default_factory=dict)

    def add(self, spec: QuerySpec) -> None:
        if spec.name in self.queries:
            raise ControlPlaneError(f"query {spec.name!r} already active")
        self.controller.deploy_app(spec.uri, query_delta(spec))
        self.queries[spec.name] = spec

    def remove(self, name: str) -> None:
        spec = self.queries.pop(name, None)
        if spec is None:
            raise ControlPlaneError(f"no active query {name!r}")
        self.controller.remove_app(spec.uri)

    @property
    def active(self) -> list[str]:
        return sorted(self.queries)

    # -- reads -----------------------------------------------------------------

    def _client_for(self, spec: QuerySpec):
        record = self.controller.app(spec.uri)
        devices = record.devices
        if not devices:
            raise ControlPlaneError(f"query {spec.name!r} has no footprint")
        return self.controller.hub.client(devices[0])

    def estimate(self, name: str, key: int) -> int:
        """Count-min estimate for ``key`` under query ``name``."""
        spec = self.queries.get(name)
        if spec is None:
            raise ControlPlaneError(f"no active query {name!r}")
        client = self._client_for(spec)
        best: int | None = None
        for row in range(spec.rows):
            index = stable_hash((key, spec.salt(row))) % spec.width
            value = client.read_map_entry(spec.row_map(row), (index,))
            best = value if best is None else min(best, value)
        return best or 0

    def heavy_hitters(self, name: str, candidates: list[int], threshold: int) -> list[int]:
        return [key for key in candidates if self.estimate(name, key) >= threshold]
