"""Live transport/congestion-control customization (§1.1).

"Deploying new transport protocols, for instance, requires changes not
only to host kernels but also telemetry and congestion control (CC)
algorithms at the NICs and switches." This app is that vertical
deployment: one delta that lands components on *different tiers* —

* ``ecn_mark`` — switch-side: mark ECN above a queue threshold
  (DCTCP-style) or stamp INT-style queue depth (HPCC-style);
* ``cc_window`` — host-side: a per-destination rate/window map updated
  from the marks. Its certified op count is deliberately above the
  switch's ``max_function_ops`` so the placement engine *must* put it
  on a host/NIC — demonstrating automatic vertical distribution.

Switching between DCTCP-like and HPCC-like marking at runtime is a
delta swap, the "optimal choice of CC algorithms depends on the mix of
applications and workloads" scenario.
"""

from __future__ import annotations

from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import (
    AddFunction,
    AddMap,
    Delta,
    InsertApply,
    RemoveElements,
)
from repro.lang.types import BitsType


def dctcp_delta(ecn_threshold: int = 20, anchor: str | None = None) -> Delta:
    """DCTCP-style: binary ECN mark when queue depth exceeds threshold."""
    mark = ir.FunctionDef(
        name="ecn_mark",
        body=(
            b.if_(
                b.binop(">", "meta.queue_depth", ecn_threshold),
                [b.assign("meta.ecn", 1)],
            ),
        ),
    )
    window = _host_window_function(alpha_shift=4)
    ops = (
        AddMap(_window_map()),
        AddFunction(mark),
        AddFunction(window),
        InsertApply(element="ecn_mark", position="after", anchor=anchor)
        if anchor
        else InsertApply(element="ecn_mark"),
        InsertApply(element="cc_window", position="after", anchor="ecn_mark"),
    )
    return Delta(name="cc_dctcp", ops=ops)


def hpcc_delta(anchor: str | None = None) -> Delta:
    """HPCC-style: stamp the precise queue depth for host-side control."""
    mark = ir.FunctionDef(
        name="ecn_mark",
        body=(
            b.assign("meta.int_qdepth", b.expr("meta.queue_depth")),
            # HPCC hosts react to the precise depth, not a binary bit;
            # carry it through the ecn meta key for the host function.
            b.assign("meta.ecn", b.expr("meta.queue_depth")),
        ),
    )
    window = _host_window_function(alpha_shift=2)
    ops = (
        AddMap(_window_map()),
        AddFunction(mark),
        AddFunction(window),
        InsertApply(element="ecn_mark", position="after", anchor=anchor)
        if anchor
        else InsertApply(element="ecn_mark"),
        InsertApply(element="cc_window", position="after", anchor="ecn_mark"),
    )
    return Delta(name="cc_hpcc", ops=ops)


def remove_cc_delta() -> Delta:
    """Retire whichever CC deployment is live."""
    return Delta(
        name="cc_remove",
        ops=(
            RemoveElements(pattern="ecn_mark", kind="function"),
            RemoveElements(pattern="cc_window", kind="function"),
            RemoveElements(pattern="cc_windows", kind="map"),
        ),
    )


def swap_cc_delta(to: str = "hpcc") -> Delta:
    """Runtime CC algorithm swap: remove + re-add in one atomic delta."""
    removal = remove_cc_delta()
    addition = hpcc_delta() if to == "hpcc" else dctcp_delta()
    return Delta(name=f"cc_swap_to_{to}", ops=removal.ops + addition.ops)


def _window_map() -> ir.MapDef:
    return ir.MapDef(
        name="cc_windows",
        key_fields=(b.field("ipv4.dst"),),
        value_type=BitsType(32),
        max_entries=8192,
    )


def _host_window_function(alpha_shift: int) -> ir.FunctionDef:
    """AIMD window update; the repeat block inflates its certified op
    count past any switch's ``max_function_ops``, forcing host/NIC
    placement (that is the point: vertical distribution is automatic)."""
    return ir.FunctionDef(
        name="cc_window",
        body=(
            b.let("w", "u32", b.map_get("cc_windows", "ipv4.dst")),
            b.if_(
                b.binop(">", "meta.ecn", 0),
                # multiplicative decrease
                [b.assign("w", b.binop(">>", "w", alpha_shift))],
                # additive increase
                [b.assign("w", b.binop("+", "w", 1))],
            ),
            b.map_put("cc_windows", "ipv4.dst", "w"),
            # Pacing computation, modelled as a fixed block of arithmetic
            # (keeps the certified cost realistically host-sized).
            b.repeat(
                100,
                [
                    b.let("pace", "u32", b.binop("*", "w", 8)),
                    b.assign("pace", b.binop("+", "pace", 1)),
                ],
            ),
        ),
    )
