"""Per-source rate limiting via P4 meters (tenant SLA policing).

The enforcement table classifies traffic (one rule per policed source);
its meter colours each hit, and the policing function drops RED
packets. The meter rate is reconfigured live through P4Runtime — no
program change needed to change a customer's contracted rate (the
element-level churn the paper distinguishes from structural changes).
"""

from __future__ import annotations

from repro.control.p4runtime import P4RuntimeClient, TableEntry
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddAction, AddFunction, AddTable, Delta, InsertApply
from repro.simulator.tables import exact


def rate_limit_delta(size: int = 1024, anchor: str | None = None) -> Delta:
    """Inject the policing table + RED-drop function."""
    classify_action = ir.ActionDef(
        name="rl_mark", params=(), body=(b.assign("meta.rl_hit", 1),)
    )
    classify = ir.TableDef(
        name="rl_classify",
        keys=(ir.TableKey(field=b.field("ipv4.src"), match_kind=ir.MatchKind.EXACT),),
        actions=("rl_mark", "nop"),
        size=size,
        default_action=ir.ActionCall(action="nop"),
    )
    police = ir.FunctionDef(
        name="rl_police",
        body=(
            b.if_(
                b.binop(
                    "&&",
                    b.binop("==", "meta.rl_hit", 1),
                    b.binop("==", "meta.meter_color", 1),  # RED
                ),
                [b.call("mark_drop")],
            ),
        ),
    )
    return Delta(
        name="rate_limit",
        ops=(
            AddAction(classify_action),
            AddTable(classify),
            AddFunction(police),
            InsertApply(element="rl_classify", position="before", anchor=anchor)
            if anchor
            else InsertApply(element="rl_classify"),
            InsertApply(element="rl_police", position="after", anchor="rl_classify"),
        ),
    )


class RateLimiter:
    """Controller-side policy management over P4Runtime."""

    def __init__(self, client: P4RuntimeClient):
        self._client = client
        self._policed: dict[int, float] = {}

    def police(self, src_ip: int, rate_pps: float, burst_packets: float = 10.0) -> None:
        """Start (or re-rate) policing one source."""
        if src_ip not in self._policed:
            self._client.insert_entry(
                TableEntry(
                    table="rl_classify", matches=(exact(src_ip),), action="rl_mark"
                )
            )
        self._client.set_meter("rl_classify", rate_pps, burst_packets)
        self._policed[src_ip] = rate_pps

    def stats(self) -> tuple[int, int]:
        """(conforming, dropped-eligible) packet counts."""
        return self._client.read_meter("rl_classify")

    @property
    def policed_sources(self) -> dict[int, float]:
        return dict(self._policed)
