"""A stateful firewall, deployable at runtime (§1.1 "Real-time security").

Two pieces:

* :func:`firewall_delta` — a delta injecting a connection-tracking map
  and a block table in front of the base program's ACL. Outbound
  packets (from the protected prefix) register the connection; inbound
  packets without a registered connection hit the block table.
* :class:`FirewallManager` — the control-side helper that installs and
  removes block rules through P4Runtime and reads hit counters.
"""

from __future__ import annotations

from repro.control.p4runtime import P4RuntimeClient, TableEntry
from repro.lang import builder as b
from repro.lang.delta import AddFunction, AddMap, AddTable, AddAction, Delta, InsertApply
from repro.lang.ir import MatchKind, TableKey
from repro.lang import ir
from repro.simulator.tables import ternary


def firewall_delta(
    protected_prefix: int = 0x0A000000,
    prefix_mask: int = 0xFF000000,
    conn_entries: int = 16384,
    block_size: int = 1024,
    anchor: str = "acl",
) -> Delta:
    """Build the runtime firewall injection delta.

    The connection tracker is keyed by (src, dst); outbound traffic from
    the protected prefix registers (dst, src) so return traffic passes.
    Unsolicited inbound traffic to the protected prefix consults the
    ``fw_block`` table (operator-managed block rules).
    """
    from repro.lang.types import BitsType

    conn_map = ir.MapDef(
        name="fw_conns",
        key_fields=(b.field("ipv4.src"), b.field("ipv4.dst")),
        value_type=BitsType(8),
        max_entries=conn_entries,
    )
    track = ir.FunctionDef(
        name="fw_track",
        body=(
            b.if_(
                b.binop(
                    "==",
                    b.binop("&", "ipv4.src", prefix_mask),
                    protected_prefix,
                ),
                # Outbound: register the reverse flow.
                [b.map_put("fw_conns", "ipv4.dst", "ipv4.src", 1)],
                # Inbound: drop unsolicited traffic to the protected prefix.
                [
                    b.if_(
                        b.binop(
                            "&&",
                            b.binop(
                                "==",
                                b.binop("&", "ipv4.dst", prefix_mask),
                                protected_prefix,
                            ),
                            b.binop(
                                "==", b.map_get("fw_conns", "ipv4.src", "ipv4.dst"), 0
                            ),
                        ),
                        [b.call("mark_drop")],
                    )
                ],
            ),
        ),
    )
    block_drop = ir.ActionDef(name="fw_drop", params=(), body=(b.call("mark_drop"),))
    block = ir.TableDef(
        name="fw_block",
        keys=(
            TableKey(field=b.field("ipv4.src"), match_kind=MatchKind.TERNARY),
            TableKey(field=b.field("ipv4.dst"), match_kind=MatchKind.TERNARY),
        ),
        actions=("fw_drop", "nop"),
        size=block_size,
        default_action=ir.ActionCall(action="nop"),
    )
    return Delta(
        name="firewall",
        ops=(
            AddMap(conn_map),
            AddAction(block_drop),
            AddFunction(track),
            AddTable(block),
            InsertApply(element="fw_block", position="before", anchor=anchor),
            InsertApply(element="fw_track", position="after", anchor="fw_block"),
        ),
    )


class FirewallManager:
    """Element-level management of the deployed firewall."""

    def __init__(self, client: P4RuntimeClient):
        self._client = client

    def block_source(self, src_ip: int, mask: int = 0xFFFFFFFF) -> TableEntry:
        entry = TableEntry(
            table="fw_block",
            matches=(ternary(src_ip, mask), ternary(0, 0)),
            action="fw_drop",
            priority=10,
        )
        self._client.insert_entry(entry)
        return entry

    def block_pair(self, src_ip: int, dst_ip: int) -> TableEntry:
        entry = TableEntry(
            table="fw_block",
            matches=(ternary(src_ip, 0xFFFFFFFF), ternary(dst_ip, 0xFFFFFFFF)),
            action="fw_drop",
            priority=20,
        )
        self._client.insert_entry(entry)
        return entry

    def unblock(self, entry: TableEntry) -> bool:
        return self._client.delete_entry(entry)

    def blocked_count(self) -> int:
        hits, _ = self._client.read_counters("fw_block")
        return sum(hits)

    def tracked_connections(self) -> int:
        return len(self._client.read_map("fw_conns"))
