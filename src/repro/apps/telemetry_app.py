"""INT-style telemetry utility functions (§3.4 "utility" functions).

"These 'utility' functions for network control do not have a persistent
footprint inside the network, but are injected in real-time for
maintenance tasks and removed soon after."

:func:`int_probe_delta` injects a per-packet digest of (dst, ttl,
queue depth) — a diagnosis probe an operator summons while chasing an
incident and retires afterwards. :func:`remove_probe_delta` is the
retirement.
"""

from __future__ import annotations

from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddFunction, Delta, InsertApply, RemoveElements


def int_probe_delta(sample_shift: int = 0, anchor: str | None = None) -> Delta:
    """Emit a digest for every 2^-sample_shift-th packet (0 = all)."""
    if sample_shift:
        body: tuple[ir.Stmt, ...] = (
            b.if_(
                b.binop(
                    "==",
                    b.binop("&", "meta.ingress_port", (1 << sample_shift) - 1),
                    0,
                ),
                [b.call("emit_digest", "ipv4.dst", "ipv4.ttl", "meta.queue_depth")],
            ),
        )
    else:
        body = (b.call("emit_digest", "ipv4.dst", "ipv4.ttl", "meta.queue_depth"),)
    probe = ir.FunctionDef(name="int_probe", body=body)
    return Delta(
        name="int_probe",
        ops=(
            AddFunction(probe),
            InsertApply(element="int_probe", position="after", anchor=anchor)
            if anchor
            else InsertApply(element="int_probe"),
        ),
    )


def remove_probe_delta() -> Delta:
    return Delta(
        name="int_probe_remove",
        ops=(RemoveElements(pattern="int_probe", kind="function"),),
    )
