"""Network applications built on the FlexNet public API.

Every §1.1 use case has a concrete app here: real-time security
(:mod:`ddos`, :mod:`firewall`), dynamic monitoring (:mod:`sketch`,
:mod:`telemetry_app`), live infrastructure customization (:mod:`cc`),
and tenant-style extensions (:mod:`nat`, :mod:`loadbalancer`).
"""

from repro.apps.base import base_infrastructure, standard_builder, STANDARD_HEADERS
from repro.apps.cc import dctcp_delta, hpcc_delta, remove_cc_delta, swap_cc_delta
from repro.apps.ddos import (
    DdosDefender,
    DefenderConfig,
    scale_defense_delta,
    syn_defense_delta,
    syn_monitor_delta,
)
from repro.apps.firewall import FirewallManager, firewall_delta
from repro.apps.loadbalancer import LoadBalancerManager, load_balancer_delta
from repro.apps.monitoring import QueryManager, QuerySpec, query_delta
from repro.apps.nat import NatManager, nat_delta
from repro.apps.ratelimit import RateLimiter, rate_limit_delta
from repro.apps.sketch import SketchReader, count_min_delta, row_map_name
from repro.apps.telemetry_app import int_probe_delta, remove_probe_delta

__all__ = [
    "DdosDefender",
    "DefenderConfig",
    "FirewallManager",
    "LoadBalancerManager",
    "NatManager",
    "QueryManager",
    "QuerySpec",
    "RateLimiter",
    "STANDARD_HEADERS",
    "SketchReader",
    "base_infrastructure",
    "count_min_delta",
    "dctcp_delta",
    "firewall_delta",
    "hpcc_delta",
    "int_probe_delta",
    "load_balancer_delta",
    "nat_delta",
    "query_delta",
    "rate_limit_delta",
    "remove_cc_delta",
    "remove_probe_delta",
    "row_map_name",
    "scale_defense_delta",
    "standard_builder",
    "swap_cc_delta",
    "syn_defense_delta",
    "syn_monitor_delta",
]
