"""Runtime-deployable NAT (address translation at the edge).

A tenant-flavoured example app: translates a private prefix to a public
address on egress using a rewrite table, and maintains the reverse
mapping for ingress. Demonstrates header rewriting through table
actions populated at runtime.
"""

from __future__ import annotations

from repro.control.p4runtime import P4RuntimeClient, TableEntry
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddAction, AddTable, Delta, InsertApply
from repro.lang.types import BitsType
from repro.simulator.tables import exact


def nat_delta(size: int = 2048, anchor: str | None = None) -> Delta:
    """Inject NAT rewrite tables (egress snat + ingress dnat)."""
    snat = ir.ActionDef(
        name="nat_rewrite_src",
        params=(("addr", BitsType(32)),),
        body=(b.assign("ipv4.src", b.expr("addr")),),
    )
    dnat = ir.ActionDef(
        name="nat_rewrite_dst",
        params=(("addr", BitsType(32)),),
        body=(b.assign("ipv4.dst", b.expr("addr")),),
    )
    egress = ir.TableDef(
        name="nat_egress",
        keys=(ir.TableKey(field=b.field("ipv4.src"), match_kind=ir.MatchKind.EXACT),),
        actions=("nat_rewrite_src", "nop"),
        size=size,
        default_action=ir.ActionCall(action="nop"),
    )
    ingress = ir.TableDef(
        name="nat_ingress",
        keys=(ir.TableKey(field=b.field("ipv4.dst"), match_kind=ir.MatchKind.EXACT),),
        actions=("nat_rewrite_dst", "nop"),
        size=size,
        default_action=ir.ActionCall(action="nop"),
    )
    return Delta(
        name="nat",
        ops=(
            AddAction(snat),
            AddAction(dnat),
            AddTable(ingress),
            AddTable(egress),
            InsertApply(element="nat_ingress", position="before", anchor=anchor)
            if anchor
            else InsertApply(element="nat_ingress"),
            InsertApply(element="nat_egress", position="after", anchor="nat_ingress"),
        ),
    )


class NatManager:
    """Bindings management: private <-> public address pairs."""

    def __init__(self, client: P4RuntimeClient):
        self._client = client
        self._bindings: dict[int, int] = {}

    def bind(self, private_ip: int, public_ip: int) -> None:
        self._client.insert_entry(
            TableEntry(
                table="nat_egress",
                matches=(exact(private_ip),),
                action="nat_rewrite_src",
                action_args=(public_ip,),
            )
        )
        self._client.insert_entry(
            TableEntry(
                table="nat_ingress",
                matches=(exact(public_ip),),
                action="nat_rewrite_dst",
                action_args=(private_ip,),
            )
        )
        self._bindings[private_ip] = public_ip

    @property
    def bindings(self) -> dict[int, int]:
        return dict(self._bindings)
