"""Count-min sketch monitoring (the paper's stateful-migration example).

§3.4 motivates data-plane state migration with "a stateful network app
(e.g., one that maintains a count-min sketch). As the sketch state is
updated for each packet, copying state via control plane software is
impossible." This module provides:

* :func:`count_min_delta` — injects a D-row x W-column count-min sketch
  keyed by source address. Each row is one logical map indexed by an
  independent hash (row index is salted into the hash operands).
* :class:`SketchReader` — controller-side estimate: the minimum across
  rows, read through P4Runtime.
"""

from __future__ import annotations

from repro.control.p4runtime import P4RuntimeClient
from repro.lang import builder as b
from repro.lang import ir
from repro.lang.delta import AddFunction, AddMap, Delta, InsertApply
from repro.lang.types import BitsType
from repro.util import stable_hash


def row_map_name(row: int) -> str:
    return f"cms_row{row}"


def count_min_delta(
    rows: int = 3,
    width: int = 4096,
    key_field: str = "ipv4.src",
    anchor: str | None = None,
) -> Delta:
    """Build the count-min sketch injection delta.

    Rows hash the key with different salts; the update function
    increments one counter per row per packet — exactly the per-packet
    mutation rate that makes control-plane copying hopeless.
    """
    if rows < 1 or width < 2:
        raise ValueError("need at least 1 row and width >= 2")
    # Each row map is declared with the sketch key field for placement
    # and demand purposes, but is physically indexed by a salted hash of
    # that field modulo the row width (register-array semantics).
    ops: list = []
    body: list[ir.Stmt] = []
    for row in range(rows):
        ops.append(
            AddMap(
                ir.MapDef(
                    name=row_map_name(row),
                    key_fields=(b.field(key_field),),
                    value_type=BitsType(64),
                    max_entries=width,
                    persistence=ir.Persistence.DURABLE,
                )
            )
        )
        salt = stable_hash((row, 0xC0FFEE)) % (1 << 32)
        index = b.hash_of(key_field, salt, modulus=width)
        body.append(b.let(f"i{row}", "u32", index))
        body.append(
            b.map_put(
                row_map_name(row),
                f"i{row}",
                b.binop("+", b.map_get(row_map_name(row), f"i{row}"), 1),
            )
        )
    ops.append(AddFunction(ir.FunctionDef(name="cms_update", body=tuple(body))))
    ops.append(InsertApply(element="cms_update", position="after", anchor=anchor))
    return Delta(name="count_min_sketch", ops=tuple(ops))


class SketchReader:
    """Controller-side count-min estimates over P4Runtime."""

    def __init__(self, client: P4RuntimeClient, rows: int = 3, width: int = 4096):
        self._client = client
        self._rows = rows
        self._width = width

    def estimate(self, key: int) -> int:
        """The count-min estimate for one key (min across rows)."""
        best: int | None = None
        for row in range(self._rows):
            salt = stable_hash((row, 0xC0FFEE)) % (1 << 32)
            index = stable_hash((key, salt)) % self._width
            value = self._client.read_map_entry(row_map_name(row), (index,))
            best = value if best is None else min(best, value)
        return best or 0

    def heavy_keys(self, candidates: list[int], threshold: int) -> list[int]:
        return [key for key in candidates if self.estimate(key) >= threshold]

    def total_updates(self) -> int:
        """Sum of row-0 counters == packets observed (row 0 sees every
        update exactly once)."""
        return sum(self._client.read_map(row_map_name(0)).values())
