"""FlexCloud: batched, asynchronous tenant admission at cloud churn.

ROADMAP item 3. Two halves:

* :mod:`repro.cloud.admission` — the admission queue, coalescer, SLA
  backpressure, and the :class:`CloudEngine` that drains them in
  scheduling rounds (optionally behind FlexHA replication).
* :mod:`repro.cloud.scenarios` — seeded production-shape churn
  (flash crowds, diurnal cycles, DDoS defense, canary rollouts) over
  a sharded admission directory spanning 10⁴–10⁶ tenants.
"""

from repro.cloud.admission import (
    AdmissionOutcome,
    AdmissionQueue,
    CloudEngine,
    Coalescer,
    ExecutionResult,
    ExtensionExecutor,
    ShedReason,
    TenantDelta,
    Ticket,
)
from repro.cloud.scenarios import (
    SCENARIOS,
    CloudEvent,
    CloudFleet,
    CloudReport,
    EntryExecutor,
    canary_rollout,
    cloud_base_program,
    ddos_defense,
    diurnal,
    flash_crowd,
    run_scenario,
)

__all__ = [
    "SCENARIOS",
    "AdmissionOutcome",
    "AdmissionQueue",
    "CloudEngine",
    "CloudEvent",
    "CloudFleet",
    "CloudReport",
    "Coalescer",
    "EntryExecutor",
    "ExecutionResult",
    "ExtensionExecutor",
    "ShedReason",
    "TenantDelta",
    "Ticket",
    "canary_rollout",
    "cloud_base_program",
    "ddos_defense",
    "diurnal",
    "flash_crowd",
    "run_scenario",
]
