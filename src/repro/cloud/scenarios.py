"""FlexCloud front 2: production-shape tenant churn scenarios.

This is the entry lane of :mod:`repro.cloud.admission` scaled to the
10⁴–10⁶ tenants of ROADMAP item 3. Composing a million FlexBPF
extensions is not what a production fabric does; what it does is keep a
**sharded admission directory** — each rack device owns the ACL slice
for the tenants homed on it, and tenant churn becomes batched map
writes against those slices (one coalesced
:meth:`~repro.control.p4runtime.P4RuntimeClient.write_map_entries`
WriteRequest per device per scheduling round, the §1.1 "summon the
defense at scale" shape):

* :func:`cloud_base_program` — the ingress program: standard headers,
  L2 forwarding, and a ``tenant_gate`` that drops any packet whose
  ``ipv4.src`` has no ``tenant_acl`` entry. The gate map is
  control-plane-populated only, so FlexVet classes it stateless and
  every execution backend may cache around it.
* :class:`CloudFleet` — the rack fabric (FlexScale's pod topology) with
  the gated ingress program installed through the controller and a
  gate-free variant fleet-installed on every other rack switch; tenants
  hash to home devices deterministically, and the fleet keeps the
  intent registry that ground-truth verification and the anti-entropy
  :meth:`~CloudFleet.reconcile` sweep diff against.
* :class:`EntryExecutor` — the entry-lane window executor: a round's
  tickets group by home device (last writer wins per tenant), land as
  one batched WriteRequest per device, and partial channel failures
  defer only the affected device's tickets. ``shards`` cell-partitions
  the per-round device sweep and rotates cell order every round —
  proving the merged report is independent of sweep order, the same
  property FlexScale's deterministic merge rests on.
* seeded generators — :func:`flash_crowd`, :func:`diurnal`,
  :func:`ddos_defense`, :func:`canary_rollout` — and
  :func:`run_scenario`, which steps the admission engine through
  scheduling rounds in virtual time and emits a :class:`CloudReport`
  whose ``to_dict()`` is byte-identical for the same seed, including
  across shard counts (the shard count itself is deliberately excluded).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ChannelError, StaleEpochError
from repro.lang import builder as b
from repro.lang.ir import Program
from repro.limits import ADMISSION_ROUND_BUDGET, ADMISSION_ROUND_S
from repro.simulator.packet import make_packet, reset_packet_ids
from repro.util import stable_digest

from repro.cloud.admission import CloudEngine, ExecutionResult, TenantDelta, Ticket

__all__ = [
    "CloudEvent",
    "CloudFleet",
    "CloudReport",
    "EntryExecutor",
    "canary_rollout",
    "cloud_base_program",
    "ddos_defense",
    "diurnal",
    "flash_crowd",
    "run_scenario",
]

#: Tenant ids map into 10.0.0.0/8 — room for 16M tenants.
_TENANT_SUBNET = 0x0A000000

#: SLA mix used by the generators: (class, weight).
_SLA_MIX = (("gold", 1), ("silver", 3), ("bronze", 6))


def cloud_base_program(
    max_tenants: int = 1 << 17, *, gate: bool = True, name: str | None = None
) -> Program:
    """The admission-directory program. With ``gate=True`` (the ingress
    instance) packets from unadmitted sources drop; with ``gate=False``
    (rack instances) the map is a pure directory slice — rack devices
    hold admission state for their homed tenants but sit off the gating
    path (ingress-ACL architecture: enforcement happens once, at the
    edge)."""
    from repro.apps.base import standard_builder

    program = standard_builder(name or ("cloud_base" if gate else "cloud_rack"))
    program.map(
        "tenant_acl", keys=["ipv4.src"], value_type="u32", max_entries=max_tenants
    )
    program.action("forward", [b.call("set_port", "port")], params=[("port", "u16")])
    program.action("nop", [b.call("no_op")])
    program.table(
        "l2",
        keys=["ethernet.dst"],
        actions=["forward", "nop"],
        size=1024,
        default=("forward", (1,)),
    )
    program.function(
        "tenant_gate",
        [
            b.if_(
                b.binop("==", b.map_get("tenant_acl", "ipv4.src"), 0),
                [b.call("mark_drop")],
            )
        ],
    )
    if gate:
        program.apply("tenant_gate", "l2")
    else:
        program.apply("l2")
    return program.build()


class CloudFleet:
    """The rack fabric plus the sharded admission directory over it."""

    def __init__(
        self, racks: int = 4, switch_arch: str = "drmt", max_tenants: int = 1 << 17
    ):
        from repro.scale.workload import pod_fabric

        self.racks = racks
        self.max_tenants = max_tenants
        self.net = pod_fabric(racks, switch_arch=switch_arch)
        self.net.install(cloud_base_program(max_tenants, gate=True))
        controller = self.net.controller
        #: the enforcement point: wherever the plan placed the gate map.
        self.gate_device: str = controller.plan.placement["tenant_acl"]
        rack_program = cloud_base_program(max_tenants, gate=False)
        placed = set(controller.plan.placement.values())
        for rack in range(racks):
            switch = f"s{rack}"
            if switch not in placed:
                controller.devices[switch].install(rack_program)
        #: directory slice owners, sorted: the gate device plus every
        #: rack switch hosting a private slice.
        homes = {self.gate_device} | {
            f"s{rack}" for rack in range(racks) if f"s{rack}" not in placed
        }
        self.homes: list[str] = sorted(homes)
        #: intent registry: tenant -> admission value (0 == evicted).
        #: Updated only after the home device acknowledged the write, so
        #: verification diffs intent against acknowledged state.
        self.registry: dict[str, int] = {}

    # -- tenant addressing --------------------------------------------------

    @staticmethod
    def tenant_id(tenant: str) -> int:
        return int(tenant)

    def tenant_ip(self, tenant: str) -> int:
        return _TENANT_SUBNET | (self.tenant_id(tenant) + 1)

    def home_of(self, tenant: str) -> str:
        return self.homes[self.tenant_id(tenant) % len(self.homes)]

    # -- directory operations ----------------------------------------------

    def apply_entries(self, device: str, entries: dict[str, int]) -> None:
        """Land one batched WriteRequest on a home device; the registry
        reflects the write only once the device acknowledged it."""
        payload = {(self.tenant_ip(tenant),): value for tenant, value in entries.items()}
        self.net.controller.hub.client(device).write_map_entries("tenant_acl", payload)
        for tenant, value in entries.items():
            if value == 0:
                self.registry.pop(tenant, None)
            else:
                self.registry[tenant] = value

    def ground_truth(self) -> dict[str, dict[tuple[int, ...], int]]:
        return {
            device: self.net.controller.hub.client(device).read_map("tenant_acl")
            for device in self.homes
        }

    def verify(self) -> tuple[int, int]:
        """Diff every directory slice against the intent registry.

        Returns ``(violations, entries_checked)``. A violation is an
        isolation failure: an admitted tenant missing from (or wrong
        in) its home slice, a phantom entry for no admitted tenant, or
        a tenant's entry leaking onto a foreign slice."""
        intended: dict[str, dict[tuple[int, ...], int]] = {d: {} for d in self.homes}
        for tenant, value in self.registry.items():
            intended[self.home_of(tenant)][(self.tenant_ip(tenant),)] = value
        violations = 0
        checked = 0
        for device, actual in self.ground_truth().items():
            want = intended[device]
            checked += len(want)
            for key, value in want.items():
                if actual.get(key) != value:
                    violations += 1
            for key in actual:
                if key not in want:
                    violations += 1
        return violations, checked

    def reconcile(self) -> int:
        """Anti-entropy sweep (the churn-under-chaos safety net): read
        each slice's ground truth, re-write the diffs against intent.
        Returns the number of entries repaired."""
        intended: dict[str, dict[tuple[int, ...], int]] = {d: {} for d in self.homes}
        for tenant, value in self.registry.items():
            intended[self.home_of(tenant)][(self.tenant_ip(tenant),)] = value
        repaired = 0
        for device in self.homes:
            client = self.net.controller.hub.client(device)
            actual = client.read_map("tenant_acl")
            want = intended[device]
            diffs: dict[tuple[int, ...], int] = {}
            for key, value in want.items():
                if actual.get(key) != value:
                    diffs[key] = value
            for key in actual:
                if key not in want:
                    diffs[key] = 0
            if diffs:
                client.write_map_entries("tenant_acl", diffs)
                repaired += len(diffs)
        return repaired

    # -- datapath probes ----------------------------------------------------

    def probe(self, tenants: list[str]) -> tuple[int, int]:
        """Push one datapath packet per tenant homed on the gate device
        and check the gate's verdict against the registry: admitted
        sources must forward, evicted ones must drop. Returns
        ``(violations, probes_run)``."""
        from repro.simulator.metrics import RunMetrics

        eligible = [t for t in tenants if self.home_of(t) == self.gate_device]
        if not eligible:
            return 0, 0
        controller = self.net.controller
        start = controller.loop.now
        verdicts: dict[int, bool] = {}

        def on_done(packet) -> None:
            verdicts[packet.get_field("ipv4", "src")] = packet.dropped

        metrics = RunMetrics()
        last = start
        for index, tenant in enumerate(eligible):
            at = start + index * 1e-4
            packet = make_packet(
                src_ip=self.tenant_ip(tenant),
                dst_ip=_TENANT_SUBNET | 0xFFFE,
                created_at=at,
            )
            controller.network.inject(packet, "datapath", at, metrics, on_done=on_done)
            last = max(last, at)
        controller.loop.run_until(last + 1.0)
        violations = 0
        for tenant in eligible:
            admitted = self.registry.get(tenant, 0) != 0
            dropped = verdicts.get(self.tenant_ip(tenant), True)
            # Admitted tenants must pass the gate; evicted (or never
            # admitted) ones must be dropped by it.
            if admitted == dropped:
                violations += 1
        return violations, len(eligible)


class EntryExecutor:
    """Entry-lane window executor; see the module docstring."""

    def __init__(self, fleet: CloudFleet, shards: int = 1):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.fleet = fleet
        self.shards = shards
        self._round = 0
        self.device_windows: dict[str, int] = {}

    def plan(self, tickets: list[Ticket]) -> tuple[list[list[Ticket]], list[Ticket]]:
        """Entry-lane deltas are per-tenant map entries — always
        compatible; the whole round folds into one batch."""
        return ([tickets] if tickets else []), []

    def _device_order(self, devices: list[str]) -> list[str]:
        """Cell-partition the sorted device sweep and rotate cell order
        each round: write order across devices must not matter, and this
        makes any accidental dependence show up as a broken digest."""
        cells: list[list[str]] = [[] for _ in range(self.shards)]
        for index, device in enumerate(sorted(devices)):
            cells[index % self.shards].append(device)
        rotation = self._round % self.shards
        ordered: list[str] = []
        for offset in range(self.shards):
            ordered.extend(cells[(offset + rotation) % self.shards])
        return ordered

    def execute(self, batch: list[Ticket], *, epoch=None, dispatch_gate=None):
        self._round += 1
        by_device: dict[str, dict[str, int]] = {}
        tickets_by_device: dict[str, list[Ticket]] = {}
        for ticket in sorted(batch, key=lambda t: t.ticket_id):
            delta = ticket.delta
            value = 0 if delta.kind == "evict" else delta.value
            device = self.fleet.home_of(delta.tenant)
            # Last writer wins within the window — exactly the state a
            # serial replay of the same tickets would leave.
            by_device.setdefault(device, {})[delta.tenant] = value
            tickets_by_device.setdefault(device, []).append(ticket)
        result = ExecutionResult()
        for device in self._device_order(list(by_device)):
            try:
                self.fleet.apply_entries(device, by_device[device])
            except (ChannelError, StaleEpochError):
                # This device's window was lost in transit; its tickets
                # retry next round. Other devices' windows stand.
                result.deferred.extend(tickets_by_device[device])
                continue
            result.windows += 1
            self.device_windows[device] = self.device_windows.get(device, 0) + 1
            result.applied.extend(tickets_by_device[device])
        return result


# ---------------------------------------------------------------------------
# Seeded scenario generators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CloudEvent:
    """One scheduled tenant delta in a scenario script."""

    time: float
    kind: str  # "admit" | "evict" | "update"
    tenant: str
    sla_class: str = "bronze"
    value: int = 1

    def to_delta(self) -> TenantDelta:
        return TenantDelta(
            kind=self.kind,
            tenant=self.tenant,
            sla_class=self.sla_class,
            value=self.value,
        )


def _sla_for(rng: random.Random) -> str:
    total = sum(weight for _, weight in _SLA_MIX)
    draw = rng.randrange(total)
    for sla, weight in _SLA_MIX:
        if draw < weight:
            return sla
        draw -= weight
    return _SLA_MIX[-1][0]


def _sorted(events: list[CloudEvent]) -> list[CloudEvent]:
    events.sort(key=lambda e: (e.time, e.tenant, e.kind))
    return events


def flash_crowd(
    tenants: int = 100_000,
    start_s: float = 0.5,
    ramp_s: float = 20.0,
    seed: int = 2026,
) -> list[CloudEvent]:
    """Every tenant arrives within one ramp — the thundering herd."""
    rng = random.Random(seed)
    events = [
        CloudEvent(
            time=start_s + rng.random() * ramp_s,
            kind="admit",
            tenant=str(index),
            sla_class=_sla_for(rng),
        )
        for index in range(tenants)
    ]
    return _sorted(events)


def diurnal(
    tenants: int = 50_000,
    duration_s: float = 60.0,
    seed: int = 2026,
) -> list[CloudEvent]:
    """A day compressed into ``duration_s``: arrival intensity follows a
    raised cosine (trough at the edges, peak mid-window), and each
    tenant departs after a seeded exponential lifetime."""
    import math

    rng = random.Random(seed)
    events: list[CloudEvent] = []
    for index in range(tenants):
        # Inverse-free sampling by rejection against the raised cosine.
        while True:
            t = rng.random() * duration_s
            intensity = 0.5 - 0.5 * math.cos(2 * math.pi * t / duration_s)
            if rng.random() <= intensity:
                break
        sla = _sla_for(rng)
        tenant = str(index)
        events.append(CloudEvent(time=t, kind="admit", tenant=tenant, sla_class=sla))
        depart = t + rng.expovariate(1.0 / (duration_s * 0.25))
        if depart < duration_s:
            events.append(
                CloudEvent(time=depart, kind="evict", tenant=tenant, sla_class=sla)
            )
    return _sorted(events)


def ddos_defense(
    tenants: int = 20_000,
    attack_at_s: float = 10.0,
    attacker_fraction: float = 0.05,
    seed: int = 2026,
) -> list[CloudEvent]:
    """The §1.1 security story at fleet scale: a baseline population is
    admitted, then at ``attack_at_s`` the operator *summons the
    defense* — suspected attackers are evicted (quarantined) and every
    gold tenant's entry is flipped to the hardened profile (value 2) in
    one burst of high-priority deltas."""
    rng = random.Random(seed)
    events: list[CloudEvent] = []
    slas: dict[str, str] = {}
    for index in range(tenants):
        tenant = str(index)
        sla = _sla_for(rng)
        slas[tenant] = sla
        events.append(
            CloudEvent(
                time=rng.random() * (attack_at_s * 0.8),
                kind="admit",
                tenant=tenant,
                sla_class=sla,
            )
        )
    attackers = {
        str(index)
        for index in rng.sample(range(tenants), int(tenants * attacker_fraction))
    }
    burst_jitter = 0.5
    for tenant in sorted(attackers, key=int):
        events.append(
            CloudEvent(
                time=attack_at_s + rng.random() * burst_jitter,
                kind="evict",
                tenant=tenant,
                sla_class=slas[tenant],
            )
        )
    for tenant, sla in sorted(slas.items(), key=lambda kv: int(kv[0])):
        if sla == "gold" and tenant not in attackers:
            events.append(
                CloudEvent(
                    time=attack_at_s + rng.random() * burst_jitter,
                    kind="update",
                    tenant=tenant,
                    sla_class="gold",
                    value=2,
                )
            )
    return _sorted(events)


def canary_rollout(
    tenants: int = 20_000,
    waves: tuple[float, ...] = (0.01, 0.1, 1.0),
    wave_gap_s: float = 5.0,
    seed: int = 2026,
) -> list[CloudEvent]:
    """Admit the fleet, then roll a new profile (value 2) out in
    canary waves: each wave updates a seeded, growing prefix of the
    population, 1% → 10% → 100% by default."""
    rng = random.Random(seed)
    events: list[CloudEvent] = []
    slas: dict[str, str] = {}
    order = list(range(tenants))
    rng.shuffle(order)
    for index in range(tenants):
        tenant = str(index)
        sla = _sla_for(rng)
        slas[tenant] = sla
        events.append(
            CloudEvent(
                time=rng.random() * wave_gap_s * 0.8,
                kind="admit",
                tenant=tenant,
                sla_class=sla,
            )
        )
    rolled: set[str] = set()
    for wave_index, fraction in enumerate(waves):
        wave_at = wave_gap_s * (wave_index + 1.5)
        cohort = [str(i) for i in order[: int(tenants * fraction)]]
        for tenant in cohort:
            if tenant in rolled:
                continue
            rolled.add(tenant)
            events.append(
                CloudEvent(
                    time=wave_at + rng.random() * 0.5,
                    kind="update",
                    tenant=tenant,
                    sla_class=slas[tenant],
                    value=2,
                )
            )
    return _sorted(events)


SCENARIOS = {
    "flash-crowd": flash_crowd,
    "diurnal": diurnal,
    "ddos-defense": ddos_defense,
    "canary-rollout": canary_rollout,
}


# ---------------------------------------------------------------------------
# The scenario runner
# ---------------------------------------------------------------------------


@dataclass
class CloudReport:
    """What one churn scenario produced (FlexScope Reportable).

    ``to_dict()`` is deterministic for a given seed and deliberately
    excludes the shard count: E22's acceptance gate is that the report
    is byte-identical across runs *and* across ``--shards`` settings,
    so anything shard-dependent must stay out of the comparable body.
    """

    scenario: str
    seed: int
    tenants: int
    events: int
    rounds: int = 0
    windows: int = 0
    applied: int = 0
    shed: int = 0
    failed: int = 0
    deferrals: int = 0
    transient_deferrals: int = 0
    coalesce_ratio: float = 0.0
    latency_mean_s_by_class: dict[str, float] = field(default_factory=dict)
    violations: int = 0
    entries_checked: int = 0
    probes: int = 0
    repaired: int = 0
    control_writes: int = 0
    end_state_digest: int = 0
    #: shard count of this run — excluded from to_dict() by design.
    shards: int = 1

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "tenants": self.tenants,
            "events": self.events,
            "rounds": self.rounds,
            "windows": self.windows,
            "applied": self.applied,
            "shed": self.shed,
            "failed": self.failed,
            "deferrals": self.deferrals,
            "transient_deferrals": self.transient_deferrals,
            "coalesce_ratio": round(self.coalesce_ratio, 6),
            "latency_mean_s_by_class": {
                sla: round(mean, 9)
                for sla, mean in sorted(self.latency_mean_s_by_class.items())
            },
            "violations": self.violations,
            "entries_checked": self.entries_checked,
            "probes": self.probes,
            "repaired": self.repaired,
            "control_writes": self.control_writes,
            "end_state_digest": self.end_state_digest,
        }

    def summary(self) -> str:
        lines = [
            f"cloud scenario {self.scenario!r} (seed {self.seed}): "
            f"{self.applied}/{self.events} delta(s) applied over "
            f"{self.rounds} round(s), {self.windows} window(s) "
            f"(coalesce {self.coalesce_ratio:.1f}x)",
            f"  backpressure: {self.shed} shed, {self.deferrals} deferral(s)"
            + (
                f" ({self.transient_deferrals} transient)"
                if self.transient_deferrals
                else ""
            )
            + (f", {self.failed} failed" if self.failed else ""),
            f"  isolation: {self.violations} violation(s) over "
            f"{self.entries_checked} entr(ies) + {self.probes} probe(s)"
            + (f", {self.repaired} repaired" if self.repaired else ""),
            f"  state digest: {self.end_state_digest}",
        ]
        if self.latency_mean_s_by_class:
            latencies = ", ".join(
                f"{sla}={mean * 1000:.0f}ms"
                for sla, mean in sorted(self.latency_mean_s_by_class.items())
            )
            lines.insert(2, f"  admission latency (mean): {latencies}")
        return "\n".join(lines)


def run_scenario(
    events: list[CloudEvent],
    *,
    scenario: str = "custom",
    seed: int = 2026,
    racks: int = 4,
    coalesce: bool = True,
    shards: int = 1,
    round_s: float = ADMISSION_ROUND_S,
    budget: int = ADMISSION_ROUND_BUDGET,
    policies: dict[str, tuple[int, int]] | None = None,
    chaos=None,
    probes: int = 64,
    observe: bool = False,
    max_tenants: int | None = None,
) -> CloudReport:
    """Drive a scenario script through the admission engine.

    Rounds step in virtual time: each round first submits every event
    whose timestamp has passed (at the event's own time, so admission
    latency is measured from intent, not from drain), then drains once.
    With ``chaos`` (a :class:`~repro.faults.plan.FaultPlan`), control
    writes can drop — deferred tickets retry round over round, and a
    final anti-entropy :meth:`~CloudFleet.reconcile` sweep (run after
    the channel heals) repairs whatever the retries never landed.
    """
    reset_packet_ids()
    tenant_ids = {event.tenant for event in events}
    capacity = max_tenants if max_tenants is not None else 1 << 17
    fleet = CloudFleet(racks=racks, max_tenants=capacity)
    if observe:
        fleet.net.observe.enable(sample_every=0)
    injector = None
    if chaos is not None:
        from repro.faults.plan import FaultInjector

        injector = FaultInjector(chaos)
        # recovery=False: a dropped write surfaces as ChannelError and
        # becomes a *deferral* — FlexCloud's own retry loop is the
        # recovery story here, not the per-call backoff.
        fleet.net.controller.attach_faults(injector, recovery=False)
    executor = EntryExecutor(fleet, shards=shards)
    engine = CloudEngine(
        executor,
        round_s=round_s,
        budget=budget,
        policies=policies,
        coalesce=coalesce,
        observer=fleet.net.observe if observe else None,
    )
    now = 0.0
    index = 0
    idle_rounds = 0
    # Generous convergence bound: every ticket retries at most a handful
    # of times even under heavy channel loss.
    max_rounds = max(64, 2 * int(len(events) / max(budget, 1)) + 4096)
    for _ in range(max_rounds):
        now = round(now + round_s, 9)
        while index < len(events) and events[index].time <= now:
            engine.submit(events[index].to_delta(), now=events[index].time)
            index += 1
        engine.drain_round(now)
        if index >= len(events) and not len(engine.queue):
            idle_rounds += 1
            if idle_rounds >= 2:
                break
        else:
            idle_rounds = 0
    repaired = 0
    if chaos is not None:
        # Heal the channel, then run the anti-entropy sweep: convergence
        # must not depend on the fault plan's mercy.
        fleet.net.controller.hub.set_channel(None)
        repaired = fleet.reconcile()
    violations, checked = fleet.verify()
    probe_violations, probes_run = 0, 0
    if probes:
        probe_tenants = sorted(tenant_ids, key=int)[: probes * len(fleet.homes)]
        probe_violations, probes_run = fleet.probe(probe_tenants)
    truth = fleet.ground_truth()
    digest_parts: list = [fleet.net.controller.program.version]
    for device in sorted(truth):
        entries = tuple(sorted((key[0], value) for key, value in truth[device].items()))
        digest_parts.append((device, entries))
    report = CloudReport(
        scenario=scenario,
        seed=seed,
        tenants=len(tenant_ids),
        events=len(events),
        rounds=engine.rounds,
        windows=engine.windows,
        applied=engine.applied,
        shed=engine.queue.shed,
        failed=engine.failed,
        deferrals=engine.deferrals,
        transient_deferrals=engine.transient_deferrals,
        coalesce_ratio=engine.coalesce_ratio,
        latency_mean_s_by_class=engine.latency_by_class(),
        violations=violations + probe_violations,
        entries_checked=checked,
        probes=probes_run,
        repaired=repaired,
        control_writes=sum(
            fleet.net.controller.hub.client(device).stats.writes
            for device in fleet.homes
        ),
        end_state_digest=stable_digest(tuple(digest_parts)),
        shards=shards,
    )
    return report
