"""FlexCloud front 1: batched/async tenant admission.

The paper's §1.1 churn story ("summon the DDoS defense") implies
thousands of tenant deltas arriving *concurrently* — yet a synchronous
``admit_tenant`` call serializes one full reconfiguration window per
delta. This module turns admission into a scheduled, coalesced stream:

* :class:`AdmissionQueue` — ``submit(delta) -> Ticket`` enqueues tenant
  admits / evicts / updates asynchronously into bounded per-SLA-class
  queues. A submission past a class's depth bound is **shed** at the
  door with a typed :class:`ShedReason`; everything admitted to a queue
  eventually drains in strict submission order.
* :class:`Coalescer` — folds a scheduling round's compatible deltas
  (tenant-disjoint, same consistency, non-conflicting shared-field
  writes, at most one FlexVet-pinned extension per window) into one
  batch, which the executor lands as **one reconfiguration window per
  device per round** instead of one per delta.
* :class:`CloudEngine` — the drain loop: every ``ADMISSION_ROUND_S`` it
  asks :func:`~repro.control.scheduler.plan_admission_round` for
  weighted per-class shares of the round budget, takes that many
  tickets, coalesces, and executes. Tickets that cannot fold this round
  are **deferred** (requeued at the head, so they re-drain first, still
  in submission order). With FlexHA attached, every batch is first
  committed to the Raft log (``HACommand(kind="cloud")``) so the queue
  survives leader fail-over, and rounds only drain while a live leader
  exists.

Determinism: every decision (shed, defer, fold, share split) is a pure
function of the submission sequence and the round clock — two engines
fed the same deltas at the same virtual times produce byte-identical
outcome streams, which is what lets E22 gate coalesced-vs-serial
equivalence.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ChannelError, ControlPlaneError, FlexNetError, StaleEpochError
from repro.lang.composition import TenantSpec
from repro.lang.ir import Program
from repro.limits import (
    ADMISSION_CLASS_POLICIES,
    ADMISSION_ROUND_BUDGET,
    ADMISSION_ROUND_S,
)
from repro.runtime.consistency import ConsistencyLevel

from repro.control.scheduler import plan_admission_round

__all__ = [
    "AdmissionOutcome",
    "AdmissionQueue",
    "CloudEngine",
    "Coalescer",
    "ExecutionResult",
    "ExtensionExecutor",
    "ShedReason",
    "TenantDelta",
    "Ticket",
]


class ShedReason(enum.Enum):
    """Why a submission was refused admission to the queue."""

    #: the tenant class's queue is at its depth bound (backpressure).
    QUEUE_FULL = "queue_full"
    #: the delta names an SLA class with no configured policy.
    UNKNOWN_CLASS = "unknown_class"


@dataclass(frozen=True)
class TenantDelta:
    """One asynchronous tenant churn operation.

    Two lanes share this shape. The **extension lane** (``spec`` +
    ``extension`` set) composes a real FlexBPF extension through the
    controller — the full §3 admission pipeline. The **entry lane**
    (``value`` only) represents the tenant as one entry in a
    fleet-replicated admission map (see
    :mod:`repro.cloud.scenarios`) — the shape that scales to 10⁴–10⁶
    tenants, where admits/evicts/updates become batched map writes.
    """

    kind: str  # "admit" | "evict" | "update"
    tenant: str
    sla_class: str = "bronze"
    #: extension lane: the tenant spec + extension program to compose.
    spec: TenantSpec | None = None
    extension: Program | None = None
    #: entry lane: admission-map value (0 == evicted).
    value: int = 1
    consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE

    def __post_init__(self) -> None:
        if self.kind not in ("admit", "evict", "update"):
            raise ValueError(f"unknown delta kind {self.kind!r}")


@dataclass(frozen=True)
class AdmissionOutcome:
    """The terminal decision for one ticket (FlexScope Reportable)."""

    ticket_id: int
    tenant: str
    sla_class: str
    decision: str  # "applied" | "shed" | "failed"
    reason: ShedReason | None = None
    error: str | None = None
    submitted_at: float = 0.0
    resolved_at: float = 0.0
    rounds_deferred: int = 0

    @property
    def latency_s(self) -> float:
        return self.resolved_at - self.submitted_at

    def summary(self) -> str:
        head = (
            f"ticket {self.ticket_id} [{self.sla_class}] {self.tenant}: "
            f"{self.decision}"
        )
        if self.reason is not None:
            head += f" ({self.reason.value})"
        if self.error is not None:
            head += f" ({self.error})"
        head += f" after {self.latency_s:.3f}s"
        if self.rounds_deferred:
            head += f", deferred {self.rounds_deferred} round(s)"
        return head

    def to_dict(self) -> dict:
        return {
            "ticket_id": self.ticket_id,
            "tenant": self.tenant,
            "sla_class": self.sla_class,
            "decision": self.decision,
            "reason": None if self.reason is None else self.reason.value,
            "error": self.error,
            "submitted_at": round(self.submitted_at, 9),
            "resolved_at": round(self.resolved_at, 9),
            "latency_s": round(self.latency_s, 9),
            "rounds_deferred": self.rounds_deferred,
        }


@dataclass
class Ticket:
    """The caller's handle on one submitted delta.

    States: ``pending`` (queued), ``replicating`` (committed to the
    Raft log, awaiting the leader's apply), ``applied``, ``shed``,
    ``failed``. Deferred tickets stay ``pending`` — deferral is a
    scheduling event, not a state."""

    ticket_id: int
    delta: TenantDelta
    submitted_at: float
    state: str = "pending"
    rounds_deferred: int = 0
    outcome: AdmissionOutcome | None = None
    #: extension lane: the TransitionOutcome of the window that applied
    #: this ticket (shared by every ticket folded into the window).
    result: object = None
    #: terminal failure, preserved for synchronous wrappers to re-raise.
    error: Exception | None = None

    @property
    def done(self) -> bool:
        return self.state in ("applied", "shed", "failed")

    def summary(self) -> str:
        if self.outcome is not None:
            return self.outcome.summary()
        return (
            f"ticket {self.ticket_id} [{self.delta.sla_class}] "
            f"{self.delta.tenant}: {self.state}"
        )

    def to_dict(self) -> dict:
        if self.outcome is not None:
            return self.outcome.to_dict()
        return {
            "ticket_id": self.ticket_id,
            "tenant": self.delta.tenant,
            "sla_class": self.delta.sla_class,
            "decision": self.state,
            "submitted_at": round(self.submitted_at, 9),
            "rounds_deferred": self.rounds_deferred,
        }


class AdmissionQueue:
    """Bounded per-SLA-class FIFO queues with global submission order.

    Ticket ids are the submission sequence; each class queue is FIFO by
    ticket id, so merging class drains by ticket id reconstructs global
    submission order exactly. ``requeue`` puts deferred tickets back at
    the head, preserving that invariant."""

    def __init__(self, policies: dict[str, tuple[int, int]] | None = None):
        self.policies = dict(policies if policies is not None else ADMISSION_CLASS_POLICIES)
        self._queues: dict[str, deque[Ticket]] = {name: deque() for name in self.policies}
        self._seq = 0
        self.submitted = 0
        self.shed = 0

    def submit(self, delta: TenantDelta, now: float) -> Ticket:
        """Admit a delta to its class queue, or shed it with a typed
        reason. The returned ticket is terminal when shed."""
        self._seq += 1
        ticket = Ticket(ticket_id=self._seq, delta=delta, submitted_at=now)
        self.submitted += 1
        policy = self.policies.get(delta.sla_class)
        if policy is None:
            return self._shed(ticket, ShedReason.UNKNOWN_CLASS, now)
        depth, _weight = policy
        queue = self._queues[delta.sla_class]
        if len(queue) >= depth:
            return self._shed(ticket, ShedReason.QUEUE_FULL, now)
        queue.append(ticket)
        return ticket

    def _shed(self, ticket: Ticket, reason: ShedReason, now: float) -> Ticket:
        self.shed += 1
        ticket.state = "shed"
        ticket.outcome = AdmissionOutcome(
            ticket_id=ticket.ticket_id,
            tenant=ticket.delta.tenant,
            sla_class=ticket.delta.sla_class,
            decision="shed",
            reason=reason,
            submitted_at=now,
            resolved_at=now,
        )
        return ticket

    def depths(self) -> dict[str, int]:
        return {name: len(queue) for name, queue in self._queues.items()}

    def weights(self) -> dict[str, int]:
        return {name: weight for name, (_depth, weight) in self.policies.items()}

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def take(self, shares: dict[str, int]) -> list[Ticket]:
        """Pop each class's share and merge back into submission order."""
        taken: list[Ticket] = []
        for name in sorted(shares):
            queue = self._queues.get(name)
            if queue is None:
                continue
            for _ in range(min(shares[name], len(queue))):
                taken.append(queue.popleft())
        taken.sort(key=lambda t: t.ticket_id)
        return taken

    def requeue(self, tickets: list[Ticket]) -> None:
        """Return deferred tickets to the *head* of their class queues
        (submission order preserved: heads are re-sorted by ticket id)."""
        for ticket in sorted(tickets, key=lambda t: t.ticket_id, reverse=True):
            ticket.rounds_deferred += 1
            self._queues[ticket.delta.sla_class].appendleft(ticket)


class Coalescer:
    """Folds one round's extension-lane tickets into compatible batches.

    A batch executes as ONE composition + ONE hitless transition
    (:meth:`~repro.control.controller.FlexNetController.admit_tenants_batch`),
    so the fold rules guard exactly what could make a folded window
    diverge from serial per-delta admission:

    * **one op per tenant per round** — a later op on a tenant already
      in this round is deferred (keeps per-tenant serial order);
    * **consistency runs** — consecutive tickets sharing a consistency
      level fold; a level change starts a new batch (batches execute in
      submission order, so cross-batch order is preserved);
    * **shared-field writes** — an admit whose extension writes a
      shared (non-tenant-local) header field already written by an
      earlier admit in the batch starts a new batch, so the inevitable
      :class:`~repro.errors.CompositionError` fails only the offending
      ticket instead of poisoning the window;
    * **FlexVet pinning** — at most one admit whose extension carries a
      pinned (non-shardable) affinity group per batch: pinned state is
      the state FlexScale cannot split, so we conservatively avoid
      stacking two such tenants into one window;
    * **updates ride alone** — an extension-lane update is
      evict-then-readmit (two transitions) and never folds.
    """

    def __init__(self) -> None:
        self._vet_cache: dict[int, tuple[bool, frozenset[str]]] = {}

    def _profile(self, extension: Program) -> tuple[bool, frozenset[str]]:
        """(has pinned affinity group, shared header fields written)."""
        cached = self._vet_cache.get(id(extension))
        if cached is not None:
            return cached
        from repro.analysis import vet

        report = vet(extension)
        pinned = any(not group.shardable for group in report.groups)
        local = {h.name for h in extension.headers} - set(_STANDARD_HEADER_NAMES)
        writes: set[str] = set()
        _collect_shared_writes(extension, local, writes)
        profile = (pinned, frozenset(writes))
        self._vet_cache[id(extension)] = profile
        return profile

    def fold(self, tickets: list[Ticket]) -> tuple[list[list[Ticket]], list[Ticket]]:
        """Return ``(batches, deferred)``; batches execute in order."""
        batches: list[list[Ticket]] = []
        deferred: list[Ticket] = []
        seen_tenants: set[str] = set()
        current: list[Ticket] = []
        current_consistency: ConsistencyLevel | None = None
        current_writes: set[str] = set()
        current_pinned = False

        def close() -> None:
            nonlocal current, current_writes, current_pinned, current_consistency
            if current:
                batches.append(current)
            current = []
            current_writes = set()
            current_pinned = False
            current_consistency = None

        for ticket in tickets:
            delta = ticket.delta
            if delta.tenant in seen_tenants:
                deferred.append(ticket)
                continue
            seen_tenants.add(delta.tenant)
            if delta.kind == "update":
                close()
                batches.append([ticket])
                continue
            pinned, writes = (False, frozenset())
            if delta.kind == "admit" and delta.extension is not None:
                pinned, writes = self._profile(delta.extension)
            if current and (
                delta.consistency is not current_consistency
                or (writes & current_writes)
                or (pinned and current_pinned)
            ):
                close()
            current.append(ticket)
            current_consistency = delta.consistency
            current_writes |= writes
            current_pinned = current_pinned or pinned
        close()
        return batches, deferred


_STANDARD_HEADER_NAMES = ("ethernet", "ipv4", "tcp")


def _collect_shared_writes(program: Program, local_headers: set[str], sink: set[str]) -> None:
    """Mirror of the composer's shared-field-write walk: fields of
    non-tenant-local headers assigned anywhere in the extension."""
    from repro.lang import ir

    def walk(body) -> None:
        for statement in body:
            if isinstance(statement, ir.Assign) and isinstance(statement.target, ir.FieldRef):
                if statement.target.header not in local_headers:
                    sink.add(str(statement.target))
            elif isinstance(statement, ir.If):
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, ir.Repeat):
                walk(statement.body)

    for action in program.actions:
        walk(action.body)
    for function in program.functions:
        walk(function.body)


@dataclass
class ExecutionResult:
    """What one coalesced window (or serial fallback chain) produced."""

    windows: int = 0
    applied: list[Ticket] = field(default_factory=list)
    deferred: list[Ticket] = field(default_factory=list)
    failed: list[tuple[Ticket, Exception]] = field(default_factory=list)


class ExtensionExecutor:
    """Extension-lane window executor: lands a batch through the
    controller's single admission path
    (:meth:`~repro.control.controller.FlexNetController.admit_tenants_batch`).

    A batch failure falls back to serial per-ticket execution so the
    failure attaches to the offending ticket and the rest of the window
    still lands. Transient channel/fencing errors defer (the round
    retries), every other :class:`~repro.errors.FlexNetError` fails the
    ticket terminally."""

    def __init__(self, controller, on_applied=None):
        self.controller = controller
        #: called after every successful window (FlexNet refreshes the
        #: datapath view here).
        self.on_applied = on_applied

    def execute(
        self,
        batch: list[Ticket],
        *,
        epoch: int | None = None,
        dispatch_gate=None,
    ) -> ExecutionResult:
        update_tickets = [t for t in batch if t.delta.kind == "update"]
        if update_tickets:
            if len(batch) != 1:
                raise ControlPlaneError("update tickets must ride alone in a batch")
            return self._execute_update(batch[0], epoch=epoch, dispatch_gate=dispatch_gate)
        admits = [
            (t.delta.spec, t.delta.extension) for t in batch if t.delta.kind == "admit"
        ]
        evicts = [t.delta.tenant for t in batch if t.delta.kind == "evict"]
        consistency = batch[0].delta.consistency
        result = ExecutionResult()
        try:
            outcome = self.controller.admit_tenants_batch(
                admits,
                evicts,
                consistency=consistency,
                ops=len(batch),
                epoch=epoch,
                dispatch_gate=dispatch_gate,
            )
        except (ChannelError, StaleEpochError):
            result.deferred.extend(batch)
            return result
        except FlexNetError as exc:
            if len(batch) == 1:
                result.failed.append((batch[0], exc))
                return result
            # Serial fallback: re-drive each ticket alone so the failure
            # attaches per-ticket. Version accounting is unchanged —
            # each one-ticket window advances the version by one.
            for ticket in batch:
                sub = self.execute([ticket], epoch=epoch, dispatch_gate=dispatch_gate)
                result.windows += sub.windows
                result.applied.extend(sub.applied)
                result.deferred.extend(sub.deferred)
                result.failed.extend(sub.failed)
            return result
        result.windows = max(len(outcome.report.device_windows), 1)
        for ticket in batch:
            ticket.result = outcome
        result.applied.extend(batch)
        if self.on_applied is not None:
            self.on_applied()
        return result

    def _execute_update(
        self, ticket: Ticket, *, epoch: int | None = None, dispatch_gate=None
    ) -> ExecutionResult:
        """Extension-lane update: evict the old extension, admit the
        new one — two transitions, exactly what serial churn would do."""
        delta = ticket.delta
        result = ExecutionResult()
        try:
            first = self.controller.admit_tenants_batch(
                (),
                [delta.tenant],
                consistency=delta.consistency,
                epoch=epoch,
                dispatch_gate=dispatch_gate,
            )
            second = self.controller.admit_tenants_batch(
                [(delta.spec, delta.extension)],
                (),
                consistency=delta.consistency,
                epoch=epoch,
                dispatch_gate=dispatch_gate,
            )
        except (ChannelError, StaleEpochError):
            result.deferred.append(ticket)
            return result
        except FlexNetError as exc:
            result.failed.append((ticket, exc))
            return result
        result.windows = max(len(first.report.device_windows), 1) + max(
            len(second.report.device_windows), 1
        )
        ticket.result = second
        result.applied.append(ticket)
        if self.on_applied is not None:
            self.on_applied()
        return result


class CloudEngine:
    """The FlexCloud drain loop; see the module docstring.

    ``executor`` is any object with
    ``execute(batch, *, epoch=None, dispatch_gate=None) -> ExecutionResult``
    and optionally ``plan(tickets) -> (batches, deferred)``; without
    ``plan``, the built-in :class:`Coalescer` folds (extension lane).
    """

    def __init__(
        self,
        executor,
        *,
        clock=None,
        round_s: float = ADMISSION_ROUND_S,
        budget: int = ADMISSION_ROUND_BUDGET,
        policies: dict[str, tuple[int, int]] | None = None,
        coalesce: bool = True,
        observer=None,
    ):
        self.executor = executor
        self.queue = AdmissionQueue(policies)
        self.coalescer = Coalescer()
        self.round_s = round_s
        self.budget = budget
        self.coalesce = coalesce
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._observer = observer
        #: FlexHA wiring (attach_ha): batches replicate before applying.
        self.ha = None
        self._inflight: dict[int, tuple[list[Ticket], object, int]] = {}

        self.rounds = 0
        self.rounds_skipped = 0
        self.windows = 0
        self.applied = 0
        self.failed = 0
        self.deferrals = 0
        self.transient_deferrals = 0
        self.latency_sum_s = 0.0
        self._latency_by_class: dict[str, tuple[int, float]] = {}
        self._scheduled = False

    # -- submission ---------------------------------------------------------

    def submit(self, delta: TenantDelta, now: float | None = None) -> Ticket:
        now = self._clock() if now is None else now
        ticket = self.queue.submit(delta, now)
        observer = self._observer
        if observer is not None:
            observer.metrics.counter(
                "flexnet_cloud_submitted_total",
                help="tenant deltas submitted to the admission queue",
                sla=delta.sla_class,
            ).inc()
            if ticket.state == "shed":
                observer.metrics.counter(
                    "flexnet_cloud_deltas_total",
                    help="terminal admission decisions",
                    decision="shed",
                    sla=delta.sla_class,
                ).inc()
            observer.metrics.gauge(
                "flexnet_cloud_queue_depth",
                help="queued tenant deltas per SLA class",
                sla=delta.sla_class,
            ).set(self.queue.depths().get(delta.sla_class, 0))
        return ticket

    # -- the scheduling round ----------------------------------------------

    def drain_round(self, now: float | None = None) -> int:
        """Run one scheduling round; returns the tickets resolved."""
        now = self._clock() if now is None else now
        self.rounds += 1
        if self.ha is not None:
            leader = self.ha.cluster.leader()
            if leader is None:
                # Leader-gated drain: nothing leaves the queue while the
                # cluster is electing — the queue *is* the durability.
                self.rounds_skipped += 1
                return 0
            self._repropose_stale(leader)
        shares = plan_admission_round(
            self.queue.depths(), self.budget, self.queue.weights()
        )
        taken = self.queue.take(shares)
        if not taken:
            return 0
        if self.coalesce:
            plan = getattr(self.executor, "plan", None)
            if plan is not None:
                batches, deferred = plan(taken)
            else:
                batches, deferred = self.coalescer.fold(taken)
        else:
            batches, deferred = [[ticket] for ticket in taken], []
        if deferred:
            self._defer(deferred)
        resolved = 0
        for batch in batches:
            resolved += self._dispatch(batch, now)
        if self._observer is not None:
            self._emit_round_metrics()
        return resolved

    def drain_until_idle(self, now: float | None = None, max_rounds: int = 10_000) -> int:
        """Drain rounds back-to-back until the queue and the in-flight
        set are empty (the synchronous wrapper path)."""
        now = self._clock() if now is None else now
        total = 0
        for _ in range(max_rounds):
            if not len(self.queue) and not self._inflight:
                break
            before = len(self.queue) + len(self._inflight)
            total += self.drain_round(now)
            if len(self.queue) + len(self._inflight) >= before:
                break  # no forward progress (e.g. leaderless) — stop
        return total

    def start(self, loop) -> None:
        """Schedule recurring rounds on an event loop (controller
        integration: rounds interleave with traffic and transitions)."""
        if self._scheduled:
            return
        self._scheduled = True

        def tick() -> None:
            self.drain_round(loop.now)
            loop.schedule(self.round_s, tick)

        loop.schedule(self.round_s, tick)

    # -- execution ----------------------------------------------------------

    def _dispatch(self, batch: list[Ticket], now: float) -> int:
        if self.ha is not None:
            return self._dispatch_replicated(batch, now)
        result = self.executor.execute(batch)
        return self._record(batch, result, now)

    def _dispatch_replicated(self, batch: list[Ticket], now: float) -> int:
        payload = tuple(
            (t.delta.kind, t.delta.tenant, t.delta.sla_class) for t in batch
        )
        command = self.ha.submit_cloud(payload, batch[0].delta.consistency)
        if command is None:
            self._defer(batch)
            return 0
        for ticket in batch:
            ticket.state = "replicating"
        leader = self.ha.cluster.leader()
        self._inflight[command.delta_id] = (
            batch,
            command,
            leader.current_term if leader is not None else 0,
        )
        return 0

    def _ha_apply(self, command, *, epoch=None, dispatch_gate=None) -> None:
        """FlexHA apply callback: the committed batch executes on
        whichever node now leads. Idempotence is FlexHA's (delta-id
        guard); here we just finalize the tickets."""
        entry = self._inflight.pop(command.delta_id, None)
        if entry is None:
            return
        batch, _command, _term = entry
        result = self.executor.execute(batch, epoch=epoch, dispatch_gate=dispatch_gate)
        self._record(batch, result, self._clock())

    def _repropose_stale(self, leader) -> None:
        """A committed-but-unapplied batch survives fail-over via the
        log; a batch whose proposal was *lost* with its leader does not.
        Once a newer term leads, re-propose any still-inflight batch
        under its original delta id — the executed-id guard makes a
        double commit harmless."""
        for delta_id in sorted(self._inflight):
            batch, command, term = self._inflight[delta_id]
            if leader.current_term > term and not self.ha.was_executed(delta_id):
                if self.ha.repropose(command):
                    self._inflight[delta_id] = (batch, command, leader.current_term)

    def _defer(self, tickets: list[Ticket]) -> None:
        self.deferrals += len(tickets)
        for ticket in tickets:
            ticket.state = "pending"
        self.queue.requeue(tickets)

    def _record(self, batch: list[Ticket], result: ExecutionResult, now: float) -> int:
        self.windows += result.windows
        resolved = 0
        for ticket in result.applied:
            self._finalize(ticket, "applied", now)
            resolved += 1
        for ticket, error in result.failed:
            ticket.error = error
            self._finalize(ticket, "failed", now, error=f"{type(error).__name__}: {error}")
            resolved += 1
        if result.deferred:
            self.transient_deferrals += len(result.deferred)
            self._defer(result.deferred)
        return resolved

    def _finalize(self, ticket: Ticket, decision: str, now: float, error: str | None = None):
        ticket.state = decision
        ticket.outcome = AdmissionOutcome(
            ticket_id=ticket.ticket_id,
            tenant=ticket.delta.tenant,
            sla_class=ticket.delta.sla_class,
            decision=decision,
            error=error,
            submitted_at=ticket.submitted_at,
            resolved_at=now,
            rounds_deferred=ticket.rounds_deferred,
        )
        if decision == "applied":
            self.applied += 1
            latency = ticket.outcome.latency_s
            self.latency_sum_s += latency
            count, total = self._latency_by_class.get(ticket.delta.sla_class, (0, 0.0))
            self._latency_by_class[ticket.delta.sla_class] = (count + 1, total + latency)
        else:
            self.failed += 1
        observer = self._observer
        if observer is not None:
            observer.metrics.counter(
                "flexnet_cloud_deltas_total",
                help="terminal admission decisions",
                decision=decision,
                sla=ticket.delta.sla_class,
            ).inc()
            if decision == "applied":
                observer.metrics.histogram(
                    "flexnet_cloud_admission_latency_seconds",
                    help="submit-to-applied latency",
                    sla=ticket.delta.sla_class,
                ).observe(ticket.outcome.latency_s)

    def _emit_round_metrics(self) -> None:
        metrics = self._observer.metrics
        for sla, depth in sorted(self.queue.depths().items()):
            metrics.gauge(
                "flexnet_cloud_queue_depth",
                help="queued tenant deltas per SLA class",
                sla=sla,
            ).set(depth)
        metrics.counter(
            "flexnet_cloud_rounds_total", help="admission scheduling rounds"
        ).set(self.rounds)
        metrics.counter(
            "flexnet_cloud_windows_total",
            help="coalesced per-device reconfiguration windows executed",
        ).set(self.windows)
        metrics.gauge(
            "flexnet_cloud_coalesce_ratio",
            help="applied deltas per reconfiguration window",
        ).set(round(self.coalesce_ratio, 6))

    # -- HA wiring ----------------------------------------------------------

    def attach_ha(self, ha) -> None:
        """Replicate every batch through the Raft log before applying:
        the admission queue survives leader fail-over because committed
        batches re-apply on the successor and uncommitted batches stay
        queued (or are re-proposed) on the engine side."""
        self.ha = ha
        ha.cloud_apply = self._ha_apply

    # -- introspection ------------------------------------------------------

    @property
    def coalesce_ratio(self) -> float:
        return self.applied / self.windows if self.windows else 0.0

    def latency_by_class(self) -> dict[str, float]:
        return {
            sla: total / count
            for sla, (count, total) in sorted(self._latency_by_class.items())
            if count
        }

    def stats(self) -> dict:
        return {
            "rounds": self.rounds,
            "rounds_skipped": self.rounds_skipped,
            "submitted": self.queue.submitted,
            "applied": self.applied,
            "shed": self.queue.shed,
            "failed": self.failed,
            "deferrals": self.deferrals,
            "transient_deferrals": self.transient_deferrals,
            "windows": self.windows,
            "coalesce_ratio": round(self.coalesce_ratio, 6),
            "queue_depth": sum(self.queue.depths().values()),
            "inflight": len(self._inflight),
            "latency_mean_s_by_class": {
                sla: round(mean, 9) for sla, mean in self.latency_by_class().items()
            },
        }
