"""The unified report protocol.

Before FlexScope, every subsystem invented its own report shape:
``TrafficReport``, ``ChaosReport``, ``TransitionOutcome``,
``RunMetrics``, and the analysis ``Report`` each had a bespoke
formatter buried in the CLI. :class:`Reportable` is the one contract
they all implement now — ``summary()`` for humans, ``to_dict()`` for
machines — and :func:`emit` is the single CLI rendering path behind
every verb's ``--json`` flag.
"""

from __future__ import annotations

import json
import sys
from typing import Protocol, runtime_checkable


@runtime_checkable
class Reportable(Protocol):
    """Anything the toolchain can report on.

    ``summary()`` returns the human-readable multi-line text a CLI verb
    prints by default; ``to_dict()`` returns the JSON-serializable form
    behind ``--json``. Implementations must keep ``to_dict()``
    deterministic for seeded runs (sorted keys, rounded floats).
    """

    def summary(self) -> str:
        """Human-readable multi-line rendering."""
        ...  # pragma: no cover - protocol

    def to_dict(self) -> dict:
        """Machine-readable (JSON-serializable) rendering."""
        ...  # pragma: no cover - protocol


def emit(report: Reportable, as_json: bool = False, stream=None) -> None:
    """The shared CLI output path: one report, one flag, one formatter."""
    stream = stream if stream is not None else sys.stdout
    if as_json:
        stream.write(json.dumps(report.to_dict(), indent=2) + "\n")
    else:
        stream.write(report.summary() + "\n")
