"""FlexScope metrics: a labelled counter/gauge/histogram registry.

Prometheus-shaped but dependency-free: a :class:`MetricsRegistry` holds
metric *families* (one per name), each family holds one series per
label set. Exporters render deterministically — families sorted by
name, series sorted by their label items — so two seeded runs of the
same scenario export byte-identical text, which is what makes metric
snapshots regression-testable.

Hot paths never push here. Fast-moving sources (device stats, the
FlexPath flow cache, the P4Runtime channel, dRPC stats) already keep
their own cheap counters; the registry *pulls* them through registered
collector callbacks at export time. Control-path sources (the
scheduler, the recovery manager, transitions) push directly — they run
a handful of times per scenario.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets (seconds) sized for transition windows and
#: control-plane latencies.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - labels only
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class Counter:
    """Monotonically increasing value."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        """Collectors mirror an externally-kept monotone total."""
        self.value = value


@dataclass
class Gauge:
    """A value that can go up and down."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        running = 0
        out = []
        for count in self.counts:
            running += count
            out.append(running)
        return out


@dataclass
class _Family:
    name: str
    kind: str  # counter | gauge | histogram
    help: str
    series: dict[LabelKey, object] = field(default_factory=dict)


class MetricsRegistry:
    """Labelled metric families with deterministic exporters."""

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._collectors: list = []

    # -- creation (get-or-create per name+labels) ---------------------------

    def _series(self, name: str, kind: str, help_text: str, labels: dict, factory):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name=name, kind=kind, help=help_text)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        key = _label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = factory()
        return series

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._series(name, "gauge", help, labels, Gauge)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._series(
            name, "histogram", help, labels, lambda: Histogram(buckets=buckets)
        )

    # -- collectors ---------------------------------------------------------

    def register_collector(self, collector) -> None:
        """``collector(registry)`` runs at every export to mirror
        externally-kept counters (device stats, cache stats, channel
        stats) into the registry."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    def detach_collectors(self) -> None:
        """Drop every registered collector, freezing the registry at its
        current values. A FlexScale shard collects once, detaches, and
        ships the frozen registry to the coordinator — collectors close
        over live worker-process objects and must not cross the process
        boundary."""
        self._collectors.clear()

    def clear(self) -> None:
        self._families.clear()

    # -- merging (FlexScale coordinator) ------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's series into this one, in place.

        Counters and gauges add; histograms add bucket-wise (bucket
        bounds must agree). Series present only in ``other`` are copied
        over. Merging is value-based and commutative, so folding every
        shard's frozen snapshot into one fleet registry yields the same
        deterministic export regardless of worker completion order —
        which is what keeps ``flexnet metrics`` byte-identical across
        same-seed sharded runs. Returns ``self`` for chaining.
        """
        for name in sorted(other._families):
            theirs = other._families[name]
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(
                    name=name, kind=theirs.kind, help=theirs.help
                )
            elif family.kind != theirs.kind:
                raise ValueError(
                    f"cannot merge metric {name!r}: {family.kind} vs {theirs.kind}"
                )
            for key in sorted(theirs.series):
                series = theirs.series[key]
                mine = family.series.get(key)
                if mine is None:
                    if theirs.kind == "histogram":
                        mine = family.series[key] = Histogram(buckets=series.buckets)
                    else:
                        mine = family.series[key] = (
                            Counter() if theirs.kind == "counter" else Gauge()
                        )
                if theirs.kind == "histogram":
                    if mine.buckets != series.buckets:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket bounds differ"
                        )
                    mine.total += series.total
                    mine.count += series.count
                    for index, count in enumerate(series.counts):
                        mine.counts[index] += count
                else:
                    mine.value += series.value
        return self

    # -- export -------------------------------------------------------------

    @staticmethod
    def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
        items = key + extra
        if not items:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in items)
        return "{" + inner + "}"

    def to_prometheus(self) -> str:
        """Deterministic Prometheus text exposition."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                series = family.series[key]
                if family.kind == "histogram":
                    cumulative = series.cumulative()
                    for bound, count in zip(series.buckets, cumulative):
                        labels = self._render_labels(key, (("le", _format_value(bound)),))
                        lines.append(f"{name}_bucket{labels} {count}")
                    labels = self._render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {cumulative[-1]}")
                    lines.append(
                        f"{name}_sum{self._render_labels(key)} {_format_value(series.total)}"
                    )
                    lines.append(f"{name}_count{self._render_labels(key)} {series.count}")
                else:
                    lines.append(
                        f"{name}{self._render_labels(key)} {_format_value(series.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """Deterministic JSON-shaped export."""
        self.collect()
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series_list = []
            for key in sorted(family.series):
                series = family.series[key]
                entry: dict = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["count"] = series.count
                    entry["sum"] = round(series.total, 9)
                    entry["buckets"] = {
                        _format_value(bound): count
                        for bound, count in zip(series.buckets, series.cumulative())
                    }
                else:
                    value = series.value
                    entry["value"] = (
                        int(value) if float(value).is_integer() else round(value, 9)
                    )
                series_list.append(entry)
            out[name] = {"type": family.kind, "series": series_list}
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
