"""The FlexScope façade: one object (``net.observe``) for all of it.

An :class:`Observer` bundles the tracer, the metrics registry, and the
profiler, and knows how to wire them through a
:class:`~repro.control.controller.FlexNetController`: device runtimes
(sampled packet traces), the reconfiguration orchestrator (window
spans), the dRPC fabric (call spans), the telemetry collector (event
feed), and the placement engine (compile profiling).

**Strictly zero-cost when disabled.** Until :meth:`enable` runs, no
component holds a reference to the observer — every hook site guards on
a plain ``observer is None`` attribute check, hot paths included — and
:meth:`disable` unwires everything again. Two runs of the same seeded
scenario, one with the observer never attached and one attached-but-
disabled, execute identical instruction streams through the data plane.
"""

from __future__ import annotations

from repro.observe.metrics import MetricsRegistry
from repro.observe.profile import Profiler
from repro.observe.trace import PacketTrace, Tracer

#: Default packet sampling period: one traced packet per N processed.
DEFAULT_SAMPLE_EVERY = 64


class Observer:
    """See module docstring."""

    def __init__(
        self,
        ring_capacity: int = 65536,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ):
        self.enabled = False
        self.tracer = Tracer(capacity=ring_capacity)
        self.metrics = MetricsRegistry()
        self.profiler = Profiler()
        self.sample_every = sample_every
        self.trace_packets = True
        self._controller = None
        self._collector_registered = False
        #: observer-local sample counter — deliberately NOT the global
        #: packet id (which never resets within a process), so two
        #: identical seeded runs sample identical packets.
        self._sample_seq = 0

    # -- wiring -------------------------------------------------------------

    def bind(self, controller) -> "Observer":
        """Remember the controller; no hooks are installed until
        :meth:`enable`."""
        self._controller = controller
        return self

    def enable(
        self,
        sample_every: int | None = None,
        trace_packets: bool = True,
        sink=None,
    ) -> "Observer":
        """Install every hook. ``sample_every=N`` traces one packet in N
        (0 disables packet sampling while keeping control-plane spans);
        ``sink`` is a file-like object mirroring closed spans as JSONL."""
        if self._controller is None:
            raise RuntimeError("Observer.bind(controller) must run before enable()")
        if sample_every is not None:
            self.sample_every = sample_every
        self.trace_packets = trace_packets
        if sink is not None:
            self.tracer.sink = sink
        self.enabled = True
        controller = self._controller
        controller.observer = self
        controller.orchestrator.observer = self
        controller.drpc.observer = self
        controller.telemetry.observer = self
        controller.engine.profiler = self.profiler
        if trace_packets and self.sample_every > 0:
            for device in controller.devices.values():
                device.observer = self
        if not self._collector_registered:
            self.metrics.register_collector(self._collect)
            self._collector_registered = True
        return self

    def disable(self) -> "Observer":
        """Unwire every hook; the data plane returns to the exact
        disabled instruction stream."""
        self.enabled = False
        controller = self._controller
        if controller is not None:
            controller.observer = None
            controller.orchestrator.observer = None
            controller.drpc.observer = None
            controller.telemetry.observer = None
            controller.engine.profiler = None
            for device in controller.devices.values():
                device.observer = None
        return self

    def attach_device(self, device) -> None:
        """Hook a device added after :meth:`enable` (controller calls this)."""
        if self.enabled and self.trace_packets and self.sample_every > 0:
            device.observer = self

    # -- packet sampling ----------------------------------------------------

    def begin_packet(self) -> PacketTrace | None:
        """Deterministic 1-in-N sampling decision; returns a fresh frame
        collector for sampled packets, None otherwise."""
        self._sample_seq += 1
        if (self._sample_seq - 1) % self.sample_every:
            return None
        return PacketTrace()

    def record_packet(self, device_name: str, packet, result, trace: PacketTrace, now: float):
        """Fold a sampled packet's frames into one span."""
        span = self.tracer.start_span(
            f"pkt@{device_name}",
            "packet",
            now,
            device=device_name,
            sample=self._sample_seq,
            version=result.version,
            ops=result.ops,
            recirculations=result.recirculations,
        )
        for frame in trace.frames:
            kind = frame[0]
            if kind == "parse":
                span.add_event("parse", now, headers=",".join(frame[1]))
            elif kind == "table":
                span.add_event(
                    "table",
                    now,
                    table=frame[1],
                    hit=frame[2],
                    action=frame[3] if frame[3] is not None else "",
                )
            elif kind == "function":
                span.add_event("function", now, function=frame[1])
            elif kind == "drop":
                span.add_event("drop", now)
            elif kind == "recirculate":
                span.add_event("recirculate", now, n=frame[1])
            elif kind == "digest":
                span.add_event("digest", now, program=frame[1], values=list(frame[2]))
        self.tracer.end_span(span, now)
        self.metrics.counter(
            "flexnet_trace_sampled_packets_total",
            help="packets sampled into the tracer",
            device=device_name,
        ).inc()
        return span

    # -- metrics collection (pull model; runs at export) --------------------

    def _collect(self, registry: MetricsRegistry) -> None:
        controller = self._controller
        if controller is None:
            return
        for name in sorted(controller.devices):
            device = controller.devices[name]
            stats = device.stats
            for version in sorted(stats.per_version):
                registry.counter(
                    "flexnet_device_packets_total",
                    help="packets processed per device and program version",
                    device=name,
                    version=version,
                ).set(stats.per_version[version])
            registry.counter(
                "flexnet_device_dropped_total", device=name
            ).set(stats.dropped_by_program)
            registry.counter("flexnet_device_ops_total", device=name).set(stats.total_ops)
            registry.counter(
                "flexnet_device_queue_drops_total", device=name
            ).set(stats.queue_drops)
            registry.gauge(
                "flexnet_device_queue_depth_max", device=name
            ).set(stats.max_queue_depth)
            registry.counter(
                "flexnet_device_reconfigurations_total", device=name
            ).set(stats.reconfigurations)
            registry.counter("flexnet_device_crashes_total", device=name).set(stats.crashes)
            registry.counter("flexnet_device_restarts_total", device=name).set(stats.restarts)
            cache = device.flow_cache
            if cache is not None:
                registry.counter("flexnet_flowcache_hits_total", device=name).set(
                    cache.stats.hits
                )
                registry.counter("flexnet_flowcache_misses_total", device=name).set(
                    cache.stats.misses
                )
                registry.counter("flexnet_flowcache_bypasses_total", device=name).set(
                    cache.stats.bypasses
                )
                registry.counter(
                    "flexnet_flowcache_invalidations_total", device=name
                ).set(cache.stats.invalidations)
                registry.counter(
                    "flexnet_flowcache_entries_dropped_total", device=name
                ).set(cache.stats.entries_dropped)
                registry.gauge("flexnet_flowcache_entries", device=name).set(len(cache))
            batch_stats = device.batch_stats()
            if batch_stats is not None:
                registry.counter(
                    "flexnet_batch_packets_total",
                    help="packets routed through the FlexBatch backend",
                    device=name,
                ).set(batch_stats.packets)
                registry.counter(
                    "flexnet_batch_batches_total", device=name
                ).set(batch_stats.batches)
                registry.counter(
                    "flexnet_batch_memo_hits_total", device=name
                ).set(batch_stats.memo_hits)
                registry.counter(
                    "flexnet_batch_fallback_packets_total", device=name
                ).set(batch_stats.fallback_packets)
                registry.gauge(
                    "flexnet_batch_occupancy",
                    help="mean packets per batch",
                    device=name,
                ).set(batch_stats.occupancy)
                registry.gauge(
                    "flexnet_batch_max_batch_size", device=name
                ).set(batch_stats.max_batch_size)
            instance = device.active_instance
            if instance is not None:
                for table_name in sorted(instance.rules):
                    rules = instance.rules[table_name]
                    labels = dict(
                        device=name, table=table_name, version=instance.version
                    )
                    registry.gauge(
                        "flexnet_table_entries",
                        help="installed rules per table",
                        **labels,
                    ).set(len(rules))
                    registry.counter(
                        "flexnet_table_hits_total", **labels
                    ).set(sum(rules.hit_counts))
                    registry.counter(
                        "flexnet_table_misses_total", **labels
                    ).set(rules.miss_count)
        for name in sorted(controller.hub.clients):
            client = controller.hub.clients[name]
            registry.counter("flexnet_p4runtime_writes_total", device=name).set(
                client.stats.writes
            )
            registry.counter("flexnet_p4runtime_reads_total", device=name).set(
                client.stats.reads
            )
            registry.counter(
                "flexnet_p4runtime_control_seconds_total", device=name
            ).set(round(client.stats.control_time_s, 9))
        channel = controller.hub.channel
        if channel is not None:
            registry.counter("flexnet_channel_drops_total").set(channel.drops)
            registry.counter("flexnet_channel_retries_total").set(channel.retries)
            registry.counter("flexnet_channel_delays_total").set(channel.delays)
            registry.counter("flexnet_channel_failures_total").set(channel.failures)
        for service in sorted(controller.drpc.stats):
            stats = controller.drpc.stats[service]
            registry.counter("flexnet_drpc_calls_total", service=service).set(stats.calls)
            registry.counter("flexnet_drpc_failures_total", service=service).set(
                stats.failures
            )
            registry.counter("flexnet_drpc_retries_total", service=service).set(
                stats.retries
            )
            registry.counter(
                "flexnet_drpc_latency_seconds_total", service=service
            ).set(round(stats.total_latency_s, 9))
        telemetry = controller.telemetry
        registry.counter(
            "flexnet_telemetry_digests_total",
            help="digest records ever ingested",
        ).set(telemetry.total_digests)
        registry.counter("flexnet_telemetry_events_total").set(telemetry.total_events)
        if controller.fault_injector is not None:
            for key, value in controller.fault_injector.stats.to_dict().items():
                registry.counter(
                    "flexnet_fault_injections_total",
                    help="fault-injector decisions that fired",
                    kind=key,
                ).set(value)
        if controller.recovery is not None:
            registry.counter("flexnet_recovery_resumed_total").set(
                controller.recovery.resumed
            )
            registry.counter("flexnet_recovery_rolled_back_total").set(
                controller.recovery.rolled_back
            )
        if controller.health is not None:
            registry.gauge("flexnet_quarantined_devices").set(
                len(controller.health.quarantined)
            )
        for uri in controller.app_uris:
            record = controller.app(uri)
            registry.gauge(
                "flexnet_app_elements",
                help="program elements owned per app URI",
                app=uri,
                tenant=record.uri.owner,
            ).set(len(record.elements))

    # -- convenience --------------------------------------------------------

    def span_tree(self) -> str:
        return self.tracer.render_tree()

    def to_dict(self) -> dict:
        """Everything FlexScope holds, machine-readable and deterministic
        (profiler wall-clock columns are excluded)."""
        return {
            "enabled": self.enabled,
            "sample_every": self.sample_every,
            "trace": self.tracer.to_dict(),
            "metrics": self.metrics.to_dict(),
            "profile": self.profiler.to_dict(include_wall=False),
        }

    def summary(self) -> str:
        lines = [
            f"flexscope: {'enabled' if self.enabled else 'disabled'} "
            f"(sampling 1/{self.sample_every}, "
            f"{self.tracer.total_spans} span(s), {self.tracer.total_events} event(s))"
        ]
        tree = self.tracer.render_tree()
        if tree:
            lines.append(tree)
        return "\n".join(lines)
