"""FlexScope profiling: per-phase wall/sim/op-cost accounting.

The profiler answers "where does a runtime change spend its time":
compile (placement, stage bin-packing), analysis, scheduling, and the
transition windows themselves. Control-plane phases are timed in *wall*
seconds (host time — useful locally, excluded from determinism-checked
exports); data-plane phases are charged in *virtual* seconds from the
event loop, which are deterministic.

Everything is guarded at the call site: a ``None`` profiler costs one
attribute check, so the disabled path stays zero-cost.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseStat:
    calls: int = 0
    wall_s: float = 0.0
    sim_s: float = 0.0
    ops: int = 0

    @property
    def mean_wall_s(self) -> float:
        return self.wall_s / self.calls if self.calls else 0.0


@dataclass
class Profiler:
    phases: dict[str, PhaseStat] = field(default_factory=dict)

    def stat(self, name: str) -> PhaseStat:
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = PhaseStat()
        return stat

    @contextmanager
    def phase(self, name: str):
        """Time one control-plane phase in wall seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stat = self.stat(name)
            stat.calls += 1
            stat.wall_s += time.perf_counter() - start

    def add_sim(self, name: str, sim_s: float, ops: int = 0) -> None:
        """Charge virtual (event-loop) seconds to a phase."""
        stat = self.stat(name)
        stat.calls += 1
        stat.sim_s += sim_s
        stat.ops += ops

    def add_ops(self, name: str, ops: int) -> None:
        self.stat(name).ops += ops

    def clear(self) -> None:
        self.phases.clear()

    def to_dict(self, include_wall: bool = True) -> dict:
        """Machine-readable snapshot. ``include_wall=False`` drops the
        host-time columns, leaving only deterministic fields."""
        out: dict = {}
        for name in sorted(self.phases):
            stat = self.phases[name]
            entry: dict = {"calls": stat.calls, "sim_s": round(stat.sim_s, 9), "ops": stat.ops}
            if include_wall:
                entry["wall_s"] = round(stat.wall_s, 6)
            out[name] = entry
        return out

    def rows(self) -> list[list]:
        """Table rows for the ``flexnet profile`` CLI."""
        rows = []
        for name in sorted(self.phases):
            stat = self.phases[name]
            rows.append(
                [
                    name,
                    stat.calls,
                    f"{stat.wall_s * 1e3:.2f}",
                    f"{stat.mean_wall_s * 1e3:.3f}",
                    f"{stat.sim_s:.4f}",
                    stat.ops,
                ]
            )
        return rows

    def render(self) -> str:
        headers = ["phase", "calls", "wall ms", "mean ms", "sim s", "ops"]
        rows = self.rows()
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = ["  ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
        lines.append("-" * len(lines[0]))
        lines.extend(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)) for row in rows
        )
        return "\n".join(lines)
