"""FlexScope: end-to-end observability for runtime programmable networks.

One façade — :class:`Observer`, exposed as ``net.observe`` — bundles:

* structured tracing (:mod:`repro.observe.trace`): hierarchical spans
  over sim time covering reconfiguration windows, dRPC calls, fault
  injections, and sampled per-packet data-plane execution;
* metrics (:mod:`repro.observe.metrics`): a labelled
  counter/gauge/histogram registry with deterministic Prometheus-text
  and JSON exporters;
* profiling (:mod:`repro.observe.profile`): per-phase wall/sim/op-cost
  accounting for compile, placement, and transition work;
* the unified report protocol (:mod:`repro.observe.report`):
  ``summary()``/``to_dict()`` for every report object the toolchain
  produces, behind one CLI formatter.

Disabled observability is strictly zero-cost: no component holds an
observer reference until :meth:`Observer.enable` wires one in.
"""

from repro.observe.facade import DEFAULT_SAMPLE_EVERY, Observer
from repro.observe.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.profile import PhaseStat, Profiler
from repro.observe.report import Reportable, emit
from repro.observe.trace import (
    PacketTrace,
    Span,
    SpanEvent,
    Tracer,
    render_span_tree,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_SAMPLE_EVERY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "PacketTrace",
    "PhaseStat",
    "Profiler",
    "Reportable",
    "Span",
    "SpanEvent",
    "Tracer",
    "emit",
    "render_span_tree",
]
