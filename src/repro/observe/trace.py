"""FlexScope structured tracing: hierarchical spans over sim time.

A :class:`Span` is one timed region of the system's life — a runtime
update, one device's transition window, an in-band migration, a dRPC
invocation, or the execution of one sampled packet. Spans carry an
explicit ``parent_id`` so the full tree can be reconstructed offline,
and every timestamp is the event loop's monotonic *virtual* clock, so
two seeded runs of the same scenario produce byte-identical trees.

The :class:`Tracer` keeps finished-and-open spans in a bounded ring
(oldest spans fall off first) plus a global event feed (fault
injections, journal commits/rollbacks, health transitions). An optional
JSONL sink mirrors every closed span to a file for offline tooling.

Packet-level traces are collected out-of-band by the interpreter into a
:class:`PacketTrace` (a plain frame list, no tracer coupling) and
folded into a span by the device runtime — see
:meth:`repro.runtime.device.DeviceRuntime.process`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field


@dataclass
class SpanEvent:
    """A point-in-time annotation, attached to a span or to the global feed."""

    time: float
    name: str
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {"time": round(self.time, 9), "name": self.name}
        if self.attrs:
            data["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return data


@dataclass
class Span:
    """One timed region; ``parent_id`` links it into the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    status: str = "ok"

    @property
    def duration_s(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def add_event(self, name: str, time: float, **attrs) -> SpanEvent:
        event = SpanEvent(time=time, name=name, attrs=attrs)
        self.events.append(event)
        return event

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, 9),
            "end": None if self.end is None else round(self.end, 9),
            "status": self.status,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "events": [e.to_dict() for e in self.events],
        }


class Tracer:
    """Bounded in-memory span ring + global event feed; see module doc."""

    def __init__(self, capacity: int = 65536, sink=None):
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.events: deque[SpanEvent] = deque(maxlen=capacity)
        self._next_id = 1
        self._stack: list[Span] = []
        #: file-like object (or None); closed spans are mirrored as JSONL.
        self.sink = sink
        self.total_spans = 0
        self.total_events = 0

    # -- span lifecycle -----------------------------------------------------

    def start_span(
        self,
        name: str,
        kind: str,
        now: float,
        parent: Span | int | None = None,
        **attrs,
    ) -> Span:
        if parent is None and self._stack:
            parent_id = self._stack[-1].span_id
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=now,
            attrs=attrs,
        )
        self._next_id += 1
        self.total_spans += 1
        self._spans.append(span)
        return span

    def end_span(self, span: Span, now: float, status: str = "ok", **attrs) -> Span:
        span.end = now
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        if self.sink is not None:
            self.sink.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return span

    class _SpanContext:
        def __init__(self, tracer: "Tracer", span: Span, end_time):
            self._tracer = tracer
            self._span = span
            self._end_time = end_time

        def __enter__(self) -> Span:
            self._tracer._stack.append(self._span)
            return self._span

        def __exit__(self, exc_type, exc, tb) -> None:
            self._tracer._stack.pop()
            end = self._end_time() if callable(self._end_time) else self._end_time
            self._tracer.end_span(
                self._span, end, status="error" if exc_type else "ok"
            )

    def span(self, name: str, kind: str, now, parent=None, end_time=None, **attrs):
        """Context manager for synchronous control-path regions. ``now``
        and ``end_time`` may be callables (e.g. ``lambda: loop.now``) so
        control-path work that advances virtual time is timed correctly;
        ``end_time`` defaults to ``now``."""
        start = now() if callable(now) else now
        span = self.start_span(name, kind, start, parent=parent, **attrs)
        return Tracer._SpanContext(self, span, end_time if end_time is not None else now)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- global event feed --------------------------------------------------

    def event(self, name: str, now: float, span: Span | None = None, **attrs) -> SpanEvent:
        """Record a point event; attached to ``span`` when given, and
        always appended to the global feed (what ``flexnet trace
        --events`` renders)."""
        if span is not None:
            span.add_event(name, now, **attrs)
        event = SpanEvent(time=now, name=name, attrs=attrs)
        self.events.append(event)
        self.total_events += 1
        return event

    # -- introspection ------------------------------------------------------

    def spans(self, kind: str | None = None) -> list[Span]:
        if kind is None:
            return list(self._spans)
        return [s for s in self._spans if s.kind == kind]

    def find(self, span_id: int) -> Span | None:
        for span in self._spans:
            if span.span_id == span_id:
                return span
        return None

    def children_of(self, span: Span | int) -> list[Span]:
        parent_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self._spans if s.parent_id == parent_id]

    def clear(self) -> None:
        self._spans.clear()
        self.events.clear()
        self._stack.clear()

    def to_dict(self) -> dict:
        """Machine-readable form of the whole ring, ordered by span id
        (deterministic for seeded runs)."""
        return {
            "spans": [s.to_dict() for s in sorted(self._spans, key=lambda s: s.span_id)],
            "events": [e.to_dict() for e in self.events],
        }

    def render_tree(self) -> str:
        """Human-readable indentation tree (what ``flexnet trace`` prints)."""
        spans = sorted(self._spans, key=lambda s: s.span_id)
        ids = {s.span_id for s in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            end = "…" if span.end is None else f"{span.end:.6f}"
            attrs = " ".join(f"{k}={span.attrs[k]}" for k in sorted(span.attrs))
            lines.append(
                f"{'  ' * depth}[{span.kind}] {span.name} "
                f"t={span.start:.6f}..{end}"
                + (f" {attrs}" if attrs else "")
                + ("" if span.status == "ok" else f" status={span.status}")
            )
            for event in span.events:
                event_attrs = " ".join(
                    f"{k}={event.attrs[k]}" for k in sorted(event.attrs)
                )
                lines.append(
                    f"{'  ' * (depth + 1)}* {event.name} t={event.time:.6f}"
                    + (f" {event_attrs}" if event_attrs else "")
                )
            for child in children.get(span.span_id, []):
                emit(child, depth + 1)

        for root in children.get(None, []):
            emit(root, 0)
        return "\n".join(lines)


def render_span_tree(spans: list[dict]) -> str:
    """Render serialized spans (``Span.to_dict`` form) as an indentation
    tree — the same layout as :meth:`Tracer.render_tree`, for offline
    dumps such as ``ChaosReport.spans``."""
    ordered = sorted(spans, key=lambda s: s["span_id"])
    ids = {s["span_id"] for s in ordered}
    children: dict[int | None, list[dict]] = {}
    for span in ordered:
        parent = span["parent_id"] if span["parent_id"] in ids else None
        children.setdefault(parent, []).append(span)
    lines: list[str] = []

    def emit(span: dict, depth: int) -> None:
        end = "…" if span["end"] is None else f"{span['end']:.6f}"
        attrs = " ".join(f"{k}={span['attrs'][k]}" for k in sorted(span["attrs"]))
        lines.append(
            f"{'  ' * depth}[{span['kind']}] {span['name']} "
            f"t={span['start']:.6f}..{end}"
            + (f" {attrs}" if attrs else "")
            + ("" if span["status"] == "ok" else f" status={span['status']}")
        )
        for event in span["events"]:
            event_attrs = event.get("attrs", {})
            rendered = " ".join(
                f"{k}={event_attrs[k]}" for k in sorted(event_attrs)
            )
            lines.append(
                f"{'  ' * (depth + 1)}* {event['name']} t={event['time']:.6f}"
                + (f" {rendered}" if rendered else "")
            )
        for child in children.get(span["span_id"], []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)


class PacketTrace:
    """Frame collector for one sampled packet's data-plane execution.

    The interpreter appends plain tuples (no tracer coupling — the hot
    path must not know about spans); the device runtime folds the frames
    into span events afterwards. Frame shapes:

    * ``("parse", (headers...))`` — one per parse pass
    * ``("table", name, hit, action_or_None)``
    * ``("function", name)``
    * ``("drop",)`` — ``mark_drop`` executed
    * ``("recirculate", n)`` — n-th recirculation beginning
    * ``("digest", program, values)``
    """

    __slots__ = ("frames",)

    def __init__(self):
        self.frames: list[tuple] = []

    def parse(self, headers: tuple[str, ...]) -> None:
        self.frames.append(("parse", headers))

    def table(self, name: str, hit: bool, action: str | None) -> None:
        self.frames.append(("table", name, hit, action))

    def function(self, name: str) -> None:
        self.frames.append(("function", name))

    def drop(self) -> None:
        self.frames.append(("drop",))

    def recirculate(self, n: int) -> None:
        self.frames.append(("recirculate", n))

    def digest(self, program: str, values: tuple[int, ...]) -> None:
        self.frames.append(("digest", program, values))
