"""The FlexNet facade: the library's primary entry point.

Wraps topology construction, the admission pipeline (certify ->
access-control -> compile), the controller, and traffic simulation into
one object so a user can stand up a runtime programmable network in a
few lines::

    net = FlexNet()
    net.add_host("h1"); net.add_smartnic("nic1"); net.add_switch("sw1")
    net.add_host("h2"); net.add_smartnic("nic2")
    net.connect("h1", "nic1"); net.connect("nic1", "sw1")
    net.connect("sw1", "nic2"); net.connect("nic2", "h2")
    net.build_datapath("h1", "h2")
    net.install(program)                  # compile + cold install
    net.update(delta)                     # hitless runtime change
    net.run_traffic(rate_pps=1000, duration_s=2)

Admission: every program or delta entering the network is certified by
the analyzer first (bounded execution / well-behavedness); tenant
extensions additionally pass access-control validation inside the
composer. Rejections raise before any device is touched.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cloud.admission import Ticket

from repro.compiler.plan import CompilationPlan
from repro.control.controller import FlexNetController, TransitionOutcome
from repro.errors import ControlPlaneError, FlexNetError
from repro.lang.analyzer import Certificate, certify
from repro.lang.composition import TenantSpec
from repro.lang.delta import Delta, apply_delta
from repro.lang.ir import Program
from repro.observe import Observer
from repro.runtime.consistency import ConsistencyChecker, ConsistencyLevel
from repro.simulator.metrics import RunMetrics
from repro.simulator.flowgen import TimedPacket, constant_rate
from repro.targets import drmt_switch, fpga, host, rmt_switch, smartnic, tiled_switch
from repro.targets.base import Target

from repro.core.datapath import FungibleDatapath
from repro.core.slo import Slo


class InstallOutcome:
    """Outcome of a cold install (FlexScope-era :meth:`FlexNet.install`).

    Proxies attribute access to the wrapped
    :class:`~repro.compiler.plan.CompilationPlan`, so existing callers
    reading ``plan.placement`` / ``plan.estimated_latency_ns`` keep
    working, while new callers get the unified outcome shape: the
    :class:`~repro.observe.report.Reportable` protocol plus the trace
    span ids when observability is enabled.
    """

    def __init__(
        self,
        plan: CompilationPlan,
        span_id: int | None = None,
        trace_id: int | None = None,
    ):
        self.plan = plan
        self.span_id = span_id
        self.trace_id = trace_id

    def __getattr__(self, name: str):
        return getattr(self.plan, name)

    def summary(self) -> str:
        plan = self.plan
        lines = [
            f"installed {plan.program.name!r} v{plan.program.version}: "
            f"{len(plan.placement)} element(s) on "
            f"{len(set(plan.placement.values()))} device(s), "
            f"~{plan.estimated_latency_ns:.0f} ns/packet"
        ]
        for element in sorted(plan.placement):
            lines.append(f"  {element} -> {plan.placement[element]}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        plan = self.plan
        return {
            "program": plan.program.name,
            "version": plan.program.version,
            "placement": dict(sorted(plan.placement.items())),
            "estimated_latency_ns": round(plan.estimated_latency_ns, 3),
            "estimated_energy_nj": round(plan.estimated_energy_nj, 3),
            "iterations": plan.iterations,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
        }


@dataclass
class TelemetrySnapshot:
    """Telemetry totals at the end of a traffic run (what the deprecated
    ``TrafficReport.digests`` int grew into)."""

    total_digests: int = 0
    total_events: int = 0

    def to_dict(self) -> dict:
        return {"total_digests": self.total_digests, "total_events": self.total_events}


@dataclass
class TrafficReport:
    metrics: RunMetrics
    consistency: ConsistencyChecker | None = None
    telemetry: TelemetrySnapshot = field(default_factory=TelemetrySnapshot)

    @property
    def digests(self) -> int:
        """Deprecated raw digest count; use ``report.telemetry``."""
        warnings.warn(
            "TrafficReport.digests is deprecated; read "
            "report.telemetry.total_digests instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.telemetry.total_digests

    def summary(self) -> str:
        lines = [self.metrics.summary()]
        if self.telemetry.total_digests:
            lines.append(f"digests: {self.telemetry.total_digests}")
        if self.consistency is not None:
            result = self.consistency.report()
            verdict = "ok" if result.holds else "VIOLATED"
            lines.append(
                f"consistency [{result.level.name}]: {verdict} "
                f"({result.violations} violation(s) / {result.packets_checked} checked)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        data = {
            "metrics": self.metrics.to_dict(),
            "telemetry": self.telemetry.to_dict(),
        }
        if self.consistency is not None:
            result = self.consistency.report()
            data["consistency"] = {
                "level": result.level.name,
                "holds": result.holds,
                "packets_checked": result.packets_checked,
                "violations": result.violations,
            }
        return data


@dataclass
class EngineStatus:
    """The fleet-wide execution-engine configuration after
    :meth:`FlexNet.engine` (FlexScope Reportable).

    Per-feature counts rather than booleans: a fleet can be partially
    configured (e.g. batching enabled before new devices were added),
    and the counts make that visible instead of averaging it away.
    """

    devices: int = 0
    fastpath_devices: int = 0
    batch_devices: int = 0
    flow_cache_devices: int = 0
    cache_capacity: int = 0

    @property
    def fastpath(self) -> bool:
        return self.devices > 0 and self.fastpath_devices == self.devices

    @property
    def batch(self) -> bool:
        return self.devices > 0 and self.batch_devices == self.devices

    def summary(self) -> str:
        def state(count: int) -> str:
            if count == self.devices and count > 0:
                return "on"
            return f"on ({count}/{self.devices} device(s))" if count else "off"

        parts = [
            f"fastpath {state(self.fastpath_devices)}",
            f"batch {state(self.batch_devices)}",
            f"flow-cache {state(self.flow_cache_devices)}"
            + (f" cap={self.cache_capacity}" if self.flow_cache_devices else ""),
        ]
        return f"engine [{self.devices} device(s)]: " + ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "devices": self.devices,
            "fastpath": self.fastpath,
            "batch": self.batch,
            "fastpath_devices": self.fastpath_devices,
            "batch_devices": self.batch_devices,
            "flow_cache_devices": self.flow_cache_devices,
            "cache_capacity": self.cache_capacity,
        }


@dataclass
class FlexNet:
    """One runtime programmable network; see module docstring."""

    controller: FlexNetController = field(default_factory=FlexNetController)
    datapath: FungibleDatapath = field(
        default_factory=lambda: FungibleDatapath(name="datapath")
    )
    #: FlexScope façade — ``net.observe.enable()`` wires tracing,
    #: metrics, and profiling through every layer; until then the whole
    #: observation stack stays detached (zero-cost).
    observe: Observer = field(default_factory=Observer)
    #: lazy FlexCloud admission engine (built on first ``net.cloud`` /
    #: ``net.submit`` / tenant call).
    _cloud: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.observe.bind(self.controller)

    # -- topology sugar ------------------------------------------------------

    def add_host(self, name: str, **kwargs) -> None:
        self.controller.add_device(name, host(name, **kwargs))

    def add_smartnic(self, name: str, **kwargs) -> None:
        self.controller.add_device(name, smartnic(name, **kwargs))

    def add_switch(self, name: str, arch: str = "drmt", **kwargs) -> None:
        """``arch``: "drmt" (Spectrum-like), "tiles" (Trident4-like),
        "rmt" (Tofino-like *with* the hypothetical runtime upgrade), or
        "rmt_static" (stock compile-time-only Tofino)."""
        factories = {
            "drmt": drmt_switch,
            "rmt": lambda n, **kw: rmt_switch(n, runtime_capable=True, **kw),
            "rmt_static": lambda n, **kw: rmt_switch(n, runtime_capable=False, **kw),
            "tiles": tiled_switch,
        }
        if arch not in factories:
            raise ControlPlaneError(f"unknown switch architecture {arch!r}")
        self.controller.add_device(name, factories[arch](name, **kwargs))

    def add_fpga(self, name: str, **kwargs) -> None:
        self.controller.add_device(name, fpga(name, **kwargs))

    def add_legacy(self, name: str) -> None:
        """A non-programmable element (forwards, hosts nothing)."""
        self.controller.add_device(name, None)

    def add_custom(self, name: str, target: Target) -> None:
        self.controller.add_device(name, target)

    def connect(self, a: str, b: str, latency_s: float = 1e-6) -> None:
        self.controller.add_link(a, b, latency_s)

    def build_datapath(
        self, source: str, destination: str, slo: Slo | None = None
    ) -> FungibleDatapath:
        self.controller.set_datapath_endpoints(source, destination)
        if slo is not None:
            self.datapath.slo = slo
            self.controller.engine.objective = slo.to_objective()
        self.datapath.source = source
        self.datapath.destination = destination
        return self.datapath

    @classmethod
    def standard(cls, switch_arch: str = "drmt") -> "FlexNet":
        """The canonical 5-hop slice used throughout the examples:
        host - NIC - switch - NIC - host."""
        net = cls()
        net.add_host("h1")
        net.add_smartnic("nic1")
        net.add_switch("sw1", arch=switch_arch)
        net.add_smartnic("nic2")
        net.add_host("h2")
        for a, b in [("h1", "nic1"), ("nic1", "sw1"), ("sw1", "nic2"), ("nic2", "h2")]:
            net.connect(a, b, 2e-6)
        net.build_datapath("h1", "h2")
        return net

    # -- admission + programming -----------------------------------------------

    def admit(self, program: Program, check_placement: bool = False) -> Certificate:
        """Certify a program for admission (raises AnalysisError if it
        cannot be certified or FlexCheck finds blocking issues).

        The analyzer proves the *bounds* (ops, state); FlexCheck proves
        *behaviour* (data flow, lints, and — with ``check_placement`` —
        that the slice can physically host the program at all).
        """
        from repro import analysis
        from repro.errors import AnalysisError

        certificate = certify(program.validate())
        target = self.controller.slice() if check_placement else None
        report = analysis.check(program, target=target, certificate=certificate)
        if not report.ok:
            detail = "; ".join(f"{f.code}: {f.message}" for f in report.errors)
            raise AnalysisError(
                f"program {program.name!r} rejected by FlexCheck: {detail}"
            )
        return certificate

    def check(self, program: Program | None = None, delta: Delta | None = None):
        """Run FlexCheck against a program (default: the live one) and
        return the full :class:`~repro.analysis.report.Report` without
        raising — the introspection counterpart of :meth:`admit`."""
        from repro import analysis

        subject = program if program is not None else self.controller.program
        try:
            target = self.controller.slice()
        except ControlPlaneError:
            target = None
        return analysis.check(subject, delta=delta, target=target)

    def vet(self, program: Program | None = None):
        """Run FlexVet against a program (default: the live one) and
        return its :class:`~repro.analysis.vet.VetReport` — the static
        parallelism classification (stateless / per-flow / cross-flow,
        batch safety, shard affinity) the FlexScale partitioner and the
        batched backend consult before forking any work."""
        from repro import analysis

        subject = program if program is not None else self.controller.program
        if subject is None:
            raise ControlPlaneError("no program installed to vet")
        return analysis.vet(subject)

    def install(self, program: Program) -> InstallOutcome:
        """Admit and cold-install the infrastructure program.

        Returns an :class:`InstallOutcome` (which proxies the underlying
        :class:`~repro.compiler.plan.CompilationPlan`, so plan-reading
        callers are unaffected)."""
        span = None
        tracer = self.observe.tracer if self.observe.enabled else None
        if tracer is not None:
            span = tracer.start_span(
                "install",
                "install",
                self.loop.now,
                program=program.name,
                version=program.version,
            )
            tracer._stack.append(span)
        try:
            with self.observe.profiler.phase("install") if self.observe.enabled else nullcontext():
                self.admit(program, check_placement=True)
                plan = self.controller.install_infrastructure(program)
        except FlexNetError:
            if tracer is not None:
                tracer._stack.pop()
                tracer.end_span(span, self.loop.now, status="error")
            raise
        if tracer is not None:
            tracer._stack.pop()
            tracer.end_span(span, self.loop.now)
        self.datapath.program = self.controller.program
        self.datapath.plan = plan
        self.datapath.certificate = plan.certificate
        return InstallOutcome(
            plan,
            span_id=span.span_id if span is not None else None,
            trace_id=span.span_id if span is not None else None,
        )

    def update(
        self,
        delta: Delta,
        *,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
        strict: bool = False,
    ) -> TransitionOutcome:
        """Apply a runtime delta hitlessly.

        FlexCheck's race pass runs on every update: hazardous deltas are
        forced through the two-phase consistent path (the outcome reports
        ``forced_two_phase``), or rejected outright with ``strict=True``.
        ``consistency`` and ``strict`` are keyword-only.
        """
        new_program, changes = apply_delta(self.controller.program, delta)
        self.admit(new_program)
        outcome = self.controller.transition_to(
            new_program, changes, consistency, strict_analysis=strict
        )
        self._refresh()
        return outcome

    # -- FlexCloud: the unified tenant submission path -----------------------------

    @property
    def cloud(self):
        """The FlexCloud admission engine over this network's controller.

        Every tenant operation funnels through it — :meth:`submit` for
        asynchronous churn, :meth:`admit_tenant` / :meth:`evict_tenant`
        as synchronous wrappers — so there is exactly one admission
        path: queue → SLA backpressure → coalesce → one reconfiguration
        window per scheduling round.
        """
        if self._cloud is None:
            from repro.cloud.admission import CloudEngine, ExtensionExecutor

            executor = ExtensionExecutor(self.controller, on_applied=self._refresh)
            self._cloud = CloudEngine(
                executor,
                clock=lambda: self.loop.now,
                observer=self.observe if self.observe.enabled else None,
            )
        return self._cloud

    def submit(self, delta) -> "Ticket":
        """Enqueue one tenant churn operation (admit/evict/update)
        asynchronously and return its :class:`~repro.cloud.admission.Ticket`.

        The ticket resolves when a scheduling round drains it —
        ``net.cloud.drain_round()`` (or ``drain_until_idle()``) steps
        the rounds; ``net.cloud.start(net.loop)`` runs them on the event
        loop. Compatible queued deltas coalesce into a single
        reconfiguration window.
        """
        return self.cloud.submit(delta)

    def _resolve(self, ticket) -> TransitionOutcome:
        """Drain the queue until the ticket terminates, then translate
        its terminal state back into the synchronous calling convention:
        the outcome object on success, the original exception on
        failure, backpressure as ControlPlaneError."""
        self.cloud.drain_until_idle()
        if ticket.error is not None:
            raise ticket.error
        if ticket.state == "shed":
            reason = ticket.outcome.reason.value if ticket.outcome else "shed"
            raise ControlPlaneError(
                f"admission shed for tenant {ticket.delta.tenant!r}: {reason}"
            )
        if not ticket.done or ticket.result is None:
            raise ControlPlaneError(
                f"admission for tenant {ticket.delta.tenant!r} did not resolve "
                f"(state {ticket.state!r})"
            )
        return ticket.result

    def admit_tenant(
        self,
        tenant: TenantSpec,
        extension: Program,
        *,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
    ) -> TransitionOutcome:
        """Admit a tenant extension synchronously.

        Thin wrapper over :meth:`submit` + an immediate drain — the same
        queue, coalescer, and backpressure the asynchronous path uses.
        """
        from repro.cloud.admission import TenantDelta

        ticket = self.submit(
            TenantDelta(
                kind="admit",
                tenant=tenant.name,
                sla_class="gold",
                spec=tenant,
                extension=extension,
                consistency=consistency,
            )
        )
        return self._resolve(ticket)

    def evict_tenant(
        self,
        name: str,
        *,
        consistency: ConsistencyLevel = ConsistencyLevel.PER_PACKET_PER_DEVICE,
    ) -> TransitionOutcome:
        """Evict a tenant synchronously (wrapper over :meth:`submit`)."""
        from repro.cloud.admission import TenantDelta

        ticket = self.submit(
            TenantDelta(
                kind="evict", tenant=name, sla_class="gold", consistency=consistency
            )
        )
        return self._resolve(ticket)

    def _refresh(self) -> None:
        self.datapath.program = self.controller.program
        self.datapath.plan = self.controller.plan
        self.datapath.certificate = self.controller.plan.certificate

    # -- traffic ------------------------------------------------------------------

    def run_traffic(
        self,
        rate_pps: float = 1000.0,
        duration_s: float = 1.0,
        packets: list[TimedPacket] | None = None,
        consistency_level: ConsistencyLevel | None = None,
        collect_digests: bool = True,
        extra_time_s: float = 1.0,
    ) -> TrafficReport:
        """Inject traffic over the datapath and drain the event loop.

        Custom workloads pass ``packets``; otherwise a constant-rate
        flow is generated. Any updates scheduled on the controller's
        loop run interleaved with the traffic.
        """
        metrics = RunMetrics()
        checker = (
            ConsistencyChecker(consistency_level) if consistency_level is not None else None
        )

        def on_done(packet) -> None:
            if checker is not None:
                checker.observe(packet)
            if collect_digests:
                self.controller.telemetry.ingest_packet(packet, self.controller.loop.now)

        workload = packets if packets is not None else list(
            constant_rate(rate_pps, duration_s, start_s=self.controller.loop.now)
        )
        last = self.controller.loop.now
        for timed in workload:
            self.controller.network.inject(
                timed.packet, "datapath", timed.time, metrics, on_done=on_done
            )
            last = max(last, timed.time)
        self.controller.loop.run_until(last + extra_time_s)
        return TrafficReport(
            metrics=metrics,
            consistency=checker,
            telemetry=TelemetrySnapshot(
                total_digests=self.controller.telemetry.total_digests,
                total_events=self.controller.telemetry.total_events,
            ),
        )

    def scale(
        self,
        shards: int = 2,
        *,
        backend: str = "process",
        rate_pps: float = 1000.0,
        duration_s: float = 1.0,
        packets: list[TimedPacket] | None = None,
        seed: int = 2024,
        drain_s: float = 1.0,
        colocate_below_s: float | None = None,
        chaos=None,
        checkpoint_every: int | None = None,
        batch: bool = False,
    ):
        """Run traffic sharded across worker processes (FlexScale).

        Partitions the fabric with :func:`repro.scale.plan.plan_shards`
        (vet-gated placement) and drives the conservative lookahead
        protocol; the returned
        :class:`~repro.scale.runner.ScaleReport`'s ``traffic`` section
        is byte-identical to what :meth:`run_traffic` reports for the
        same workload. Like ``run_traffic`` this mutates device state.

        ``chaos`` (a :class:`~repro.faults.plan.FaultPlan` with
        FlexMend worker-fault specs) injects worker-process crashes,
        stalls, and handoff drops/dups into the process backend; the
        supervisor absorbs them via windowed checkpoints and the
        traffic section stays byte-identical regardless.
        ``checkpoint_every`` overrides the checkpoint cadence in
        protocol rounds (default: on when chaos is armed, off
        otherwise; ``0`` forces off).

        ``batch=True`` (deprecated — call ``net.engine(batch=True)``
        before ``scale()``) turns on FlexBatch before sharding: every worker
        inherits batching-enabled devices, and each
        :class:`~repro.scale.shard.ShardEngine` flushes batch state at
        its window boundaries (batching amortizes within a window, never
        across one), so byte-identity is preserved.
        """
        from repro.scale.runner import run_sharded

        if batch:
            warnings.warn(
                "scale(batch=True) is deprecated; call net.engine(batch=True) "
                "before net.scale()",
                DeprecationWarning,
                stacklevel=2,
            )
            self.engine(batch=True)
        workload = packets if packets is not None else list(
            constant_rate(rate_pps, duration_s, start_s=self.controller.loop.now)
        )
        return run_sharded(
            self,
            workload,
            shards,
            backend=backend,
            seed=seed,
            drain_s=drain_s,
            colocate_below_s=colocate_below_s,
            chaos=chaos,
            checkpoint_every=checkpoint_every,
        )

    # -- convenience passthroughs ----------------------------------------------------

    @property
    def loop(self):
        return self.controller.loop

    @property
    def program(self) -> Program:
        return self.controller.program

    def export_program(self) -> str:
        """The live composed program as normalized FlexBPF source —
        what an operator reviews after a chain of runtime changes."""
        from repro.lang.printer import print_program

        return print_program(self.controller.program)

    def device(self, name: str):
        return self.controller.devices[name]

    # -- execution engine ----------------------------------------------------------

    def engine(
        self,
        *,
        fastpath: bool | None = None,
        batch: bool | None = None,
        flow_cache: bool | None = None,
        cache_capacity: int | None = None,
    ) -> EngineStatus:
        """Configure the fleet's execution engine in one call.

        All arguments are keyword-only; ``None`` leaves that dimension
        untouched, so ``net.engine()`` is a pure status read. This is
        the successor to ``enable_fastpath()`` / ``enable_batching()`` /
        ``scale(batch=...)`` — one verb, one
        :class:`EngineStatus` answer.

        ``fastpath=True`` turns on FlexPath compiled execution (plus the
        flow micro-cache unless ``flow_cache=False``; ``cache_capacity``
        sizes it); ``fastpath=False`` reverts to interpreted execution.
        ``batch=True`` turns on FlexBatch (implying FlexPath) — programs
        the FlexVet gate refuses simply fall back per packet, so this is
        always safe. ``batch=False`` disables batching but leaves
        FlexPath as-is.
        """
        want_cache = True if flow_cache is None else flow_cache
        capacity = 4096 if cache_capacity is None else cache_capacity
        for device in self.controller.devices.values():
            if fastpath is not None:
                device.enable_fastpath(
                    flow_cache=want_cache, cache_capacity=capacity, enabled=fastpath
                )
            if batch is not None:
                device.enable_batching(batch)
        status = EngineStatus(devices=len(self.controller.devices))
        for device in self.controller.devices.values():
            state = device.engine_status()
            status.fastpath_devices += 1 if state["fastpath"] else 0
            status.batch_devices += 1 if state["batch"] else 0
            status.flow_cache_devices += 1 if state["flow_cache"] else 0
            status.cache_capacity = max(status.cache_capacity, state["cache_capacity"])
        return status

    def enable_fastpath(self, flow_cache: bool = True, cache_capacity: int = 4096) -> None:
        """Deprecated: use :meth:`engine` (``net.engine(fastpath=True)``)."""
        warnings.warn(
            "FlexNet.enable_fastpath() is deprecated; use "
            "net.engine(fastpath=True, flow_cache=..., cache_capacity=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.engine(fastpath=True, flow_cache=flow_cache, cache_capacity=cache_capacity)

    def enable_batching(self, enabled: bool = True) -> None:
        """Deprecated: use :meth:`engine` (``net.engine(batch=True)``)."""
        warnings.warn(
            "FlexNet.enable_batching() is deprecated; use net.engine(batch=True)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.engine(batch=enabled)

    def schedule(self, at_s: float, callback) -> None:
        self.controller.loop.schedule_at(at_s, callback)
