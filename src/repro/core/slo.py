"""Service-level objectives for fungible datapaths.

The shape and size of a datapath's physical slice are "regulated by the
network control policies and the negotiated SLAs" (§3.1), and the
compiler "must take performance SLA into consideration" (§3.3). An
:class:`Slo` captures the negotiated targets and converts to the
compiler's :class:`~repro.compiler.placement.Objective`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.placement import Objective, ObjectiveKind


@dataclass(frozen=True)
class Slo:
    """Negotiated targets for one datapath."""

    #: hard per-packet latency ceiling across the slice (ns); None = best effort.
    max_latency_ns: float | None = None
    #: optimize for energy when True (consolidate, prefer efficient tiers).
    prefer_energy: bool = False
    #: minimum sustained throughput the slice must support (Mpps).
    min_throughput_mpps: float | None = None

    def to_objective(self) -> Objective:
        if self.prefer_energy:
            return Objective(kind=ObjectiveKind.ENERGY, latency_sla_ns=self.max_latency_ns)
        if self.max_latency_ns is not None:
            return Objective(kind=ObjectiveKind.LATENCY, latency_sla_ns=self.max_latency_ns)
        return Objective(kind=ObjectiveKind.BALANCED)


BEST_EFFORT = Slo()
