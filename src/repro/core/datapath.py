"""The fungible datapath abstraction (§3.1).

"We call this abstraction a 'fungible datapath', which logically models
a whole-stack network device ... Under the hood, it is implemented on a
physical slice of the end-to-end network. ... Within a fungible
datapath, program components may freely migrate and elastically scale
in and out on different physical devices."

A :class:`FungibleDatapath` is the programmer-facing handle: one
logical device, programmed as a whole (a FlexBPF program plus runtime
deltas), with the controller deciding which physical devices run which
components. It exposes *logical* operations; every physical concern
(placement, encodings, transition windows) is reported, not requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.plan import CompilationPlan
from repro.errors import ControlPlaneError
from repro.lang.analyzer import Certificate
from repro.lang.ir import Program

from repro.core.slo import BEST_EFFORT, Slo


@dataclass
class DatapathStatus:
    """A point-in-time physical view of the logical datapath."""

    program_name: str
    program_version: int
    devices: list[str]
    placement: dict[str, str]
    estimated_latency_ns: float
    estimated_energy_nj: float
    encodings: dict[str, str]


@dataclass
class FungibleDatapath:
    """One logical whole-stack device over a physical slice."""

    name: str
    owner: str = "infrastructure"
    slo: Slo = field(default_factory=lambda: BEST_EFFORT)
    program: Program | None = None
    certificate: Certificate | None = None
    plan: CompilationPlan | None = None
    #: endpoints whose connecting path is this datapath's slice.
    source: str = ""
    destination: str = ""

    def require_plan(self) -> CompilationPlan:
        if self.plan is None:
            raise ControlPlaneError(f"datapath {self.name!r} is not compiled")
        return self.plan

    def status(self) -> DatapathStatus:
        plan = self.require_plan()
        return DatapathStatus(
            program_name=plan.program.name,
            program_version=plan.program.version,
            devices=plan.devices_used,
            placement=dict(plan.placement),
            estimated_latency_ns=plan.estimated_latency_ns,
            estimated_energy_nj=plan.estimated_energy_nj,
            encodings={m: e.value for m, e in plan.encodings.items()},
        )

    def components_on(self, device: str) -> list[str]:
        return self.require_plan().elements_on(device)

    def device_of(self, component: str) -> str:
        return self.require_plan().device_of(component)
