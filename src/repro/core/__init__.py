"""FlexNet core: the fungible datapath and the network facade."""

from repro.core.datapath import DatapathStatus, FungibleDatapath
from repro.core.flexnet import FlexNet, InstallOutcome, TelemetrySnapshot, TrafficReport
from repro.core.slo import BEST_EFFORT, Slo

__all__ = [
    "BEST_EFFORT",
    "DatapathStatus",
    "FlexNet",
    "FungibleDatapath",
    "InstallOutcome",
    "Slo",
    "TelemetrySnapshot",
    "TrafficReport",
]
