"""Compilation artifacts: device specs, placements, and reconfig plans.

The compiler consumes a *network slice* — an ordered list of
:class:`DeviceSpec` along the traffic path (host → NIC → switches → NIC
→ host) — and produces a :class:`CompilationPlan` mapping every
placeable program element onto a device, together with per-map state
encodings, RMT stage assignments, and the plan's estimated latency and
energy.

Incremental recompilation (§3.3) produces a :class:`ReconfigPlan`: the
ordered list of device-level steps (add/remove/move) that transforms
the currently deployed plan into the new one, with a virtual-time cost
estimate derived from each device's reconfiguration cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CompilationError
from repro.lang.analyzer import Certificate
from repro.lang.ir import Program
from repro.targets.base import StateEncoding, Target
from repro.targets.resources import ResourceVector


@dataclass
class DeviceSpec:
    """A placement-visible device: its target model plus resources already
    committed to other datapaths."""

    name: str
    target: Target
    used: ResourceVector = field(default_factory=ResourceVector)
    #: Latency of the link from the previous device on the slice path (ns).
    ingress_link_ns: float = 1000.0

    @property
    def free(self) -> ResourceVector:
        return self.target.capacity - self.used

    def headroom(self, demand: ResourceVector) -> bool:
        return demand.fits_within(self.free)


@dataclass(frozen=True)
class StagePlan:
    """RMT-only: element -> pipeline stage assignment."""

    assignments: dict[str, int]

    @property
    def stages_used(self) -> int:
        return max(self.assignments.values(), default=-1) + 1


@dataclass
class CompilationPlan:
    """The compiler's output for one fungible datapath."""

    program: Program
    certificate: Certificate
    #: element name -> device name.
    placement: dict[str, str]
    #: map name -> (device name -> chosen physical encoding).
    encodings: dict[str, StateEncoding]
    #: device name -> per-device demand actually charged.
    device_demand: dict[str, ResourceVector]
    #: device name -> RMT stage plan (only for RMT devices).
    stage_plans: dict[str, StagePlan] = field(default_factory=dict)
    #: estimated end-to-end per-packet latency over the slice (ns).
    estimated_latency_ns: float = 0.0
    #: estimated per-packet dynamic energy (nJ).
    estimated_energy_nj: float = 0.0
    #: estimated idle power of powered-on devices (W).
    estimated_idle_power_w: float = 0.0
    #: how many compile iterations (incl. GC rounds) were needed.
    iterations: int = 1
    #: diagnostic notes accumulated during compilation.
    notes: list[str] = field(default_factory=list)

    def elements_on(self, device_name: str) -> list[str]:
        return sorted(e for e, d in self.placement.items() if d == device_name)

    def device_of(self, element: str) -> str:
        if element not in self.placement:
            raise CompilationError(f"element {element!r} is not placed")
        return self.placement[element]

    @property
    def devices_used(self) -> list[str]:
        return sorted(set(self.placement.values()))


class StepKind(enum.Enum):
    ADD = "add"
    REMOVE = "remove"
    MOVE = "move"
    PARSER = "parser"
    RETIER = "retier"  # encoding conversion during a cross-arch move


@dataclass(frozen=True)
class ReconfigStep:
    """One device-level runtime change."""

    kind: StepKind
    element: str
    device: str
    #: For MOVE: the device the element leaves.
    source_device: str | None = None
    #: Whether durable state must travel with the element.
    carries_state: bool = False
    #: Virtual-time cost of this step on its device (seconds).
    cost_s: float = 0.0


@dataclass
class ReconfigPlan:
    """An ordered runtime transition between two compilation plans.

    ``moved_elements`` counts elements that change device — the quantity
    "maximally adjacent reconfigurations" minimizes; ``total_cost_s``
    is the virtual-time the transition occupies (steps on distinct
    devices run concurrently; see :meth:`makespan_s`).
    """

    steps: list[ReconfigStep]
    old_version: int
    new_version: int

    @property
    def moved_elements(self) -> int:
        return sum(1 for s in self.steps if s.kind is StepKind.MOVE)

    @property
    def added_elements(self) -> int:
        return sum(1 for s in self.steps if s.kind is StepKind.ADD)

    @property
    def removed_elements(self) -> int:
        return sum(1 for s in self.steps if s.kind is StepKind.REMOVE)

    @property
    def total_cost_s(self) -> float:
        return sum(s.cost_s for s in self.steps)

    def makespan_s(self) -> float:
        """Transition wall time assuming per-device serial execution and
        cross-device parallelism (a MOVE charges both devices)."""
        per_device: dict[str, float] = {}
        for step in self.steps:
            per_device[step.device] = per_device.get(step.device, 0.0) + step.cost_s
            if step.source_device is not None:
                per_device[step.source_device] = (
                    per_device.get(step.source_device, 0.0) + step.cost_s * 0.5
                )
        return max(per_device.values(), default=0.0)

    def is_empty(self) -> bool:
        return not self.steps
