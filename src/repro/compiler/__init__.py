"""The FlexNet compiler: placement, fungibility, optimization, and
incremental recompilation of fungible datapaths (§3.3)."""

from repro.compiler.incremental import (
    IncrementalCompiler,
    IncrementalResult,
    diff_programs,
    full_recompile_plan,
)
from repro.compiler.optimizer import MergeCandidate, MergeEvaluation, TableMerger, refine
from repro.compiler.placement import (
    NetworkSlice,
    Objective,
    ObjectiveKind,
    PlacementEngine,
)
from repro.compiler.plan import (
    CompilationPlan,
    DeviceSpec,
    ReconfigPlan,
    ReconfigStep,
    StagePlan,
    StepKind,
)
from repro.compiler.state_encoding import convert, decode, encode, select_encoding

__all__ = [
    "CompilationPlan",
    "DeviceSpec",
    "IncrementalCompiler",
    "IncrementalResult",
    "MergeCandidate",
    "MergeEvaluation",
    "NetworkSlice",
    "Objective",
    "ObjectiveKind",
    "PlacementEngine",
    "ReconfigPlan",
    "ReconfigStep",
    "StagePlan",
    "StepKind",
    "TableMerger",
    "convert",
    "decode",
    "diff_programs",
    "encode",
    "full_recompile_plan",
    "refine",
    "select_encoding",
]
