"""Performance/energy optimizations over fungible resources (§3.3).

Two optimizations the paper names explicitly:

* **Table merging** — "Merging two match/action tables ... will lead to
  increased memory usage due to a table cross product, but it saves one
  table lookup time and reduces latency." :class:`TableMerger` finds
  merge candidates (consecutively applied, exact-match, conflict-free
  tables), evaluates the memory-vs-latency trade under a given target,
  and can rewrite the program with the merged table and composite
  actions.

* **Objective re-optimization** — :func:`refine` performs local search
  over an existing plan, moving one co-location cluster at a time to a
  different feasible device whenever it improves the plan's weighted
  latency/energy score. This is the "shuffle resources around and
  optimize for the current workload" loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CompilationError, PlacementError
from repro.lang import ir
from repro.lang.analyzer import Certificate, certify
from repro.targets.base import Target

from repro.compiler.placement import NetworkSlice, Objective, ObjectiveKind, PlacementEngine
from repro.compiler.plan import CompilationPlan


# ---------------------------------------------------------------------------
# Table merging
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MergeCandidate:
    first: str
    second: str


@dataclass(frozen=True)
class MergeEvaluation:
    """The cross-product trade for one candidate on one target."""

    candidate: MergeCandidate
    entries_before: int
    entries_after: int  # size1 * size2 (cross product)
    memory_before_kb: float
    memory_after_kb: float
    latency_before_ns: float
    latency_after_ns: float

    @property
    def memory_growth(self) -> float:
        if self.memory_before_kb == 0:
            return float("inf")
        return self.memory_after_kb / self.memory_before_kb

    @property
    def latency_saving_ns(self) -> float:
        return self.latency_before_ns - self.latency_after_ns

    @property
    def worthwhile(self) -> bool:
        return self.latency_saving_ns > 0


class TableMerger:
    """Finds, evaluates, and applies match/action table merges."""

    def candidates(self, program: ir.Program) -> list[MergeCandidate]:
        """Pairs of tables applied back-to-back at top level, both
        exact-match (cross products over ternary entries explode in both
        dimensions and are never worthwhile on the modelled targets)."""
        found: list[MergeCandidate] = []
        steps = program.apply
        for first_step, second_step in zip(steps, steps[1:]):
            if not (
                isinstance(first_step, ir.ApplyTable) and isinstance(second_step, ir.ApplyTable)
            ):
                continue
            first = program.table(first_step.table)
            second = program.table(second_step.table)
            if first.is_ternary or second.is_ternary or first.is_lpm or second.is_lpm:
                continue
            if self._tables_conflict(program, first, second):
                continue
            found.append(MergeCandidate(first=first.name, second=second.name))
        return found

    def _tables_conflict(
        self, program: ir.Program, first: ir.TableDef, second: ir.TableDef
    ) -> bool:
        """A merge is illegal when the first table's actions write fields
        the second table matches on (the combined lookup would read
        pre-modification values)."""
        written: set[str] = set()
        for action_name in first.actions:
            for stmt in program.action(action_name).body:
                if isinstance(stmt, ir.Assign) and isinstance(stmt.target, ir.FieldRef):
                    written.add(str(stmt.target))
        matched = {str(key.field) for key in second.keys}
        return bool(written & matched)

    def evaluate(
        self, program: ir.Program, candidate: MergeCandidate, target: Target
    ) -> MergeEvaluation:
        first = program.table(candidate.first)
        second = program.table(candidate.second)
        key_bits_first = program.table_key_bits(first)
        key_bits_second = program.table_key_bits(second)
        overhead = 32

        entries_before = first.size + second.size
        entries_after = first.size * second.size
        memory_before_kb = (
            first.size * (key_bits_first + overhead) + second.size * (key_bits_second + overhead)
        ) / 8.0 / 1024.0
        memory_after_kb = (
            entries_after * (key_bits_first + key_bits_second + overhead) / 8.0 / 1024.0
        )
        per_op = target.performance.per_op_ns
        # Each table apply costs one lookup op plus its worst action; the
        # merge eliminates exactly one lookup.
        latency_before_ns = 2 * per_op
        latency_after_ns = 1 * per_op
        return MergeEvaluation(
            candidate=candidate,
            entries_before=entries_before,
            entries_after=entries_after,
            memory_before_kb=memory_before_kb,
            memory_after_kb=memory_after_kb,
            latency_before_ns=latency_before_ns,
            latency_after_ns=latency_after_ns,
        )

    def apply(self, program: ir.Program, candidate: MergeCandidate) -> ir.Program:
        """Rewrite the program with ``first`` and ``second`` merged.

        The merged table matches the union of both key sets and its
        actions are composite pairs ``a__then__b`` with concatenated
        bodies (parameters are prefixed to avoid capture).
        """
        first = program.table(candidate.first)
        second = program.table(candidate.second)
        merged_name = f"{first.name}__x__{second.name}"
        if program.has_table(merged_name):
            raise CompilationError(f"merge target {merged_name!r} already exists")

        composite_actions: list[ir.ActionDef] = []
        composite_names: list[str] = []
        for first_action_name in first.actions:
            for second_action_name in second.actions:
                first_action = program.action(first_action_name)
                second_action = program.action(second_action_name)
                name = f"{first_action_name}__then__{second_action_name}"
                params = tuple(
                    (f"a_{p}", t) for p, t in first_action.params
                ) + tuple((f"b_{p}", t) for p, t in second_action.params)
                body = tuple(_rename_params(first_action.body, "a_")) + tuple(
                    _rename_params(second_action.body, "b_")
                )
                composite_actions.append(ir.ActionDef(name=name, params=params, body=body))
                composite_names.append(name)

        default = None
        if first.default_action is not None and second.default_action is not None:
            default = ir.ActionCall(
                action=(
                    f"{first.default_action.action}__then__{second.default_action.action}"
                ),
                args=first.default_action.args + second.default_action.args,
            )

        merged = ir.TableDef(
            name=merged_name,
            keys=first.keys + second.keys,
            actions=tuple(composite_names),
            size=first.size * second.size,
            default_action=default,
        )

        tables = tuple(
            t for t in program.tables if t.name not in (first.name, second.name)
        ) + (merged,)
        actions = program.actions + tuple(composite_actions)
        new_apply = _replace_pair_in_apply(program.apply, first.name, second.name, merged_name)
        return replace(
            program, tables=tables, actions=actions, apply=new_apply
        ).bump_version().validate()


def _rename_params(body: tuple[ir.Stmt, ...], prefix: str) -> list[ir.Stmt]:
    def rename_expr(expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.VarRef):
            return ir.VarRef(name=prefix + expr.name)
        if isinstance(expr, ir.BinOp):
            return ir.BinOp(kind=expr.kind, left=rename_expr(expr.left), right=rename_expr(expr.right))
        if isinstance(expr, ir.UnOp):
            return ir.UnOp(op=expr.op, operand=rename_expr(expr.operand))
        if isinstance(expr, ir.MapGet):
            return ir.MapGet(map_name=expr.map_name, key=tuple(rename_expr(k) for k in expr.key))
        if isinstance(expr, ir.HashExpr):
            return ir.HashExpr(args=tuple(rename_expr(a) for a in expr.args), modulus=expr.modulus)
        return expr

    renamed: list[ir.Stmt] = []
    for stmt in body:
        if isinstance(stmt, ir.Assign):
            target = stmt.target
            if isinstance(target, ir.VarRef):
                target = ir.VarRef(name=prefix + target.name)
            renamed.append(ir.Assign(target=target, value=rename_expr(stmt.value)))
        elif isinstance(stmt, ir.PrimitiveCall):
            renamed.append(
                ir.PrimitiveCall(name=stmt.name, args=tuple(rename_expr(a) for a in stmt.args))
            )
        elif isinstance(stmt, ir.MapPut):
            renamed.append(
                ir.MapPut(
                    map_name=stmt.map_name,
                    key=tuple(rename_expr(k) for k in stmt.key),
                    value=rename_expr(stmt.value),
                )
            )
        elif isinstance(stmt, ir.MapDelete):
            renamed.append(
                ir.MapDelete(map_name=stmt.map_name, key=tuple(rename_expr(k) for k in stmt.key))
            )
        else:
            renamed.append(stmt)
    return renamed


def _replace_pair_in_apply(
    steps: tuple[ir.ApplyStep, ...], first: str, second: str, merged: str
) -> tuple[ir.ApplyStep, ...]:
    result: list[ir.ApplyStep] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        next_step = steps[index + 1] if index + 1 < len(steps) else None
        if (
            isinstance(step, ir.ApplyTable)
            and step.table == first
            and isinstance(next_step, ir.ApplyTable)
            and next_step.table == second
        ):
            result.append(ir.ApplyTable(table=merged))
            index += 2
            continue
        result.append(step)
        index += 1
    return tuple(result)


# ---------------------------------------------------------------------------
# Plan refinement (local search)
# ---------------------------------------------------------------------------


def plan_score(plan: CompilationPlan, objective: Objective) -> float:
    """Scalar score of a plan under an objective (lower is better)."""
    if objective.kind is ObjectiveKind.LATENCY:
        return plan.estimated_latency_ns
    if objective.kind is ObjectiveKind.ENERGY:
        return plan.estimated_energy_nj + plan.estimated_idle_power_w * objective.activation_weight
    return plan.estimated_latency_ns + plan.estimated_energy_nj


def refine(
    plan: CompilationPlan,
    network_slice: NetworkSlice,
    objective: Objective,
    max_rounds: int = 4,
) -> CompilationPlan:
    """Local search: recompile under the objective with pins relaxed one
    cluster at a time, keeping any strictly improving plan."""
    engine = PlacementEngine(objective)
    certificate = plan.certificate
    best = plan
    best_score = plan_score(plan, objective)
    element_names = list(plan.placement)

    for _ in range(max_rounds):
        improved = False
        for relaxed in element_names:
            pins = {e: d for e, d in best.placement.items() if e != relaxed}
            try:
                candidate = engine.compile(
                    best.program, certificate, network_slice, pinned=pins, max_iterations=1
                )
            except PlacementError:
                # Relaxing this element made placement infeasible; keep
                # the pin and move on. Anything else (a genuine engine
                # bug) must propagate, not be eaten by the search loop.
                continue
            score = plan_score(candidate, objective)
            if score < best_score - 1e-9:
                best, best_score = candidate, score
                improved = True
        if not improved:
            break
    return best


def recertify(program: ir.Program) -> Certificate:
    """Re-run certification after a program rewrite (merges, deltas)."""
    return certify(program)
