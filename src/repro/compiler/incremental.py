"""Incremental recompilation (§3.3): maximally adjacent reconfigurations.

Given the currently deployed :class:`CompilationPlan` and a new program
version (usually produced by a delta), compute:

1. a new plan that keeps unchanged elements **pinned** to their current
   devices whenever still feasible, and
2. the :class:`ReconfigPlan` — the ordered device-level steps (add,
   remove, move, parser change) that transform the network from the old
   plan to the new one, each step costed from its device's runtime
   reconfiguration model.

"Maximally adjacent" means minimizing moved elements: a move both costs
reconfiguration time on two devices and forces state migration for
stateful elements. :func:`full_recompile_plan` computes the naive
alternative (recompile from scratch, diff the placements) that
experiment E7 compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.analyzer import Certificate, certify
from repro.lang.delta import ChangeSet
from repro.lang.ir import Program

from repro.compiler.placement import NetworkSlice, PlacementEngine
from repro.compiler.plan import CompilationPlan, ReconfigPlan, ReconfigStep, StepKind


def diff_programs(old: Program, new: Program) -> ChangeSet:
    """Structural diff between two program versions.

    Elements are compared by name and definition equality; used when a
    new version arrives without an accompanying delta ChangeSet.
    """
    old_elements = _element_table(old)
    new_elements = _element_table(new)
    added = frozenset(new_elements) - frozenset(old_elements)
    removed = frozenset(old_elements) - frozenset(new_elements)
    modified = frozenset(
        name
        for name in set(old_elements) & set(new_elements)
        if old_elements[name] != new_elements[name]
    )
    apply_changed = old.apply != new.apply or old.parser != new.parser
    return ChangeSet(
        added=added, removed=removed, modified=modified, apply_changed=apply_changed
    )


def _element_table(program: Program) -> dict[str, object]:
    table: dict[str, object] = {}
    for element in (*program.tables, *program.functions, *program.maps):
        table[element.name] = element
    return table


@dataclass
class IncrementalResult:
    new_plan: CompilationPlan
    reconfig: ReconfigPlan
    changes: ChangeSet


class IncrementalCompiler:
    """Plans minimal runtime transitions between program versions."""

    def __init__(self, engine: PlacementEngine | None = None):
        self._engine = engine or PlacementEngine()

    def recompile(
        self,
        old_plan: CompilationPlan,
        new_program: Program,
        network_slice: NetworkSlice,
        changes: ChangeSet | None = None,
        certificate: Certificate | None = None,
    ) -> IncrementalResult:
        """Compute the maximally-adjacent new plan and its reconfig steps."""
        certificate = certificate or certify(new_program)
        changes = changes or diff_programs(old_plan.program, new_program)

        survivors = {
            element: device
            for element, device in old_plan.placement.items()
            if element not in changes.removed and element not in changes.added
        }
        new_plan = self._engine.compile(
            new_program,
            certificate,
            network_slice,
            pinned=survivors,
        )
        reconfig = self.transition(old_plan, new_plan, network_slice, changes)
        return IncrementalResult(new_plan=new_plan, reconfig=reconfig, changes=changes)

    def transition(
        self,
        old_plan: CompilationPlan,
        new_plan: CompilationPlan,
        network_slice: NetworkSlice,
        changes: ChangeSet | None = None,
    ) -> ReconfigPlan:
        """Diff two plans into ordered, costed reconfiguration steps.

        Step order follows make-before-break: additions and moves land
        the new element before removals retire the old one, so traffic
        always has a complete program version to run against.
        """
        changes = changes or diff_programs(old_plan.program, new_plan.program)
        steps: list[ReconfigStep] = []

        def cost_of(kind: StepKind, element: str, device_name: str) -> float:
            target = network_slice.device(device_name).target
            profile = None
            if element in new_plan.certificate.profiles:
                profile = new_plan.certificate.profile(element)
            elif element in old_plan.certificate.profiles:
                profile = old_plan.certificate.profile(element)
            model = target.reconfig
            base = 0.0 if model.hitless else model.drain_s + model.redeploy_s
            if kind is StepKind.ADD:
                if profile is not None and profile.kind == "function":
                    return base + model.function_reload_s
                return base + model.add_table_s
            if kind is StepKind.REMOVE:
                return base + model.remove_table_s
            if kind is StepKind.PARSER:
                return base + model.parser_change_s
            return base + model.add_table_s  # MOVE charged per landing device

        # Additions (new elements).
        for element in sorted(changes.added):
            if element not in new_plan.placement:
                continue
            device = new_plan.placement[element]
            steps.append(
                ReconfigStep(
                    kind=StepKind.ADD,
                    element=element,
                    device=device,
                    cost_s=cost_of(StepKind.ADD, element, device),
                )
            )

        # Moves (same element, different device) — carry durable state.
        for element, new_device in sorted(new_plan.placement.items()):
            old_device = old_plan.placement.get(element)
            if old_device is None or old_device == new_device:
                continue
            profile = new_plan.certificate.profile(element)
            steps.append(
                ReconfigStep(
                    kind=StepKind.MOVE,
                    element=element,
                    device=new_device,
                    source_device=old_device,
                    carries_state=profile.is_stateful,
                    cost_s=cost_of(StepKind.MOVE, element, new_device),
                )
            )

        # Modifications in place (resizes): charged as entry updates.
        for element in sorted(changes.modified):
            device = new_plan.placement.get(element)
            if device is None or old_plan.placement.get(element) != device:
                continue
            target = network_slice.device(device).target
            profile = new_plan.certificate.profile(element)
            entries = max(profile.table_entries, 1)
            steps.append(
                ReconfigStep(
                    kind=StepKind.RETIER,
                    element=element,
                    device=device,
                    cost_s=target.reconfig.modify_entries_per_1k_s * entries / 1000.0,
                )
            )

        # Parser changes.
        if old_plan.program.parser != new_plan.program.parser:
            parser_devices = sorted(
                {
                    device
                    for device in set(new_plan.placement.values())
                    if network_slice.device(device).target.tier == "switch"
                }
            ) or new_plan.devices_used[:1]
            for device in parser_devices:
                steps.append(
                    ReconfigStep(
                        kind=StepKind.PARSER,
                        element="<parser>",
                        device=device,
                        cost_s=cost_of(StepKind.PARSER, "<parser>", device),
                    )
                )

        # Removals last (break after make).
        for element in sorted(changes.removed):
            device = old_plan.placement.get(element)
            if device is None:
                continue
            steps.append(
                ReconfigStep(
                    kind=StepKind.REMOVE,
                    element=element,
                    device=device,
                    cost_s=cost_of(StepKind.REMOVE, element, device),
                )
            )

        return ReconfigPlan(
            steps=steps,
            old_version=old_plan.program.version,
            new_version=new_plan.program.version,
        )


def full_recompile_plan(
    old_plan: CompilationPlan,
    new_program: Program,
    network_slice: NetworkSlice,
    engine: PlacementEngine | None = None,
) -> IncrementalResult:
    """The baseline: recompile from scratch (no pins) and diff.

    Because the packer re-balances freely, unchanged elements routinely
    land on different devices, producing many more MOVE steps — the
    "significant resource reallocation and shuffling" incremental
    recompilation exists to avoid.
    """
    engine = engine or PlacementEngine()
    certificate = certify(new_program)
    new_plan = engine.compile(new_program, certificate, network_slice)
    changes = diff_programs(old_plan.program, new_program)
    reconfig = IncrementalCompiler(engine).transition(
        old_plan, new_plan, network_slice, changes
    )
    return IncrementalResult(new_plan=new_plan, reconfig=reconfig, changes=changes)
