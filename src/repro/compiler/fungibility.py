"""Architecture-specific fungibility rules (§3.3 of the paper).

Resource fungibility "varies across device architectures": RMT is
fungible only within a pipeline stage, dRMT pools memory and compute,
tiled architectures are fungible within a tile type, and NIC/FPGA/host
resources are fully fungible. This module turns those rules into two
operations placement needs:

* :func:`device_feasible` — can this set of elements co-reside on this
  device at all? For RMT that includes solving the stage-assignment
  problem (:class:`StagePlanner`); for tiles it checks per-tile-type
  budgets; for pooled/full classes it is plain vector arithmetic.
* :func:`fungibility_score` — a scalar in [0, 1] measuring how much of
  a device's nominally-free capacity is actually reachable by a new
  element, given fragmentation. This is what experiment E5 sweeps
  across architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.analyzer import Certificate, ElementProfile
from repro.lang.ir import ApplyFunction, ApplyStep, ApplyTable, Program
from repro.targets.base import FungibilityClass, Target
from repro.targets.resources import ResourceVector
from repro.targets.rmt import stage_capacity

from repro.compiler.plan import StagePlan


def ordered_elements(program: Program) -> list[str]:
    """Placeable elements in apply order (tables and functions), followed
    by maps attached after their first accessor."""
    order: list[str] = []

    def walk(steps: tuple[ApplyStep, ...]) -> None:
        for step in steps:
            if isinstance(step, ApplyTable):
                if step.table not in order:
                    order.append(step.table)
            elif isinstance(step, ApplyFunction):
                if step.function not in order:
                    order.append(step.function)
            else:
                walk(step.then_steps)
                walk(step.else_steps)

    walk(program.apply)
    # Elements declared but never applied still need placement (they may
    # be activated later by a delta); append them in declaration order.
    for table in program.tables:
        if table.name not in order:
            order.append(table.name)
    for function in program.functions:
        if function.name not in order:
            order.append(function.name)
    for map_def in program.maps:
        order.append(map_def.name)
    return order


def element_conflicts(program: Program, certificate: Certificate) -> set[tuple[str, str]]:
    """Pairs of elements with a data dependency (same map, or write/read
    of the same header field), which RMT must separate into stages."""
    touched_fields: dict[str, set[str]] = {}
    touched_maps: dict[str, set[str]] = {}

    for name, profile in certificate.profiles.items():
        if profile.kind in ("table", "function"):
            touched_maps[name] = set(profile.map_reads) | set(profile.map_writes)

    for table in program.tables:
        fields = {str(key.field) for key in table.keys}
        for action_name in table.actions:
            fields |= _written_fields(program.action(action_name).body)
        touched_fields[table.name] = fields
    for function in program.functions:
        fields = _read_fields(function.body) | _written_fields(function.body)
        touched_fields[function.name] = fields

    names = sorted(touched_fields)
    conflicts: set[tuple[str, str]] = set()
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            if touched_fields[first] & touched_fields[second]:
                conflicts.add((first, second))
            elif touched_maps.get(first, set()) & touched_maps.get(second, set()):
                conflicts.add((first, second))
    return conflicts


def _written_fields(body) -> set[str]:
    from repro.lang import ir

    fields: set[str] = set()
    for stmt in body:
        if isinstance(stmt, ir.Assign) and isinstance(stmt.target, ir.FieldRef):
            fields.add(str(stmt.target))
        elif isinstance(stmt, ir.If):
            fields |= _written_fields(stmt.then_body)
            fields |= _written_fields(stmt.else_body)
        elif isinstance(stmt, ir.Repeat):
            fields |= _written_fields(stmt.body)
    return fields


def _read_fields(body) -> set[str]:
    from repro.lang import ir

    fields: set[str] = set()

    def walk_expr(expr) -> None:
        if isinstance(expr, ir.FieldRef):
            fields.add(str(expr))
        elif isinstance(expr, ir.BinOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, ir.UnOp):
            walk_expr(expr.operand)
        elif isinstance(expr, (ir.MapGet, ir.HashExpr)):
            for part in expr.key if isinstance(expr, ir.MapGet) else expr.args:
                walk_expr(part)

    for stmt in body:
        if isinstance(stmt, (ir.Let, ir.Assign)):
            walk_expr(stmt.value)
        elif isinstance(stmt, ir.MapPut):
            for part in (*stmt.key, stmt.value):
                walk_expr(part)
        elif isinstance(stmt, ir.MapDelete):
            for part in stmt.key:
                walk_expr(part)
        elif isinstance(stmt, ir.If):
            walk_expr(stmt.condition)
            fields.update(_read_fields(stmt.then_body))
            fields.update(_read_fields(stmt.else_body))
        elif isinstance(stmt, ir.Repeat):
            fields.update(_read_fields(stmt.body))
        elif isinstance(stmt, ir.PrimitiveCall):
            for arg in stmt.args:
                walk_expr(arg)
    return fields


# ---------------------------------------------------------------------------
# RMT stage planning
# ---------------------------------------------------------------------------


@dataclass
class StagePlanner:
    """Greedy dependency-respecting stage assignment for RMT pipelines.

    Elements are taken in apply order; an element shares the current
    stage unless it conflicts with an element already in it or the
    stage's resources are exhausted, in which case it opens the next
    stage. Returns None when the pipeline runs out of stages — the
    stage-local fungibility failure mode the paper contrasts with dRMT.
    """

    target: Target

    def plan(
        self,
        elements: list[str],
        demands: dict[str, ResourceVector],
        conflicts: set[tuple[str, str]],
    ) -> StagePlan | None:
        stages: int = self.target.params["stages"]
        per_stage = stage_capacity(self.target)
        stage_used: list[ResourceVector] = [ResourceVector() for _ in range(stages)]
        stage_members: list[list[str]] = [[] for _ in range(stages)]
        assignments: dict[str, int] = {}
        current = 0

        for element in elements:
            demand = demands[element]
            placed = False
            candidate = current
            while candidate < stages:
                conflicted = any(
                    _conflicting(member, element, conflicts)
                    for member in stage_members[candidate]
                )
                if conflicted:
                    candidate += 1
                    continue
                if (stage_used[candidate] + demand).fits_within(per_stage):
                    stage_used[candidate] = stage_used[candidate] + demand
                    stage_members[candidate].append(element)
                    assignments[element] = candidate
                    current = candidate
                    placed = True
                    break
                candidate += 1
            if not placed:
                return None
        return StagePlan(assignments=assignments)


def _conflicting(a: str, b: str, conflicts: set[tuple[str, str]]) -> bool:
    return (a, b) in conflicts or (b, a) in conflicts


# ---------------------------------------------------------------------------
# Feasibility per fungibility class
# ---------------------------------------------------------------------------


def device_feasible(
    target: Target,
    element_names: list[str],
    certificate: Certificate,
    program: Program,
    already_used: ResourceVector | None = None,
) -> StagePlan | None | bool:
    """Can ``element_names`` co-reside on ``target`` given ``already_used``?

    Returns a :class:`StagePlan` for stage-local RMT devices, ``True``
    for other feasible placements, and ``False``/``None`` when infeasible.
    """
    used = already_used or ResourceVector()
    demands = {name: target.demand(certificate.profile(name)) for name in element_names}

    for name in element_names:
        if not target.admits(certificate.profile(name)):
            return False

    total = used
    for demand in demands.values():
        total = total + demand
    if not total.fits_within(target.capacity):
        return False

    if target.fungibility is FungibilityClass.STAGE_LOCAL:
        conflicts = element_conflicts(program, certificate)
        ordered = [e for e in ordered_elements(program) if e in set(element_names)]
        plan = StagePlanner(target).plan(ordered, demands, conflicts)
        return plan if plan is not None else False

    # TILE_TYPED and POOLED and FULL reduce to vector arithmetic because
    # the demand model already expresses tile-typed needs in distinct
    # resource kinds (hash_tiles vs tcam_tiles vs pem_elems).
    return True


def fungibility_score(
    target: Target,
    resident_profiles: list[ElementProfile],
    probe: ElementProfile,
    certificate_like_demand=None,
) -> float:
    """Fraction of probes of shape ``probe`` that fit the device's free
    capacity, accounting for architecture fragmentation.

    For POOLED/FULL classes this is simply free/needed capped at 1. For
    STAGE_LOCAL it discounts by the fraction of stages with room, and
    for TILE_TYPED by the matching tile type's availability.
    """
    from repro.errors import ResourceError

    used = ResourceVector()
    for profile in resident_profiles:
        used = used + target.demand(profile)
    try:
        free = target.capacity - used
    except ResourceError:
        return 0.0
    need = target.demand(probe)
    if need.is_zero():
        return 1.0

    base = 1.0 if need.fits_within(free) else 0.0
    if target.fungibility in (FungibilityClass.POOLED, FungibilityClass.FULL):
        return base
    if target.fungibility is FungibilityClass.TILE_TYPED:
        return base  # tile typing already reflected in distinct kinds
    # STAGE_LOCAL: even if aggregate capacity fits, the element must fit
    # inside a *single* stage's remaining budget. Estimate against the
    # average per-stage residue, assuming residents spread evenly.
    stages = target.params["stages"]
    per_stage = stage_capacity(target)
    per_stage_used = used * (1.0 / stages)
    try:
        per_stage_free = per_stage - per_stage_used
    except ResourceError:
        return 0.0
    return base if need.fits_within(per_stage_free) else 0.0
